#!/usr/bin/env python
"""Quickstart: build a two-host DASH system and exchange messages.

Demonstrates the core loop of the library:

1. build a simulated system (one Ethernet, two DASH nodes);
2. open a session through ``DashSystem.connect`` with explicit RMS
   parameters;
3. send messages and observe delivery, delays, and failure notification;
4. make a request/reply call through an RKOM session.

Run:  python examples/quickstart.py
"""

from repro import DashSystem, DelayBound, DelayBoundType, RmsParams


def main() -> None:
    # A deterministic simulation: same seed, same run, every time.
    system = DashSystem(seed=7)
    system.add_ethernet(trusted=True)
    alice = system.add_node("alice")
    bob = system.add_node("bob")

    # Connect the two nodes with explicit RMS parameters: 16 kB
    # capacity, 4 kB messages, 100 ms delay bound, best effort.
    params = RmsParams(
        capacity=16 * 1024,
        max_message_size=4 * 1024,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    session = system.connect(alice, bob, desired=params, acceptable=params,
                             port="demo")
    system.run(until=1.0)  # let the control channel + setup handshake run
    rms = session.established.result()
    print(f"created {rms.name} ({session.state.value})")
    print(f"  negotiated delay bound: {rms.params.delay_bound}")
    print(f"  implied bandwidth:      "
          f"{rms.params.implied_bandwidth() / 1e3:.1f} kB/s")

    # Receive by handler; messages preserve boundaries and order.
    def on_message(message):
        print(f"  [{system.now * 1e3:8.3f} ms] bob got {message.size:5d} B "
              f"(delay {message.delay * 1e3:.3f} ms)")

    session.port.set_handler(on_message)

    session.send(b"hello DASH")
    session.send(b"x" * 3000)  # larger than the 1500 B MTU: ST fragments it
    system.run(until=2.0)

    # Request/reply through an RKOM session (section 3.3 of the paper).
    bob.rkom.register_handler("time", lambda payload, src: b"12:00 PST")
    rpc = system.connect(alice, bob, kind="rkom")
    reply = rpc.call("time")
    system.run(until=3.0)
    print(f"RKOM reply: {reply.result().decode()}")

    # Failure notification is a basic RMS property; without a resilience
    # policy the first failure is terminal.  (Pass
    # resilience=ResiliencePolicy() to connect() for automatic retry,
    # failover, and degradation instead.)
    session.on_state_change.listen(
        lambda s, old, new, reason: print(
            f"session {old.value} -> {new.value}: {reason}"
        )
    )
    system.networks["ether0"].segment.set_down()
    system.run(until=4.0)

    stats = rms.stats
    print(f"totals: sent={stats.messages_sent} "
          f"delivered={stats.messages_delivered} "
          f"mean delay={stats.mean_delay * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
