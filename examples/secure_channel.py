#!/usr/bin/env python
"""Security parameters in action (paper sections 2.1 and 2.5).

The same private, authenticated ST RMS is created over three network
flavors.  The subtransport layer picks the optimal mechanism each time:
software encryption only where the medium provides nothing.  An
eavesdropper taps the broadcast segment to prove the point, and an
impostor's forged component is rejected by the MAC.

Run:  python examples/secure_channel.py
"""

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem

SECRET = b"launch codes: 0000"


def secure_params() -> RmsParams:
    return RmsParams(
        privacy=True,
        authentication=True,
        capacity=16 * 1024,
        max_message_size=2048,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def run_network(label: str, **net_kwargs) -> None:
    system = DashSystem(seed=5)
    network = system.add_ethernet(**net_kwargs)
    alice = system.add_node("alice")
    bob = system.add_node("bob")

    captured = []
    network.add_sniffer(
        lambda frame: captured.append(bytes(frame.message.payload))
    )

    future = alice.st.create_st_rms("bob", port="secure",
                                    desired=secure_params(),
                                    acceptable=secure_params())
    system.run(until=system.now + 2.0)
    rms = future.result()
    received = []
    rms.port.set_handler(lambda m: received.append(m.payload))
    rms.send(SECRET)
    system.run(until=system.now + 1.0)

    leaked = any(SECRET in blob for blob in captured)
    plan = rms.plan
    print(f"{label:<34} sw-encrypt={str(plan.encrypt):<5} "
          f"sw-mac={str(plan.mac):<5} delivered={received[0] == SECRET} "
          f"sniffer-sees-plaintext={leaked}")


def main() -> None:
    print("the client always asks for privacy + authentication;")
    print("the ST runs crypto only where the medium provides nothing:\n")
    run_network("trusted machine room", trusted=True)
    run_network("link-level encryption hardware", trusted=False,
                link_encryption=True)
    run_network("hostile shared segment", trusted=False)

    # Impersonation attempt on the hostile network: a forged component
    # with a bogus MAC must be discarded, never delivered.
    system = DashSystem(seed=6)
    system.add_ethernet(trusted=False)
    alice = system.add_node("alice")
    bob = system.add_node("bob")
    future = alice.st.create_st_rms("bob", port="secure",
                                    desired=secure_params(),
                                    acceptable=secure_params())
    system.run(until=system.now + 2.0)
    rms = future.result()
    delivered = []
    rms.port.set_handler(lambda m: delivered.append(m.payload))

    from repro.subtransport.wire import BundleEntry, FLAG_MAC, encode_bundle
    from repro.core.message import Label, Message

    forged = BundleEntry(
        st_rms_id=rms.rms_id, seq=999, flags=FLAG_MAC,
        payload=b"evil payload" + b"\x00" * 8,  # wrong MAC tag
        send_time=system.now,
    )
    # Inject the forgery straight onto bob's data path.
    bob.st._data_arrived(None, Message(encode_bundle([forged]),
                                       source=Label("mallory", "st-data")))
    system.run(until=system.now + 1.0)
    print(f"\nforged message delivered: {len(delivered) > 0} "
          f"(auth drops at bob: {bob.st.stats.auth_drops})")


if __name__ == "__main__":
    main()
