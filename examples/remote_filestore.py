#!/usr/bin/env python
"""A toy remote file store built on RKOM (paper section 3.3).

A server node keeps files in memory and serves ``put``/``get``/``list``
operations through the Remote Kernel Operation Mechanism.  Clients on
two other hosts interleave operations; RKOM handles channel setup,
retransmission over a lossy network, and duplicate suppression.

Run:  python examples/remote_filestore.py
"""

import json

from repro import DashSystem


class FileStore:
    """The server-side handler set."""

    def __init__(self, node) -> None:
        self.files = {}
        node.rkom.register_handler("put", self.put)
        node.rkom.register_handler("get", self.get)
        node.rkom.register_handler("list", self.list)

    def put(self, payload: bytes, source: str) -> bytes:
        header, _, body = payload.partition(b"\x00")
        self.files[header.decode()] = body
        return b"ok"

    def get(self, payload: bytes, source: str) -> bytes:
        return self.files.get(payload.decode(), b"")

    def list(self, payload: bytes, source: str) -> bytes:
        return json.dumps(sorted(self.files)).encode()


def main() -> None:
    system = DashSystem(seed=21)
    # A mildly lossy LAN: RKOM's retransmissions cover for it.
    system.add_ethernet(trusted=True, frame_loss_rate=0.03)
    server = system.add_node("server")
    client_a = system.add_node("client-a")
    client_b = system.add_node("client-b")
    FileStore(server)

    results = []
    rpc_a = system.connect(client_a, server, kind="rkom")
    rpc_b = system.connect(client_b, server, kind="rkom")

    def client_a_script():
        yield rpc_a.call("put", b"readme\x00DASH reproduction notes")
        yield rpc_a.call("put", b"data.bin\x00" + bytes(range(200)))
        listing = yield rpc_a.call("list")
        results.append(("client-a listing", json.loads(listing)))

    def client_b_script():
        yield 0.5  # start after client-a's writes have settled
        content = yield rpc_b.call("get", b"readme")
        results.append(("client-b read readme", content.decode()))
        missing = yield rpc_b.call("get", b"nope")
        results.append(("client-b read missing", missing))

    system.context.spawn(client_a_script())
    system.context.spawn(client_b_script())
    # Drain until the scripts finish: stop once only far-out
    # housekeeping (channel timers) remains, instead of guessing a
    # fixed horizon.
    system.run(while_pending=True, idle_grace=1.0)

    for label, value in results:
        print(f"{label}: {value!r}")
    stats = client_a.rkom.stats
    print(f"client-a RKOM: {stats.calls} calls, "
          f"{stats.retransmissions} retransmissions (lossy network)")


if __name__ == "__main__":
    main()
