#!/usr/bin/env python
"""Voice calls with statistical delay bounds (paper section 2.5).

Three hosts hold pairwise voice calls over one Ethernet while a bulk
transfer hammers the segment.  Each call asks for the paper's voice
recipe -- high capacity, low delay, a statistical bound, loss tolerated
-- and the deadline-driven stack keeps the audio playable.

Run:  python examples/voice_conference.py
"""

from repro import DashSystem, DelayBound, DelayBoundType, RmsParams
from repro.apps.media import VoiceCall, voice_rms_params

CALL_SECONDS = 3.0


def main() -> None:
    system = DashSystem(seed=11)
    system.add_ethernet(trusted=True)
    for name in ("ann", "ben", "cyd"):
        system.add_node(name)

    # Pairwise one-way voice streams: ann->ben, ben->cyd, cyd->ann.
    pairs = [("ann", "ben"), ("ben", "cyd"), ("cyd", "ann")]
    calls = []
    for sender, receiver in pairs:
        future = system.nodes[sender].st.create_st_rms(
            receiver,
            port=f"voice-{sender}",
            desired=voice_rms_params(),
            acceptable=voice_rms_params(),
        )
        system.run(until=system.now + 1.0)
        rms = future.result()
        calls.append((sender, receiver,
                      VoiceCall(system.context, rms, duration=CALL_SECONDS)))

    # Background bulk traffic tries to spoil the party.
    bulk_params = RmsParams(
        capacity=96 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(1.0, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    bulk_future = system.nodes["ann"].st.create_st_rms(
        "cyd", port="bulk", desired=bulk_params, acceptable=bulk_params
    )
    system.run(until=system.now + 1.0)
    bulk = bulk_future.result()

    def bulk_producer():
        while True:
            bulk.send(b"\xAA" * 3000)
            yield 0.004

    bulk_process = system.context.spawn(bulk_producer())
    system.run(until=system.now + CALL_SECONDS + 2.0)
    bulk_process.stop()
    system.run(until=system.now + 0.5)

    print(f"{'call':<12} {'sent':>5} {'usable':>7} {'p95 delay':>10} "
          f"{'jitter':>8}")
    for sender, receiver, call in calls:
        r = call.report()
        print(f"{sender}->{receiver:<7} {r.sent:>5} "
              f"{r.usable_fraction:>6.1%} {r.delay.p95 * 1e3:>8.2f}ms "
              f"{r.jitter * 1e6:>6.1f}us")
    print(f"bulk delivered {bulk.stats.bytes_delivered / 1e3:.0f} kB "
          f"alongside the calls")


if __name__ == "__main__":
    main()
