#!/usr/bin/env python
"""Flow-control options on a bulk transfer (paper section 4.4, Figure 5).

Moves the same 60 kB through a stream session four times, once per
Figure-5 flow-control configuration, against a deliberately slow
consumer.  Watch the receive buffer overflow when receiver flow control
is missing, and the sender's IPC port push back under end-to-end
control.

Run:  python examples/bulk_transfer_flow_control.py
"""

from repro import DashSystem, FlowControlMode, StreamConfig

MESSAGES = 60
SIZE = 1000
CONSUME_RATE = 30.0  # messages/second -- slower than the network


def run_one(mode: FlowControlMode, capacity_mode) -> dict:
    system = DashSystem(seed=33)
    system.add_ethernet(trusted=True)
    system.add_node("src")
    system.add_node("dst")
    config = StreamConfig(
        reliable=False,  # let missing flow control show up as loss
        capacity_mode=capacity_mode,
        flow_control=mode,
        receive_buffer=8 * 1024,
        data_capacity=16 * 1024,
        sender_port_limit=8,
    )
    handle = system.connect("src", "dst", kind="stream", config=config)
    system.run(until=system.now + 2.0)
    session = handle.established.result()
    consumed = []

    def consumer():
        while len(consumed) < MESSAGES:
            message = yield session.receive()
            consumed.append(message)
            yield 1.0 / CONSUME_RATE

    def producer():
        for index in range(MESSAGES):
            accepted = session.send(bytes([index % 256]) * SIZE)
            if not accepted.done:
                yield accepted  # sender flow control engaged

    system.context.spawn(consumer())
    system.context.spawn(producer())
    system.run(until=system.now + 30.0)
    return {
        "mode": mode.value,
        "consumed": len(consumed),
        "dropped": session.stats.receiver_overflow_drops,
        "sender_blocked": (
            session.tx_port.blocked_puts if session.tx_port is not None else 0
        ),
    }


def main() -> None:
    cases = [
        (FlowControlMode.NONE, None),
        (FlowControlMode.CAPACITY_ONLY, "ack"),
        (FlowControlMode.CAPACITY_AND_RECEIVER, "ack"),
        (FlowControlMode.END_TO_END, "ack"),
    ]
    print(f"slow consumer at {CONSUME_RATE:.0f} msg/s, "
          f"{MESSAGES} x {SIZE} B offered\n")
    print(f"{'configuration':<20} {'consumed':>8} {'dropped':>8} "
          f"{'sender blocked':>14}")
    for mode, capacity_mode in cases:
        row = run_one(mode, capacity_mode)
        print(f"{row['mode']:<20} {row['consumed']:>8} {row['dropped']:>8} "
              f"{row['sender_blocked']:>14}")
    print("\nwithout receiver flow control the receive buffer overruns;")
    print("end-to-end control also pushes back on the producing process.")


if __name__ == "__main__":
    main()
