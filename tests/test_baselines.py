"""Tests for the comparison baselines: datagrams, TCP-like, datagram RPC."""

from __future__ import annotations

import pytest

from repro.baselines.datagram import DatagramService
from repro.baselines.rpc import DatagramRpc
from repro.baselines.tcp import TcpConfig, TcpLikeConnection
from repro.errors import RkomTimeoutError, TransportError
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.sim.context import SimContext


def build_lan(seed=42, **net_kwargs):
    context = SimContext(seed=seed)
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    network = EthernetNetwork(context, **defaults)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    dgram_a = DatagramService(context, host_a, network)
    dgram_b = DatagramService(context, host_b, network)
    return context, network, dgram_a, dgram_b


class TestDatagramService:
    def test_send_and_receive(self):
        context, _net, dgram_a, dgram_b = build_lan()
        got = []
        dgram_b.bind("app", lambda payload, src: got.append((payload, src)))
        dgram_a.send("b", "app", b"hello datagram")
        context.run(until=1.0)
        assert got == [(b"hello datagram", "a")]

    def test_queued_until_path_opens(self):
        context, _net, dgram_a, dgram_b = build_lan()
        got = []
        dgram_b.bind("app", lambda payload, src: got.append(payload))
        for index in range(5):
            dgram_a.send("b", "app", bytes([index]))
        context.run(until=1.0)
        assert len(got) == 5

    def test_no_delivery_guarantee_on_lossy_net(self):
        context, _net, dgram_a, dgram_b = build_lan(seed=9, frame_loss_rate=0.4)
        got = []
        dgram_b.bind("app", lambda payload, src: got.append(payload))

        def sender():
            for index in range(30):
                dgram_a.send("b", "app", bytes([index]) * 100)
                yield 0.01

        context.spawn(sender())
        context.run(until=5.0)
        assert 0 < len(got) < 30  # datagrams are fire-and-forget

    def test_oversized_datagram_dropped_silently(self):
        context, _net, dgram_a, dgram_b = build_lan()
        got = []
        dgram_b.bind("app", lambda payload, src: got.append(payload))
        dgram_a.send("b", "app", b"x" * 5000)  # over the 1500 MTU
        context.run(until=1.0)
        assert got == []

    def test_unbound_port_ignored(self):
        context, _net, dgram_a, dgram_b = build_lan()
        dgram_a.send("b", "nowhere", b"data")
        context.run(until=1.0)
        assert dgram_b.received >= 1  # arrived, silently ignored


class TestTcpLikeConnection:
    def test_reliable_in_order_delivery(self):
        context, _net, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(context, dgram_a, dgram_b)
        got = []
        connection.rx_port.set_handler(lambda payload: got.append(payload[0]))
        for index in range(30):
            connection.send(bytes([index]) * 200)
        context.run(until=10.0)
        assert got == list(range(30))
        assert connection.all_acked

    def test_recovers_from_loss(self):
        context, network, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(
            context, dgram_a, dgram_b, TcpConfig(retransmit_timeout=0.3)
        )
        got = []
        connection.rx_port.set_handler(lambda payload: got.append(payload[0]))
        # Prime the datagram paths cleanly, then inject loss.
        connection.send(bytes([0]) * 200)
        context.run(until=1.0)
        network.segment.impairment.frame_loss_rate = 0.15

        def sender():
            for index in range(1, 25):
                connection.send(bytes([index]) * 200)
                yield 0.01

        context.spawn(sender())
        context.run(until=60.0)
        assert got == list(range(25))
        assert connection.stats.retransmissions + connection.stats.timeouts > 0

    def test_slow_start_grows_window(self):
        context, _net, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(context, dgram_a, dgram_b)
        initial = connection.congestion_window
        for index in range(20):
            connection.send(bytes([index]) * 200)
        context.run(until=5.0)
        assert connection.congestion_window > initial

    def test_source_quench_halves_window(self):
        """Section 4.4's ICMP source-quench reaction."""
        context, _net, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(context, dgram_a, dgram_b)
        for index in range(20):
            connection.send(bytes([index]) * 200)
        context.run(until=5.0)
        before = connection.congestion_window
        connection._quench_arrived(0)
        assert connection.congestion_window == pytest.approx(
            max(1.0, before / 2)
        )
        assert connection.stats.quenches_received == 1

    def test_oversized_segment_rejected(self):
        context, _net, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(context, dgram_a, dgram_b)
        with pytest.raises(TransportError):
            connection.send(b"x" * 600)

    def test_timeout_collapses_to_slow_start(self):
        context, network, dgram_a, dgram_b = build_lan()
        connection = TcpLikeConnection(
            context, dgram_a, dgram_b, TcpConfig(retransmit_timeout=0.2)
        )
        for index in range(20):
            connection.send(bytes([index]) * 200)
        context.run(until=5.0)
        grown = connection.congestion_window
        network.segment.impairment.frame_loss_rate = 1.0
        connection.send(bytes([99]) * 200)
        context.run(until=10.0)
        assert connection.stats.timeouts > 0
        assert connection.congestion_window < grown


class TestDatagramRpc:
    def test_call_and_reply(self):
        context, _net, dgram_a, dgram_b = build_lan()
        rpc_a = DatagramRpc(context, dgram_a)
        rpc_b = DatagramRpc(context, dgram_b)
        rpc_b.register_handler("echo", lambda payload, src: b"re:" + payload)
        future = rpc_a.call("b", "echo", b"data")
        context.run(until=2.0)
        assert future.result() == b"re:data"

    def test_retransmission_under_loss(self):
        context, network, dgram_a, dgram_b = build_lan(seed=13)
        rpc_a = DatagramRpc(context, dgram_a)
        rpc_b = DatagramRpc(context, dgram_b)
        rpc_b.register_handler("echo", lambda payload, src: payload)
        warm = rpc_a.call("b", "echo", b"warm")
        context.run(until=1.0)
        assert warm.result() == b"warm"
        network.segment.impairment.frame_loss_rate = 0.3
        futures = [rpc_a.call("b", "echo", bytes([i])) for i in range(8)]
        context.run(until=60.0)
        completed = [f for f in futures if f.done and not f.failed]
        assert len(completed) == 8
        assert rpc_a.retransmissions > 0

    def test_timeout_raises(self):
        context, network, dgram_a, dgram_b = build_lan()
        rpc_a = DatagramRpc(context, dgram_a)
        DatagramRpc(context, dgram_b)  # no handler registered is fine; kill net
        warm = rpc_a.call("b", "missing")
        context.run(until=2.0)
        network.segment.impairment.frame_loss_rate = 1.0
        future = rpc_a.call("b", "missing", timeout=0.05)
        context.run(until=30.0)
        assert future.failed
        with pytest.raises(RkomTimeoutError):
            future.result()

    def test_duplicate_suppression(self):
        context, network, dgram_a, dgram_b = build_lan(seed=17)
        rpc_a = DatagramRpc(context, dgram_a)
        rpc_b = DatagramRpc(context, dgram_b)
        executions = []
        rpc_b.register_handler(
            "once", lambda payload, src: (executions.append(1), b"ok")[1]
        )
        warm = rpc_a.call("b", "once")
        context.run(until=1.0)
        network.segment.impairment.frame_loss_rate = 0.3
        futures = [rpc_a.call("b", "once", bytes([i])) for i in range(6)]
        context.run(until=60.0)
        done = [f for f in futures if f.done and not f.failed]
        assert len(done) == 6
        assert len(executions) == 7  # warm + 6, no duplicate executions
