"""Tests for application workloads and the metrics package."""

from __future__ import annotations

import pytest

from repro.apps.bulk import BulkTransfer
from repro.apps.media import VideoStream, VoiceCall, voice_rms_params
from repro.apps.rpcload import RpcWorkload
from repro.apps.sources import PeriodicSource, PoissonSource
from repro.apps.window import (
    WindowSystemWorkload,
    event_rms_params,
    graphics_rms_params,
)
from repro.dash.system import DashSystem
from repro.metrics.stats import SummaryStats, percentile, summarize
from repro.metrics.collectors import DelayRecorder, ThroughputMeter, rms_scorecard
from repro.metrics.report import Table, format_table
from repro.transport.stream import StreamConfig


def lan_system(seed=42, **kwargs):
    system = DashSystem(seed=seed)
    system.add_ethernet(trusted=True, **kwargs)
    system.add_node("a")
    system.add_node("b")
    return system


def open_st(system, sender="a", receiver="b", params=None, port="app"):
    node = system.nodes[sender]
    future = node.st.create_st_rms(
        receiver, port=port, desired=params, acceptable=params
    )
    system.run(until=system.now + 2.0)
    return future.result()


class TestMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0 and stats.maximum == 3.0

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_scaled(self):
        stats = summarize([0.001, 0.002]).scaled(1000)
        assert stats.mean == pytest.approx(1.5)

    def test_delay_recorder_jitter(self):
        recorder = DelayRecorder()
        for delay in (0.010, 0.012, 0.010):
            recorder.record(delay)
        assert recorder.jitter() == pytest.approx(0.002)
        assert len(recorder) == 3

    def test_throughput_meter(self):
        meter = ThroughputMeter(start_time=0.0)
        meter.record(1000, now=1.0)
        meter.record(1000, now=2.0)
        assert meter.throughput() == pytest.approx(1000.0)
        assert meter.throughput(end_time=4.0) == pytest.approx(500.0)

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["x", 1.5], ["longer", 20000.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "-" in lines[2]
        assert len(lines) == 5

    def test_table_class(self):
        table = Table("title", ["a"])
        table.add_row(0.12345)
        assert "0.1235" in str(table)  # rounded to four decimals


class TestMediaWorkloads:
    def test_voice_call_over_lan(self):
        system = lan_system()
        rms = open_st(system, params=voice_rms_params(), port="voice")
        call = VoiceCall(system.context, rms, duration=2.0)
        system.run(until=system.now + 5.0)
        report = call.report()
        assert report.sent == 100  # 2 s at 20 ms per packet
        assert report.delivered == report.sent
        assert report.usable_fraction > 0.99
        assert report.delay.mean < 0.08

    def test_voice_jitter_reported(self):
        system = lan_system()
        rms = open_st(system, params=voice_rms_params(), port="voice")
        call = VoiceCall(system.context, rms, duration=1.0)
        system.run(until=system.now + 3.0)
        assert call.report().jitter >= 0.0

    def test_video_stream_fragments_frames(self):
        system = lan_system()
        params = voice_rms_params().with_(
            capacity=65_536, max_message_size=12_000
        )
        rms = open_st(system, params=params, port="video")
        stream = VideoStream(system.context, rms, duration=1.0)
        system.run(until=system.now + 3.0)
        report = stream.report()
        assert report.sent == 30
        assert report.delivered > 25
        assert system.nodes["a"].st.stats.fragments_sent > 0


class TestWindowWorkload:
    def test_interactive_round_trips(self):
        system = lan_system()
        events = open_st(system, params=event_rms_params(), port="events")
        graphics = open_st(
            system, sender="b", receiver="a",
            params=graphics_rms_params(), port="graphics",
        )
        workload = WindowSystemWorkload(
            system.context, events, graphics, duration=2.0
        )
        system.run(until=system.now + 5.0)
        report = workload.report()
        assert report.events_sent > 20
        assert report.events_delivered == report.events_sent
        assert report.updates_delivered == report.updates_sent
        # On a quiet LAN everything lands well within perception budget.
        assert report.round_trips_over_budget == 0

    def test_event_messages_are_small(self):
        params = event_rms_params()
        assert params.capacity <= 4096
        assert graphics_rms_params().capacity > params.capacity


class TestBulkWorkload:
    def test_bulk_transfer_completes(self):
        system = lan_system()
        handle = system.connect("a", "b", kind="stream", config=StreamConfig())
        system.run(until=system.now + 2.0)
        session = handle.established.result()
        transfer = BulkTransfer(
            system.context, session, total_messages=30, message_size=2000
        )
        system.run(until=system.now + 20.0)
        report = transfer.report()
        assert transfer.done
        assert report.consumed_messages == 30
        assert report.goodput > 0


class TestRpcWorkload:
    def test_rpc_workload_measures_rtt(self):
        system = lan_system()
        system.nodes["b"].rkom.register_handler(
            "echo", lambda payload, src: payload
        )
        workload = RpcWorkload(
            system.context,
            system.nodes["a"].rkom,
            "b",
            clients=2,
            calls_per_client=10,
        )
        system.run(until=system.now + 20.0)
        assert workload.done
        report = workload.report()
        assert report.calls_completed == 20
        assert report.calls_failed == 0
        assert report.rtt.mean > 0


class TestSources:
    def test_periodic_source_counts(self):
        system = lan_system()
        rms = open_st(system)
        source = PeriodicSource(
            system.context, rms, period=0.01, size=100, count=25
        )
        system.run(until=system.now + 2.0)
        assert source.sent == 25
        assert rms.stats.messages_sent == 25

    def test_periodic_source_stop(self):
        system = lan_system()
        rms = open_st(system)
        source = PeriodicSource(system.context, rms, period=0.01, size=100)
        system.run(until=system.now + 0.2)
        source.stop()
        sent = source.sent
        system.run(until=system.now + 0.5)
        assert source.sent <= sent + 1

    def test_poisson_source_randomizes_arrivals(self):
        system = lan_system()
        rms = open_st(system)
        source = PoissonSource(
            system.context, rms, rate=100.0, size_fn=lambda: 64, count=50
        )
        system.run(until=system.now + 5.0)
        assert source.sent == 50

    def test_source_survives_rms_failure(self):
        system = lan_system()
        rms = open_st(system)
        source = PeriodicSource(system.context, rms, period=0.01, size=100)
        system.run(until=system.now + 0.1)
        rms.fail("induced")
        system.run(until=system.now + 0.5)
        assert source.process.done  # ended cleanly, no crash

    def test_scorecard_snapshot(self):
        system = lan_system()
        rms = open_st(system)
        rms.send(b"x" * 100)
        system.run(until=system.now + 1.0)
        card = rms_scorecard(rms)
        assert card.sent == 1 and card.delivered == 1
        assert card.loss_rate == 0.0
        assert card.on_time_fraction == 1.0
