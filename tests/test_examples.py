"""Smoke tests: every shipped example must run clean and say what it
claims (examples are documentation; broken documentation is a bug)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "created st:alice->bob:demo" in output
        assert "RKOM reply: 12:00 PST" in output
        assert "RMS failed" in output

    def test_voice_conference(self):
        output = run_example("voice_conference.py")
        assert "ann->ben" in output
        assert "100.0%" in output  # usable fraction despite bulk load

    def test_remote_filestore(self):
        output = run_example("remote_filestore.py")
        assert "client-b read readme: 'DASH reproduction notes'" in output
        assert "'data.bin', 'readme'" in output

    def test_bulk_transfer_flow_control(self):
        output = run_example("bulk_transfer_flow_control.py")
        lines = [line for line in output.splitlines() if line.strip()]
        # The receiver-protected configurations consume all 60 messages.
        assert any("capacity+receiver" in line and "60" in line
                   for line in lines)
        assert any(line.startswith("none") and " 9 " in line
                   for line in lines)

    def test_secure_channel(self):
        output = run_example("secure_channel.py")
        assert "sniffer-sees-plaintext=False" in output  # hostile segment
        assert "sniffer-sees-plaintext=True" in output  # trusted segment
        assert "forged message delivered: False" in output
