"""Integration tests for the subtransport layer (sections 3.2, 4.2, 4.3)."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.config import StConfig
from repro.subtransport.st import SubtransportLayer


def build_pair(seed=77, st_config=None, **net_kwargs):
    context = SimContext(seed=seed)
    net_defaults = dict(trusted=True)
    net_defaults.update(net_kwargs)
    network = EthernetNetwork(context, **net_defaults)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys,
                             config=st_config)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys,
                             config=st_config)
    return context, network, st_a, st_b


def params(**kwargs):
    defaults = dict(
        capacity=16_384,
        max_message_size=4_000,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    defaults.update(kwargs)
    return RmsParams(**defaults)


def open_rms(context, st, peer="b", port="app", p=None, fast_ack=False, until=5.0):
    p = p or params()
    future = st.create_st_rms(peer, port=port, desired=p, acceptable=p,
                              fast_ack=fast_ack)
    context.run(until=context.now + until)
    return future.result()


class TestStEstablishment:
    def test_create_and_deliver(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"hello")
        context.run(until=context.now + 1.0)
        assert [m.payload for m in got] == [b"hello"]

    def test_first_request_builds_control_channel(self):
        """Section 3.2: the first ST RMS creation triggers the control
        channel; later ones reuse it."""
        context, network, st_a, st_b = build_pair()
        open_rms(context, st_a, port="one")
        setups_after_first = network.setup_count
        open_rms(context, st_a, port="two")
        # The second creation adds no new control-channel RMSs; at most a
        # data RMS (and with multiplexing, not even that).
        assert network.setup_count <= setups_after_first + 1

    def test_untrusted_network_runs_authentication(self):
        context, _net, st_a, st_b = build_pair(trusted=False)
        open_rms(context, st_a)
        assert st_a.stats.auth_handshakes == 1

    def test_trusted_network_skips_authentication(self):
        """Section 3.1: trust enables ST optimizations."""
        context, _net, st_a, st_b = build_pair(trusted=True)
        open_rms(context, st_a)
        assert st_a.stats.auth_handshakes == 0

    def test_no_common_network_rejected(self):
        context = SimContext(seed=1)
        network = EthernetNetwork(context)
        host = Host(context, "solo")
        network.attach(host)
        st = SubtransportLayer(context, host, [network])
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            st.network_for("nowhere")

    def test_delivery_in_order_across_sizes(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(lambda m: got.append(m.payload[0]))
        for index in range(30):
            size = 50 if index % 3 else 3000  # mix fragmented and small
            rms.send(bytes([index]) * size)
        context.run(until=context.now + 5.0)
        assert got == list(range(30))

    def test_close_removes_stream(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        rms.close()
        context.run(until=context.now + 1.0)
        assert not rms.is_open


class TestStMultiplexing:
    def test_st_rms_share_a_network_rms(self):
        """Section 4.2 upward multiplexing."""
        context, network, st_a, st_b = build_pair()
        first = open_rms(context, st_a, port="one")
        second = open_rms(context, st_a, port="two")
        assert first.binding is second.binding
        assert st_a.stats.mux_joins == 1
        assert st_a.stats.network_rms_created == 1

    def test_capacity_rule_forces_new_network_rms(self):
        config = StConfig(default_network_capacity=20_000)
        context, network, st_a, st_b = build_pair(st_config=config)
        big = params(capacity=16_000)
        open_rms(context, st_a, port="one", p=big)
        open_rms(context, st_a, port="two", p=big)
        # 16k + 16k > 20k network capacity: a second network RMS appears.
        assert st_a.stats.network_rms_created == 2

    def test_multiplexing_disabled_creates_per_stream_rms(self):
        config = StConfig(multiplexing_enabled=False, cache_enabled=False)
        context, network, st_a, st_b = build_pair(st_config=config)
        open_rms(context, st_a, port="one")
        open_rms(context, st_a, port="two")
        assert st_a.stats.network_rms_created == 2

    def test_piggybacking_bundles_small_messages(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        for index in range(10):
            rms.send(bytes([index]) * 40)
        context.run(until=context.now + 2.0)
        assert len(got) == 10
        assert st_a.stats.components_per_bundle > 1.0

    def test_piggybacking_disabled_one_message_per_bundle(self):
        config = StConfig(piggyback_enabled=False)
        context, _net, st_a, st_b = build_pair(st_config=config)
        rms = open_rms(context, st_a)
        for index in range(10):
            rms.send(bytes([index]) * 40)
        context.run(until=context.now + 2.0)
        assert st_a.stats.components_per_bundle == pytest.approx(1.0)

    def test_two_streams_piggyback_together(self):
        """Messages from multiple ST RMSs combine into one network
        message (Figure 4)."""
        context, _net, st_a, st_b = build_pair()
        one = open_rms(context, st_a, port="one")
        two = open_rms(context, st_a, port="two")
        bundles_before = st_a.stats.bundles_sent
        one.send(b"a" * 40)
        two.send(b"b" * 40)
        context.run(until=context.now + 2.0)
        sent = st_a.stats.bundles_sent - bundles_before
        assert sent == 1  # both rode one network message


class TestStCaching:
    def test_cache_hit_after_close(self):
        """Section 4.2: the ST may retain a network RMS even while it is
        not being used by an ST RMS."""
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a, port="one")
        rms.close()
        context.run(until=context.now + 1.0)
        open_rms(context, st_a, port="two")
        assert st_a.stats.cache_hits == 1
        assert st_a.stats.network_rms_created == 1

    def test_cache_disabled_recreates(self):
        config = StConfig(cache_enabled=False)
        context, network, st_a, st_b = build_pair(st_config=config)
        rms = open_rms(context, st_a, port="one")
        rms.close()
        context.run(until=context.now + 1.0)
        open_rms(context, st_a, port="two")
        assert st_a.stats.cache_hits == 0
        assert st_a.stats.network_rms_created == 2

    def test_cache_reuse_is_faster_than_creation(self):
        context, network, st_a, st_b = build_pair()
        first = open_rms(context, st_a, port="one")
        first.close()
        context.run(until=context.now + 0.5)
        start = context.now
        future = st_a.create_st_rms("b", port="two", desired=params(),
                                    acceptable=params())
        context.run(until=context.now + 2.0)
        future.result()
        cached_latency = context.now  # includes idle run, so compare setups
        assert network.setup_count == 3  # 2 control + 1 data, never a 4th


class TestStFragmentation:
    def test_large_message_fragments_and_reassembles(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        payload = bytes(range(256)) * 12  # 3072 B > 1500 MTU
        rms.send(payload)
        context.run(until=context.now + 2.0)
        assert got[0].payload == payload
        assert st_a.stats.fragments_sent >= 3
        assert st_b.stats.fragments_received == st_a.stats.fragments_sent

    def test_st_mms_exceeds_network_mtu(self):
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        assert rms.params.max_message_size > 1500

    def test_lost_fragment_discards_partial(self):
        """Section 4.3: no fragment retransmission; the partial message
        is discarded when the next message's fragment arrives."""
        context, network, st_a, st_b = build_pair(seed=3)
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        # Drop exactly one data frame in flight by monkeypatching the
        # entry pipeline: corrupt the third fragment's arrival.
        original = st_b._receive_entry
        dropped = []

        def dropper(entry):
            if entry.is_fragment and entry.frag_offset > 0 and not dropped:
                dropped.append(entry)
                return  # simulate loss of a middle fragment
            original(entry)

        st_b._receive_entry = dropper
        rms.send(b"x" * 4000)  # fragmented; first fragment lost
        context.run(until=context.now + 1.0)
        rms.send(b"y" * 4000)  # next message's fragments arrive
        context.run(until=context.now + 2.0)
        assert len(got) == 1  # only the second message completes
        assert got[0].payload == b"y" * 4000
        assert st_b.stats.partials_discarded == 1


class TestStSecurityPath:
    def test_private_stream_encrypted_on_wire(self):
        context, network, st_a, st_b = build_pair(trusted=False)
        secret = params().with_(privacy=True)
        rms = open_rms(context, st_a, p=secret)
        got = []
        rms.port.set_handler(got.append)
        wire = []
        network.add_sniffer(lambda frame: wire.append(bytes(frame.message.payload)))
        rms.send(b"SECRET-MESSAGE-CONTENT")
        context.run(until=context.now + 1.0)
        assert got[0].payload == b"SECRET-MESSAGE-CONTENT"
        assert not any(b"SECRET" in w for w in wire)

    def test_trusted_stream_plaintext_on_wire(self):
        context, network, st_a, st_b = build_pair(trusted=True)
        rms = open_rms(context, st_a, p=params().with_(privacy=True))
        wire = []
        network.add_sniffer(lambda frame: wire.append(bytes(frame.message.payload)))
        rms.send(b"VISIBLE-CONTENT")
        context.run(until=context.now + 1.0)
        assert any(b"VISIBLE-CONTENT" in w for w in wire)

    def test_corruption_detected_by_software_checksum(self):
        context, network, st_a, st_b = build_pair(
            trusted=True, link_checksum=False, bit_error_rate=2e-4, seed=5
        )
        rms = open_rms(context, st_a)
        assert rms.plan.checksum
        got = []
        rms.port.set_handler(got.append)
        for index in range(50):
            rms.send(bytes([index]) * 800)
        context.run(until=context.now + 10.0)
        # Some frames were corrupted; every *delivered* payload is intact.
        assert st_b.stats.checksum_drops + st_b.stats.garbled_bundles > 0
        for message in got:
            assert len(set(message.payload)) == 1

    def test_corruption_undetected_without_checksum(self):
        context, network, st_a, st_b = build_pair(
            trusted=True, link_checksum=False, bit_error_rate=0.0, seed=5
        )
        # Manually corrupt: no checksum planned on a clean network, so a
        # corrupted payload passes through to the client.
        rms = open_rms(context, st_a)
        assert not rms.plan.checksum

    def test_fast_ack_service(self):
        """Section 3.2: the ST arranges fast acknowledgement."""
        context, _net, st_a, st_b = build_pair()
        rms = open_rms(context, st_a, fast_ack=True)
        acks = []
        rms.on_fast_ack.listen(acks.append)
        rms.send(b"ping")
        context.run(until=context.now + 1.0)
        assert len(acks) == 1
        assert st_b.stats.fast_acks_sent == 1


class TestStFailure:
    def test_network_rms_failure_propagates(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        reasons = []
        rms.on_failure.listen(lambda r, reason: reasons.append(reason))
        network.segment.set_down()
        context.run(until=context.now + 1.0)
        assert reasons
