"""Property tests for internetwork routing and admission accounting.

The routing test cross-validates the from-scratch Dijkstra in
:mod:`repro.netsim.internet` against networkx on random topologies
(networkx is a test-only dependency).
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DelayBound, DelayBoundType, RmsParams, StatisticalSpec
from repro.errors import AdmissionError, RoutingError
from repro.netsim.admission import AdmissionController
from repro.netsim.internet import InternetNetwork
from repro.netsim.packet import FRAME_OVERHEAD_BYTES
from repro.netsim.topology import Host
from repro.sim.context import SimContext

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=1e-4, max_value=0.1, allow_nan=False),
    ),
    min_size=1,
    max_size=16,
).map(
    lambda edges: [
        (a, b, w) for a, b, w in edges if a != b
    ]
)


def build_network(edges):
    """An InternetNetwork plus the equivalent networkx graph."""
    context = SimContext(seed=1)
    network = InternetNetwork(context)
    graph = nx.Graph()
    nodes = sorted({n for a, b, _ in edges for n in (a, b)})
    for node in nodes:
        name = f"n{node}"
        if node in (nodes[0], nodes[-1]):
            network.attach(Host(context, name))
        else:
            network.add_router(name)
        graph.add_node(name)
    seen = set()
    for a, b, weight in edges:
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        bandwidth = 1e5
        network.add_link(f"n{a}", f"n{b}", bandwidth=bandwidth,
                         propagation_delay=weight)
        link_weight = weight + (576 + FRAME_OVERHEAD_BYTES) / bandwidth
        graph.add_edge(f"n{a}", f"n{b}", weight=link_weight)
    return network, graph, f"n{nodes[0]}", f"n{nodes[-1]}"


@settings(max_examples=80, deadline=None)
@given(edges=edge_lists)
def test_dijkstra_matches_networkx(edges):
    if not edges:
        return
    network, graph, src, dst = build_network(edges)
    if not nx.has_path(graph, src, dst):
        with pytest.raises(RoutingError):
            network.route_between(src, dst)
        return
    route = network.route_between(src, dst)
    # The route is a real path through existing links...
    assert route[0] == src and route[-1] == dst
    for a, b in zip(route, route[1:]):
        assert graph.has_edge(a, b)
    # ...and its total weight equals networkx's shortest.
    ours = sum(graph[a][b]["weight"] for a, b in zip(route, route[1:]))
    reference = nx.shortest_path_length(graph, src, dst, weight="weight")
    assert ours == pytest.approx(reference)


deterministic_requests = st.lists(
    st.tuples(
        st.integers(min_value=500, max_value=20_000),  # capacity
        st.floats(min_value=0.02, max_value=1.0, allow_nan=False),  # delay
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=80, deadline=None)
@given(requests=deterministic_requests)
def test_deterministic_reservations_never_oversubscribe(requests):
    """Whatever the admission controller admits, the sum of reserved
    bandwidth stays within the pool -- its defining invariant."""
    pool = AdmissionController(total_bandwidth=2e5, total_buffer_bytes=10**6)
    for index, (capacity, delay) in enumerate(requests):
        params = RmsParams(
            capacity=capacity,
            max_message_size=min(500, capacity),
            delay_bound=DelayBound(delay, 0.0),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        try:
            pool.admit(index, params)
        except AdmissionError:
            pass
        assert pool.reserved_bandwidth <= pool.total_bandwidth + 1e-6
        assert pool.reserved_buffer <= pool.total_buffer_bytes


statistical_requests = st.lists(
    st.tuples(
        st.floats(min_value=100.0, max_value=50_000.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=80, deadline=None)
@given(requests=statistical_requests)
def test_statistical_reservations_respect_share(requests):
    pool = AdmissionController(total_bandwidth=2e5, total_buffer_bytes=10**6,
                               statistical_share=0.9)
    for index, (load, burst) in enumerate(requests):
        params = RmsParams(
            capacity=10_000,
            max_message_size=500,
            delay_bound=DelayBound(0.1, 0.0),
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=load, burstiness=burst),
        )
        try:
            pool.admit(index, params)
        except AdmissionError:
            pass
        assert pool.reserved_bandwidth <= 0.9 * pool.total_bandwidth + 1e-6


@settings(max_examples=50, deadline=None)
@given(requests=deterministic_requests)
def test_release_restores_full_pool(requests):
    pool = AdmissionController(total_bandwidth=2e5, total_buffer_bytes=10**6)
    admitted = []
    for index, (capacity, delay) in enumerate(requests):
        params = RmsParams(
            capacity=capacity,
            max_message_size=min(500, capacity),
            delay_bound=DelayBound(delay, 0.0),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        try:
            pool.admit(index, params)
            admitted.append(index)
        except AdmissionError:
            pass
    for index in admitted:
        pool.release(index)
    assert pool.reserved_bandwidth == 0.0
    assert pool.reserved_buffer == 0
