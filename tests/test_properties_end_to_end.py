"""Property-based tests on cross-layer invariants.

These drive whole simulated systems from hypothesis-generated workloads
and check the invariants the paper's abstraction promises regardless of
parameters: boundary preservation, per-stream ordering, delay-bound
bookkeeping, and negotiation soundness.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.negotiation import CapabilityTable, PerformanceLimits, negotiate
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import NegotiationError
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.st import SubtransportLayer
from repro.subtransport.wire import BundleEntry, decode_bundle, encode_bundle

slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build_pair(seed, loss=0.0):
    context = SimContext(seed=seed)
    network = EthernetNetwork(context, trusted=True, frame_loss_rate=loss)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys)
    return context, st_a, st_b


@slow
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    sizes=st.lists(st.integers(min_value=1, max_value=6000), min_size=1,
                   max_size=25),
)
def test_boundaries_and_order_preserved(seed, sizes):
    """Basic properties 1 and 2 hold for arbitrary message-size mixes,
    including sizes requiring fragmentation."""
    context, st_a, st_b = build_pair(seed)
    params = RmsParams(
        capacity=64 * 1024,
        max_message_size=8 * 1024,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = st_a.create_st_rms("b", port="prop", desired=params,
                                acceptable=params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    got = []
    rms.port.set_handler(lambda m: got.append(m.payload))
    expected = []
    for index, size in enumerate(sizes):
        payload = bytes([index % 256]) * size
        expected.append(payload)
        rms.send(payload)
    context.run(until=context.now + 10.0)
    assert got == expected  # exact boundaries, exact order, no loss


@slow
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    count=st.integers(min_value=1, max_value=30),
)
def test_order_preserved_under_loss(seed, count):
    """Whatever IS delivered arrives in send order even under loss
    (in-sequence delivery is a basic property; loss is allowed for
    best-effort, reordering is not)."""
    context, st_a, st_b = build_pair(seed, loss=0.15)
    params = RmsParams(
        capacity=32 * 1024,
        max_message_size=1400,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = st_a.create_st_rms("b", port="lossy", desired=params,
                                acceptable=params)
    context.run(until=context.now + 20.0)
    if future.failed:
        return  # setup itself lost repeatedly: nothing to check
    rms = future.result()
    got = []
    rms.port.set_handler(lambda m: got.append(m.payload[0]))

    def producer():
        for index in range(count):
            rms.send(bytes([index]) * 200)
            yield 0.005

    context.spawn(producer())
    context.run(until=context.now + 10.0)
    assert got == sorted(got)
    assert len(set(got)) == len(got)  # no duplicates either


@slow
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    payloads=st.lists(st.binary(min_size=0, max_size=300), min_size=1,
                      max_size=15),
)
def test_bundle_roundtrip_arbitrary_payloads(seed, payloads):
    entries = [
        BundleEntry(st_rms_id=i, seq=i, flags=0, payload=p, send_time=0.0)
        for i, p in enumerate(payloads)
    ]
    decoded = decode_bundle(encode_bundle(entries))
    assert [e.payload for e in decoded] == payloads


capability_limits = st.builds(
    PerformanceLimits,
    best_delay=st.builds(
        DelayBound,
        a=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1e-4, allow_nan=False),
    ),
    max_capacity=st.integers(min_value=100, max_value=10**6),
    max_message_size=st.integers(min_value=64, max_value=10**4),
    floor_bit_error_rate=st.floats(min_value=0.0, max_value=1e-3,
                                   allow_nan=False),
    strongest_type=st.sampled_from(list(DelayBoundType)),
)

request_params = st.builds(
    lambda cap, mms, a, b, t: RmsParams(
        capacity=max(cap, mms),
        max_message_size=mms,
        delay_bound=DelayBound(a, b),
        delay_bound_type=t,
        statistical=None,
        bit_error_rate=1e-2,
    ),
    cap=st.integers(min_value=64, max_value=10**6),
    mms=st.integers(min_value=64, max_value=10**4),
    a=st.floats(min_value=1e-4, max_value=2.0, allow_nan=False),
    b=st.floats(min_value=0.0, max_value=1e-4, allow_nan=False),
    t=st.just(DelayBoundType.BEST_EFFORT),
)


@settings(max_examples=200, deadline=None)
@given(desired=request_params, limits=capability_limits)
def test_negotiation_never_grants_beyond_limits(desired, limits):
    """Whatever negotiate() grants respects the provider's hard limits
    (message size and, for the granted value, capacity); best-effort
    requests are never rejected on performance grounds."""
    table = CapabilityTable()
    table.set_uniform(limits)
    try:
        actual = negotiate(desired, desired, table)
    except NegotiationError:
        # Best-effort may still be rejected when the *physical* maximum
        # message size cannot cover the request.
        assert limits.max_message_size < desired.max_message_size or (
            min(desired.capacity, limits.max_capacity)
            < desired.max_message_size
        )
        return
    assert actual.max_message_size <= limits.max_message_size
    assert actual.capacity <= max(desired.capacity, 1)
    assert actual.max_message_size <= actual.capacity
    assert actual.bit_error_rate >= limits.floor_bit_error_rate


@settings(max_examples=100, deadline=None)
@given(
    desired=request_params,
    limits=capability_limits,
)
def test_negotiation_is_idempotent(desired, limits):
    """Re-requesting exactly what was granted grants it again."""
    table = CapabilityTable()
    table.set_uniform(limits)
    try:
        first = negotiate(desired, desired, table)
    except NegotiationError:
        return
    second = negotiate(first, first, table)
    assert second.capacity == first.capacity
    assert second.max_message_size == first.max_message_size
    assert second.delay_bound == first.delay_bound
