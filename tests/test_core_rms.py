"""Tests for messages, the RMS base class, and accounting."""

from __future__ import annotations

import pytest

from repro.core.accounting import AccountingLedger, Tariff
from repro.core.message import Label, Message
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.core.rms import Rms, RmsLevel, RmsState
from repro.errors import MessageTooLargeError, ParameterError, RmsFailedError
from repro.sim.context import SimContext


class LoopbackRms(Rms):
    """A test provider delivering after a fixed latency."""

    def __init__(self, context, params, latency=0.01, **kwargs):
        super().__init__(
            context, params, Label("a", "p"), Label("b", "p"), **kwargs
        )
        self.latency = latency

    def _transmit(self, message):
        self.context.loop.call_after(self.latency, self._deliver, message)


@pytest.fixture
def context():
    return SimContext(seed=9)


@pytest.fixture
def params():
    return RmsParams(
        capacity=10_000,
        max_message_size=1_000,
        delay_bound=DelayBound(0.1, 1e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


class TestMessage:
    def test_payload_must_be_bytes(self):
        with pytest.raises(ParameterError):
            Message("not bytes")  # type: ignore[arg-type]

    def test_bytearray_accepted_and_frozen(self):
        message = Message(bytearray(b"abc"))
        assert message.payload == b"abc"
        assert isinstance(message.payload, bytes)

    def test_size_is_payload_length(self):
        assert Message(b"12345").size == 5

    def test_wire_size_accounts_labels_and_headers(self):
        bare = Message(b"1234")
        labeled = Message(b"1234", source=Label("a"), target=Label("b"))
        labeled.headers["seq"] = 1
        assert bare.wire_size == 4
        assert labeled.wire_size == 4 + 8 + 8 + Message.HEADER_FIELD_BYTES

    def test_delay_requires_both_stamps(self):
        message = Message(b"x")
        assert message.delay is None
        message.send_time = 1.0
        message.deliver_time = 1.5
        assert message.delay == pytest.approx(0.5)

    def test_copy_gets_fresh_id(self):
        message = Message(b"x", headers={"k": 1})
        clone = message.copy()
        assert clone.message_id != message.message_id
        assert clone.headers == message.headers
        clone.headers["k"] = 2
        assert message.headers["k"] == 1

    def test_message_ids_increase(self):
        first = Message(b"")
        second = Message(b"")
        assert second.message_id > first.message_id

    def test_label_string(self):
        assert str(Label("host1", "port9")) == "host1:port9"


class TestRmsBasicProperties:
    def test_message_boundaries_preserved(self, context, params):
        """Basic property 1: each send is one delivery."""
        rms = LoopbackRms(context, params)
        got = []
        rms.port.set_handler(lambda m: got.append(m))
        rms.send(b"a" * 100)
        rms.send(b"b" * 200)
        context.run()
        assert [m.size for m in got] == [100, 200]

    def test_in_sequence_delivery(self, context, params):
        """Basic property 2: delivery order matches send order."""
        rms = LoopbackRms(context, params)
        got = []
        rms.port.set_handler(lambda m: got.append(m.payload[0]))
        for index in range(20):
            rms.send(bytes([index]))
        context.run()
        assert got == list(range(20))

    def test_failure_notifies_clients(self, context, params):
        """Basic property 3: clients are notified of RMS failure."""
        rms = LoopbackRms(context, params)
        notified = []
        rms.on_failure.listen(lambda r, reason: notified.append(reason))
        rms.fail("link died")
        assert notified == ["link died"]
        assert rms.state is RmsState.FAILED

    def test_send_after_failure_raises(self, context, params):
        rms = LoopbackRms(context, params)
        rms.fail()
        with pytest.raises(RmsFailedError):
            rms.send(b"x")

    def test_send_after_delete_raises(self, context, params):
        rms = LoopbackRms(context, params)
        rms.delete()
        with pytest.raises(RmsFailedError):
            rms.send(b"x")

    def test_fail_is_idempotent(self, context, params):
        rms = LoopbackRms(context, params)
        count = []
        rms.on_failure.listen(lambda r, reason: count.append(1))
        rms.fail()
        rms.fail()
        assert len(count) == 1


class TestRmsEnforcement:
    def test_max_message_size_enforced(self, context, params):
        """Section 2.2: the MMS limit is enforced by the sender."""
        rms = LoopbackRms(context, params)
        with pytest.raises(MessageTooLargeError):
            rms.send(b"x" * 1001)

    def test_capacity_violations_counted_not_blocked(self, context, params):
        """Section 4.4: the provider counts but does not block."""
        rms = LoopbackRms(context, params, latency=1.0)
        for _ in range(15):  # 15 kB outstanding > 10 kB capacity
            rms.send(b"x" * 1000)
        assert rms.stats.capacity_violations > 0
        assert rms.stats.messages_sent == 15

    def test_outstanding_bytes_tracked(self, context, params):
        rms = LoopbackRms(context, params, latency=0.5)
        rms.send(b"x" * 400)
        assert rms.outstanding_bytes == 400
        context.run()
        assert rms.outstanding_bytes == 0

    def test_late_delivery_counted(self, context, params):
        slow = LoopbackRms(context, params, latency=0.5)  # bound is 0.1 s
        slow.send(b"x" * 100)
        context.run()
        assert slow.stats.messages_late == 1

    def test_on_time_delivery_not_late(self, context, params):
        fast = LoopbackRms(context, params, latency=0.01)
        fast.send(b"x" * 100)
        context.run()
        assert fast.stats.messages_late == 0
        assert fast.stats.delays == [pytest.approx(0.01)]

    def test_explicit_deadline_overrides_bound(self, context, params):
        rms = LoopbackRms(context, params)
        message = rms.send(b"x", deadline=context.now + 0.042)
        assert message.deadline == pytest.approx(0.042)

    def test_drop_accounting(self, context, params):
        rms = LoopbackRms(context, params)
        message = rms.send(b"x" * 100)
        rms._drop(message, "test")
        assert rms.stats.messages_dropped == 1
        assert rms.stats.loss_rate == pytest.approx(1.0)
        assert rms.outstanding_bytes == 0

    def test_levels_enumeration(self):
        assert RmsLevel.NETWORK < RmsLevel.SUBTRANSPORT < RmsLevel.SUBUSER < RmsLevel.USER


class TestAccounting:
    def test_creator_owns_and_pays(self, context, params):
        """Section 2.4 ownership + section 5 charging model."""
        ledger = AccountingLedger()
        rms = LoopbackRms(context, params)
        ledger.open_rms("alice", rms)
        rms.send(b"x" * 1000)
        context.run(until=10.0)
        rms.delete()
        entry = ledger.close_rms(rms)
        assert entry.owner == "alice"
        assert entry.setup_cost > 0
        assert entry.bytes_charge == pytest.approx(1000 * ledger.tariff.per_byte)
        assert entry.time_charge > 0
        assert ledger.owner_total("alice") == pytest.approx(entry.total)

    def test_stronger_guarantees_cost_more(self, context):
        tariff = Tariff()
        deterministic = RmsParams(
            capacity=10_000,
            max_message_size=1_000,
            delay_bound=DelayBound(0.1),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        best_effort = deterministic.with_(
            delay_bound_type=DelayBoundType.BEST_EFFORT
        )
        assert tariff.parameter_rate(deterministic) > tariff.parameter_rate(
            best_effort
        )

    def test_unknown_rms_close_raises(self, context, params):
        ledger = AccountingLedger()
        rms = LoopbackRms(context, params)
        with pytest.raises(KeyError):
            ledger.close_rms(rms)

    def test_grand_total_sums_entries(self, context, params):
        ledger = AccountingLedger()
        first = LoopbackRms(context, params)
        second = LoopbackRms(context, params)
        ledger.open_rms("alice", first)
        ledger.open_rms("bob", second)
        assert ledger.grand_total == pytest.approx(2 * ledger.tariff.setup_cost)
