"""Tests for the scale-out routing engine: forwarding tables must
reproduce per-pair Dijkstra exactly, compiled plans must forward the
same bytes at the same times, and invalidation must be scoped -- a flap
repairs only the routes that crossed the flapped link."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import RoutingError
from repro.netsim.admission import NULL_POOLS
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.sim.context import SimContext

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=1e-4, max_value=0.1, allow_nan=False),
    ),
    min_size=1,
    max_size=16,
).map(lambda edges: [(a, b, w) for a, b, w in edges if a != b])


def best_effort(mms: int = 500) -> RmsParams:
    return RmsParams(
        capacity=16 * 1024,
        max_message_size=mms,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def build_pair(edges):
    """Two identical networks, engine on and off, plus the node names."""
    networks = []
    nodes = sorted({n for a, b, _ in edges for n in (a, b)})
    for route_engine in (True, False):
        context = SimContext(seed=1)
        network = InternetNetwork(context, route_engine=route_engine)
        for node in nodes:
            network.attach(Host(context, f"n{node}"))
        seen = set()
        for a, b, weight in edges:
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            network.add_link(f"n{a}", f"n{b}", bandwidth=1e5,
                             propagation_delay=weight)
        networks.append(network)
    return networks[0], networks[1], [f"n{n}" for n in nodes]


class TestTableRouteExactness:
    """The tentpole equivalence: a route reconstructed from a full-run
    forwarding table is *exactly* the per-pair early-exit Dijkstra route
    (same relaxations, same tie-breaks), for every pair."""

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists)
    def test_engine_routes_equal_legacy_routes(self, edges):
        if not edges:
            return
        engine_net, legacy_net, nodes = build_pair(edges)
        for src in nodes:
            for dst in nodes:
                try:
                    legacy_route = legacy_net.route_between(src, dst)
                except RoutingError:
                    with pytest.raises(RoutingError):
                        engine_net.route_between(src, dst)
                    continue
                assert engine_net.route_between(src, dst) == legacy_route

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists)
    def test_can_reach_matches_route_existence(self, edges):
        if not edges:
            return
        engine_net, legacy_net, nodes = build_pair(edges)
        for src in nodes:
            for dst in nodes:
                assert (engine_net.can_reach(src, dst)
                        == legacy_net.can_reach(src, dst))

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists)
    def test_path_profiles_equal(self, edges):
        if not edges:
            return
        engine_net, legacy_net, nodes = build_pair(edges)
        src, dst = nodes[0], nodes[-1]
        if not legacy_net.can_reach(src, dst):
            return
        engine_profile = engine_net._path_profile(src, dst)
        legacy_profile = legacy_net._path_profile(src, dst)
        assert engine_profile[0] == legacy_profile[0]  # fixed delay
        assert engine_profile[1] == legacy_profile[1]  # per-byte delay
        assert list(engine_profile[2]) == list(legacy_profile[2])


def diamond(route_engine: bool, seed: int = 7):
    """a -- r1 -- (lossy r2 path | slow direct) -- r3 -- b."""
    context = SimContext(seed=seed)
    network = InternetNetwork(context, trusted=True,
                              route_engine=route_engine)
    for name in ("a", "b"):
        network.attach(Host(context, name))
    for name in ("r1", "r2", "r3"):
        network.add_router(name)
    network.add_link("a", "r1", bandwidth=2.5e5, propagation_delay=1e-3)
    network.add_link("r1", "r2", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.1)
    network.add_link("r2", "r3", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.1)
    network.add_link("r1", "r3", bandwidth=6e4, propagation_delay=9e-3)
    network.add_link("r3", "b", bandwidth=2.5e5, propagation_delay=1e-3)
    return context, network


def lossy_trace(route_engine: bool, messages: int = 60):
    """Fixed-seed delivery trace of the lossy diamond."""
    context, network = diamond(route_engine)
    params = best_effort()
    future = network.create_rms(Label("a"), Label("b"), params, params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    deliveries = []
    rms.port.set_handler(
        lambda message: deliveries.append(
            (bytes(message.payload), context.now)
        )
    )
    for index in range(messages):
        rms.send(bytes([index % 251]) * 48)
        if index % 8 == 7:
            context.run(until=context.now + 0.05)
    context.run(until=context.now + 3.0)
    return deliveries, rms.stats.messages_sent, rms.stats.messages_delivered


class TestEngineTraceEquivalence:
    """Engine on vs off on one seed: byte-identical delivery traces.
    The engine may change how fast the host simulates a static topology,
    never what the topology does."""

    def test_lossy_trace_identical(self):
        engine = lossy_trace(route_engine=True)
        legacy = lossy_trace(route_engine=False)
        assert engine == legacy
        deliveries, sent, delivered = engine
        assert sent == 60
        assert 0 < delivered < sent  # the loss model really fired
        assert len(deliveries) == delivered

    def test_lossless_trace_identical_and_complete(self):
        def clean(route_engine):
            context = SimContext(seed=3)
            network = InternetNetwork(context, trusted=True,
                                      route_engine=route_engine)
            network.attach(Host(context, "a"))
            network.attach(Host(context, "b"))
            network.add_router("g")
            network.add_link("a", "g", bandwidth=1e5,
                             propagation_delay=1e-3)
            network.add_link("g", "b", bandwidth=1e5,
                             propagation_delay=1e-3)
            params = best_effort()
            future = network.create_rms(Label("a"), Label("b"),
                                        params, params)
            context.run(until=context.now + 1.0)
            rms = future.result()
            got = []
            rms.port.set_handler(
                lambda message: got.append(
                    (bytes(message.payload), context.now)
                )
            )
            for index in range(30):
                rms.send(bytes([index]) * 64)
            context.run(until=context.now + 3.0)
            return got

        engine = clean(True)
        legacy = clean(False)
        assert engine == legacy
        assert len(engine) == 30


def two_region_network():
    """Two link-disjoint regions on one internetwork.

    Region 1: h1 -- g1 -- g2 -- h2, with a slower bypass h1 -- g3 -- h2.
    Region 2: h3 -- g4 -- h4 (no links shared with region 1).
    """
    context = SimContext(seed=5)
    network = InternetNetwork(context, trusted=True)
    for name in ("h1", "h2", "h3", "h4"):
        network.attach(Host(context, name))
    for name in ("g1", "g2", "g3", "g4"):
        network.add_router(name)
    network.add_link("h1", "g1", bandwidth=1e5, propagation_delay=1e-3)
    network.add_link("g1", "g2", bandwidth=1e5, propagation_delay=2e-3)
    network.add_link("g2", "h2", bandwidth=1e5, propagation_delay=1e-3)
    network.add_link("h1", "g3", bandwidth=1e5, propagation_delay=0.05)
    network.add_link("g3", "h2", bandwidth=1e5, propagation_delay=0.05)
    network.add_link("h3", "g4", bandwidth=1e5, propagation_delay=1e-3)
    network.add_link("g4", "h4", bandwidth=1e5, propagation_delay=1e-3)
    return context, network


class TestScopedInvalidation:
    def test_fixed_topology_pays_no_tracking(self):
        _, network = two_region_network()
        engine = network._engine
        network.route_between("h1", "h2")
        network.route_between("h3", "h4")
        assert not engine._track
        assert engine._edge_tables == {} and engine._edge_plans == {}
        # The first state change switches tracking on with one full
        # invalidation.
        invalidations = engine.full_invalidations
        network.link("g1", "g2").set_down()
        assert engine._track
        assert engine.full_invalidations == invalidations + 1

    def test_flap_spares_disjoint_routes_by_identity(self):
        _, network = two_region_network()
        engine = network._engine
        # Prime tracking (first flap is the full-invalidation fallback).
        network.link("g1", "g2").set_down()
        network.link("g1", "g2").set_up()
        network.link("g2", "g1").set_down()
        network.link("g2", "g1").set_up()
        short = network.route_between("h1", "h2")
        assert short == ["h1", "g1", "g2", "h2"]
        other_plan = network._engine.plan("h3", "h4")
        other_table = engine.table("h3")
        # Down: only region-1 state is touched.
        network.link("g1", "g2").set_down()
        assert engine.table("h3") is other_table
        assert engine.plan("h3", "h4") is other_plan
        assert not other_plan.dead
        assert network.route_between("h1", "h2") == ["h1", "g3", "h2"]
        # Up: the asymmetric side routes through the scoped probe, and
        # the flapped link's routes recover...
        network.link("g1", "g2").set_up()
        assert network.route_between("h1", "h2") == short
        # ...while the disjoint region still holds its exact objects.
        assert engine.table("h3") is other_table
        assert engine.plan("h3", "h4") is other_plan

    def test_flapped_rms_fails_and_reestablishes(self):
        context, network = two_region_network()
        params = best_effort()
        future = network.create_rms(Label("h1"), Label("h2"),
                                    params, params)
        context.run(until=context.now + 1.0)
        rms = future.result()
        reasons = []
        rms.on_failure.listen(lambda r, reason: reasons.append(reason))
        network.link("g1", "g2").set_down()
        assert reasons  # the admitted route died with its link
        # Re-establishment immediately finds the bypass...
        retry = network.create_rms(Label("h1"), Label("h2"),
                                   params, params)
        context.run(until=context.now + 1.0)
        assert retry.result().route == ["h1", "g3", "h2"]
        # ...and after recovery new streams use the short path again.
        network.link("g1", "g2").set_up()
        final = network.create_rms(Label("h1"), Label("h2"),
                                   params, params)
        context.run(until=context.now + 1.0)
        assert final.result().route == ["h1", "g1", "g2", "h2"]

    def test_link_up_improvement_probe_is_scoped(self):
        _, network = two_region_network()
        engine = network._engine
        network.link("g1", "g2").set_down()  # prime tracking
        network.link("g1", "g2").set_up()
        # Build tables for both regions under tracking.
        assert network.route_between("h1", "h2") == ["h1", "g1", "g2", "h2"]
        network.route_between("h3", "h4")
        region2_table = engine.table("h3")
        network.link("g1", "g2").set_down()
        network.route_between("h1", "h2")  # rebuilt via the bypass
        # The up-probe drops only sources the restored link improves:
        # region 2 cannot use g1->g2 at all.
        network.link("g1", "g2").set_up()
        assert engine.table("h3") is region2_table
        assert network.route_between("h1", "h2") == ["h1", "g1", "g2", "h2"]


class TestCanReachProbe:
    def test_can_reach_tracks_link_state(self):
        _, network = two_region_network()
        assert network.can_reach("h3", "h4")
        network.link("h3", "g4").set_down()
        network.link("g4", "h3").set_down()
        assert not network.can_reach("h3", "h4")
        network.link("h3", "g4").set_up()
        network.link("g4", "h3").set_up()
        assert network.can_reach("h3", "h4")

    def test_can_reach_edge_cases(self):
        _, network = two_region_network()
        assert network.can_reach("h1", "h1")  # trivially reachable
        assert not network.can_reach("h1", "nope")
        assert not network.can_reach("nope", "h1")
        # Cross-region: no links connect the regions.
        assert not network.can_reach("h1", "h3")


class TestNullPools:
    def test_empty_route_uses_shared_module_pool(self):
        _, network = two_region_network()
        assert network._admission_pools(["h1"]) is NULL_POOLS
        assert network._admission_pools([]) is NULL_POOLS
        # Two networks share the same instance -- no per-call throwaway
        # controllers.
        _, other = two_region_network()
        assert other._admission_pools(["h4"]) is NULL_POOLS

    def test_shared_null_pool_admits_best_effort(self):
        pool = NULL_POOLS[0]
        reservation = pool.admit(10**9, best_effort())
        try:
            assert reservation.bandwidth == 0.0
            assert reservation.buffer_bytes == 0
        finally:
            pool.release(10**9)


class TestPlanDatapath:
    def test_plan_is_cached_and_shared(self):
        _, network = two_region_network()
        plan = network._engine.plan("h1", "h2")
        assert network._engine.plan("h1", "h2") is plan
        # route_between returns the plan's shared route list.
        assert network.route_between("h1", "h2") is plan.route

    def test_rms_carries_its_plan(self):
        context, network = two_region_network()
        params = best_effort()
        future = network.create_rms(Label("h1"), Label("h2"),
                                    params, params)
        context.run(until=context.now + 1.0)
        rms = future.result()
        assert rms.plan is not None
        assert rms.plan.route == rms.route
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"x" * 200)
        context.run(until=context.now + 1.0)
        assert len(got) == 1

    def test_repinning_route_drops_plan(self):
        context, network = two_region_network()
        params = best_effort()
        future = network.create_rms(Label("h1"), Label("h2"),
                                    params, params)
        context.run(until=context.now + 1.0)
        rms = future.result()
        assert rms.plan is not None
        rms.route = ["h1", "g3", "h2"]  # downmux-style pinning
        assert rms.plan is None
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"y" * 100)
        context.run(until=context.now + 1.0)
        assert len(got) == 1  # forwarded along the pinned route

    def test_engine_off_leaves_plan_none(self):
        context = SimContext(seed=2)
        network = InternetNetwork(context, trusted=True,
                                  route_engine=False)
        network.attach(Host(context, "a"))
        network.attach(Host(context, "b"))
        network.add_router("g")
        network.add_link("a", "g", bandwidth=1e5, propagation_delay=1e-3)
        network.add_link("g", "b", bandwidth=1e5, propagation_delay=1e-3)
        params = best_effort()
        future = network.create_rms(Label("a"), Label("b"), params, params)
        context.run(until=context.now + 1.0)
        rms = future.result()
        assert rms.plan is None
        assert network._route_plan("a", "b") is None
