"""End-to-end tests of whole DASH systems (Figures 1-3)."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.errors import NetworkError
from repro.subtransport.config import StConfig
from repro.transport.stream import StreamConfig


class TestDashSystem:
    def test_quickstart_flow(self):
        system = DashSystem(seed=1)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        session = system.connect(node_a, node_b, port="app")
        system.run(until=1.0)
        rms = session.established.result()
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"hello DASH")
        system.run(until=2.0)
        assert got[0].payload == b"hello DASH"

    def test_rkom_between_nodes(self):
        system = DashSystem(seed=2)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        node_b.rkom.register_handler("add", lambda p, s: bytes([p[0] + p[1]]))
        future = system.connect(node_a, node_b, kind="rkom").call(
            "add", bytes([3, 4])
        )
        system.run(until=2.0)
        assert future.result() == bytes([7])

    def test_duplicate_node_rejected(self):
        system = DashSystem()
        system.add_ethernet()
        system.add_node("a")
        with pytest.raises(NetworkError):
            system.add_node("a")

    def test_node_before_network_rejected(self):
        system = DashSystem()
        with pytest.raises(NetworkError):
            system.add_node("a")

    def test_stream_between_nodes(self):
        system = DashSystem(seed=3)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        session = system.connect("a", "b", kind="stream", config=StreamConfig())
        system.run(until=2.0)
        assert session.is_up
        received = []

        def consumer():
            for _ in range(5):
                message = yield session.receive()
                received.append(message)

        system.context.spawn(consumer())
        for index in range(5):
            session.send(bytes([index]) * 500)
        system.run(until=10.0)
        assert len(received) == 5

    def test_multihomed_node_prefers_first_network(self):
        """Figure 1: one stack over multiple network types."""
        system = DashSystem(seed=4)
        system.add_ethernet(name="lan", trusted=True)
        internet = system.add_internet(name="wan")
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        internet.add_router("g")
        internet.add_link("a", "g", bandwidth=1e5, propagation_delay=0.01)
        internet.add_link("g", "b", bandwidth=1e5, propagation_delay=0.01)
        assert node_a.st.network_for("b").name == "lan"

    def test_same_workload_over_both_network_types(self):
        """The network-independent part is genuinely independent: the
        identical client code runs over Ethernet and the internetwork."""
        reports = {}
        for net_type in ("ethernet", "internet"):
            system = DashSystem(seed=5)
            if net_type == "ethernet":
                system.add_ethernet(trusted=True)
                system.add_node("a")
                system.add_node("b")
            else:
                internet = system.add_internet(trusted=True)
                system.add_node("a")
                system.add_node("b")
                internet.add_router("g")
                internet.add_link("a", "g", bandwidth=1.25e5,
                                  propagation_delay=0.002)
                internet.add_link("g", "b", bandwidth=1.25e5,
                                  propagation_delay=0.002)
            node_a, node_b = system.nodes["a"], system.nodes["b"]
            node_b.rkom.register_handler("echo", lambda p, s: p)
            rkom = system.connect(node_a, node_b, kind="rkom")
            future = rkom.call("echo", b"ping")
            system.run(until=10.0)
            reports[net_type] = future.result()
        assert reports["ethernet"] == reports["internet"] == b"ping"

    def test_st_config_applies_to_all_nodes(self):
        config = StConfig(piggyback_enabled=False)
        system = DashSystem(seed=6, st_config=config)
        system.add_ethernet(trusted=True)
        node = system.add_node("a")
        assert node.st.config.piggyback_enabled is False

    def test_deterministic_same_seed_same_trace(self):
        """Simulations are reproducible bit-for-bit from the seed."""

        def run_once():
            system = DashSystem(seed=99)
            system.add_ethernet(trusted=False, frame_loss_rate=0.05)
            node_a = system.add_node("a")
            node_b = system.add_node("b")
            node_b.rkom.register_handler("echo", lambda p, s: p)
            rkom = system.connect(node_a, node_b, kind="rkom")
            futures = [rkom.call("echo", bytes([i])) for i in range(5)]
            system.run(until=20.0)
            return (
                [f.done and not f.failed for f in futures],
                node_a.st.stats.bundles_sent,
                system.context.loop.events_run,
            )

        assert run_once() == run_once()

    def test_different_seeds_diverge(self):
        def run_once(seed):
            system = DashSystem(seed=seed)
            system.add_ethernet(trusted=True, frame_loss_rate=0.2)
            node_a = system.add_node("a")
            node_b = system.add_node("b")
            node_b.rkom.register_handler("echo", lambda p, s: p)
            rkom = system.connect(node_a, node_b, kind="rkom")
            for index in range(10):
                rkom.call("echo", bytes([index]), timeout=0.2)
            system.run(until=20.0)
            return system.context.loop.events_run

        assert run_once(1) != run_once(2)

    def test_cpu_policy_propagates(self):
        system = DashSystem(seed=7, cpu_policy="fifo")
        system.add_ethernet()
        node = system.add_node("a")
        assert node.cpu.policy == "fifo"
