"""Integration tests for network objects and network-level RMS (3.1)."""

from __future__ import annotations

import pytest

from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import AdmissionError, NegotiationError, NetworkError, RoutingError
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.sim.context import SimContext


def best_effort(capacity=16384, mms=1400):
    return RmsParams(
        capacity=capacity,
        max_message_size=mms,
        delay_bound=DelayBound(0.5, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def create(context, network, src="a", dst="b", desired=None, acceptable=None,
           extra_time=5.0):
    future = network.create_rms(
        Label(src), Label(dst), desired or best_effort(),
        acceptable or desired or best_effort(),
    )
    context.run(until=context.now + extra_time)
    return future.result()


@pytest.fixture
def context():
    return SimContext(seed=21)


@pytest.fixture
def ether(context):
    network = EthernetNetwork(context, trusted=True)
    for name in ("a", "b", "c"):
        network.attach(Host(context, name))
    return network


class TestEthernetRms:
    def test_setup_handshake_takes_a_round_trip(self, context, ether):
        future = ether.create_rms(Label("a"), Label("b"), best_effort(), best_effort())
        assert not future.done  # setup is not instantaneous
        context.run(until=1.0)
        rms = future.result()
        assert rms.established
        assert context.now > 0.0

    def test_data_flows_after_setup(self, context, ether):
        rms = create(context, ether)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"payload" * 10)
        context.run(until=context.now + 2.0)
        assert len(got) == 1
        assert got[0].payload == b"payload" * 10

    def test_unattached_host_rejected(self, context, ether):
        with pytest.raises(NetworkError):
            ether.create_rms(Label("a"), Label("zz"), best_effort(), best_effort())

    def test_mms_above_mtu_rejected(self, context, ether):
        params = best_effort(mms=5000)
        with pytest.raises(NegotiationError):
            ether.create_rms(Label("a"), Label("b"), params, params)

    def test_deterministic_admission_enforced(self, context, ether):
        params = RmsParams(
            capacity=64_000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 1e-6),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        # implied bandwidth = 64k/~0.1 = 640 kB/s; segment = 1.25 MB/s.
        create(context, ether, desired=params)
        with pytest.raises(AdmissionError):
            ether.create_rms(Label("a"), Label("c"), params, params)

    def test_delete_releases_admission(self, context, ether):
        params = RmsParams(
            capacity=64_000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 1e-6),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        rms = create(context, ether, desired=params)
        ether.delete_rms(rms)
        create(context, ether, src="a", dst="c", desired=params)

    def test_untrusted_network_lacks_privacy_combo(self, context):
        network = EthernetNetwork(context, trusted=False)
        network.attach(Host(context, "a"))
        network.attach(Host(context, "b"))
        params = best_effort().with_(privacy=True)
        with pytest.raises(NegotiationError):
            network.create_rms(Label("a"), Label("b"), params, params)

    def test_link_encryption_provides_privacy_combo(self, context):
        network = EthernetNetwork(context, trusted=False, link_encryption=True)
        network.attach(Host(context, "a"))
        network.attach(Host(context, "b"))
        params = best_effort().with_(privacy=True)
        future = network.create_rms(Label("a"), Label("b"), params, params)
        context.run(until=1.0)
        assert future.result().params.privacy

    def test_segment_failure_fails_rms(self, context, ether):
        rms = create(context, ether)
        reasons = []
        rms.on_failure.listen(lambda r, reason: reasons.append(reason))
        ether.segment.set_down()
        assert reasons and "down" in reasons[0]

    def test_sniffer_sees_frames(self, context, ether):
        rms = create(context, ether)
        seen = []
        ether.add_sniffer(lambda frame: seen.append(frame))
        rms.send(b"not-secret")
        context.run(until=context.now + 2.0)
        assert any(f.message.payload == b"not-secret" for f in seen)

    def test_capability_table_reports_mtu(self, context, ether):
        table = ether.capability_table("a", "b")
        limits = table.limits_for(best_effort())
        assert limits.max_message_size == 1500

    def test_setup_survives_loss(self, context):
        lossy = EthernetNetwork(context, trusted=True, frame_loss_rate=0.5)
        lossy.setup_retries = 12
        lossy.setup_timeout = 0.05
        lossy.attach(Host(context, "a"))
        lossy.attach(Host(context, "b"))
        future = lossy.create_rms(Label("a"), Label("b"), best_effort(), best_effort())
        context.run(until=60.0)
        assert future.done  # retransmitted setup eventually lands or fails
        # With 4 retries at 50% loss, success is overwhelmingly likely.
        assert not future.failed


class TestInternetRms:
    @pytest.fixture
    def inet(self, context):
        network = InternetNetwork(context)
        for name in ("h1", "h2", "h3"):
            network.attach(Host(context, name))
        network.add_router("g1")
        network.add_router("g2")
        network.add_link("h1", "g1", bandwidth=1.25e5, propagation_delay=0.001)
        network.add_link("g1", "g2", bandwidth=7000.0, propagation_delay=0.02)
        network.add_link("g2", "h2", bandwidth=1.25e5, propagation_delay=0.001)
        network.add_link("g1", "h3", bandwidth=1.25e5, propagation_delay=0.001)
        return network

    def test_routing_shortest_path(self, inet):
        assert inet.route_between("h1", "h2") == ["h1", "g1", "g2", "h2"]
        assert inet.route_between("h1", "h3") == ["h1", "g1", "h3"]

    def test_no_route_raises(self, context, inet):
        inet.attach(Host(context, "island"))
        with pytest.raises(RoutingError):
            inet.route_between("h1", "island")

    def test_end_to_end_delivery(self, context, inet):
        params = best_effort(mms=500)
        rms = create(context, inet, src="h1", dst="h2", desired=params)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"x" * 400)
        context.run(until=context.now + 5.0)
        assert len(got) == 1
        # Delay at least the sum of propagation delays.
        assert got[0].delay > 0.022

    def test_link_failure_fails_routed_rms(self, context, inet):
        params = best_effort(mms=500)
        rms = create(context, inet, src="h1", dst="h2", desired=params)
        reasons = []
        rms.on_failure.listen(lambda r, reason: reasons.append(reason))
        inet.link("g1", "g2").set_down()
        assert reasons

    def test_link_failure_spares_other_routes(self, context, inet):
        params = best_effort(mms=500)
        target = create(context, inet, src="h1", dst="h3", desired=params)
        inet.link("g1", "g2").set_down()
        assert target.is_open

    def test_reroute_after_failure(self, context, inet):
        inet.add_link("g1", "h2", bandwidth=1.25e5, propagation_delay=0.5)
        # Initially the two-hop path wins (0.022 s < 0.1 s).
        assert inet.route_between("h1", "h2") == ["h1", "g1", "g2", "h2"]
        inet.link("g1", "g2").set_down()
        assert inet.route_between("h1", "h2") == ["h1", "g1", "h2"]

    def test_duplicate_link_rejected(self, context, inet):
        with pytest.raises(NetworkError):
            inet.add_link("h1", "g1")

    def test_router_name_collision_rejected(self, context, inet):
        with pytest.raises(NetworkError):
            inet.add_router("h1")

    def test_admission_along_whole_path(self, context, inet):
        """The g1-g2 trunk (7 kB/s) is the bottleneck for h1->h2."""
        params = RmsParams(
            capacity=4000,
            max_message_size=500,
            delay_bound=DelayBound(0.5, 1e-3),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        create(context, inet, src="h1", dst="h2", desired=params)
        with pytest.raises(AdmissionError):
            inet.create_rms(Label("h1"), Label("h2"), params, params)
        # But the h1->h3 path that avoids the trunk still has room.
        create(context, inet, src="h1", dst="h3", desired=params)

    def test_gateway_drop_counter(self, context, inet):
        assert inet.total_gateway_drops() == 0

    def test_source_quench_emitted_on_overrun(self, context):
        network = InternetNetwork(context, source_quench=True)
        network.attach(Host(context, "h1"))
        network.attach(Host(context, "h2"))
        network.add_router("g")
        network.add_link("h1", "g", bandwidth=1e6, propagation_delay=0.0001)
        network.add_link("g", "h2", bandwidth=2000.0, propagation_delay=0.0001,
                         buffer_bytes=2000)
        quenches = []
        network.register_quench_handler("h1", quenches.append)
        params = best_effort(capacity=10**6, mms=500)
        rms = create(context, network, src="h1", dst="h2", desired=params)
        for _ in range(40):
            rms.send(b"x" * 400)
        context.run(until=context.now + 10.0)
        assert network.quenches_sent > 0
        assert len(quenches) > 0
