"""Unit tests for the discrete-event loop (repro.sim.events)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventLoop, Signal, TimerGroup


class TestEventLoop:
    def test_starts_at_time_zero(self):
        loop = EventLoop()
        assert loop.now == 0.0

    def test_custom_start_time(self):
        loop = EventLoop(start_time=10.0)
        assert loop.now == 10.0

    def test_call_after_advances_clock(self):
        loop = EventLoop()
        times = []
        loop.call_after(1.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [1.5]
        assert loop.now == 1.5

    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_after(3.0, lambda: order.append("c"))
        loop.call_after(1.0, lambda: order.append("a"))
        loop.call_after(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        loop = EventLoop()
        order = []
        for tag in range(10):
            loop.call_at(1.0, order.append, tag)
        loop.run()
        assert order == list(range(10))

    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        seen = []
        loop.call_soon(lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.0]

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.call_after(1.0, lambda: None)
        loop.run()
        with pytest.raises(SchedulingError):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        loop = EventLoop()
        with pytest.raises(SchedulingError):
            loop.call_after(-1.0, lambda: None)

    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        ran = []
        handle = loop.call_after(1.0, lambda: ran.append(1))
        handle.cancel()
        loop.run()
        assert ran == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        handle = loop.call_after(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        ran = []
        loop.call_after(1.0, lambda: ran.append("early"))
        loop.call_after(5.0, lambda: ran.append("late"))
        end = loop.run(until=2.0)
        assert ran == ["early"]
        assert end == 2.0
        assert loop.now == 2.0
        loop.run()
        assert ran == ["early", "late"]

    def test_run_until_advances_clock_even_without_events(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        seen = []

        def first():
            loop.call_after(1.0, lambda: seen.append("second"))

        loop.call_after(1.0, first)
        loop.run()
        assert seen == ["second"]
        assert loop.now == 2.0

    def test_max_events_limits_execution(self):
        loop = EventLoop()
        count = []

        def recurring():
            count.append(1)
            loop.call_after(1.0, recurring)

        loop.call_after(1.0, recurring)
        loop.run(max_events=5)
        assert len(count) == 5

    def test_run_until_idle_raises_on_runaway(self):
        loop = EventLoop()

        def forever():
            loop.call_after(1.0, forever)

        loop.call_after(1.0, forever)
        with pytest.raises(SchedulingError):
            loop.run_until_idle(max_events=100)

    def test_pending_events_counts_uncancelled(self):
        loop = EventLoop()
        loop.call_after(1.0, lambda: None)
        handle = loop.call_after(2.0, lambda: None)
        handle.cancel()
        assert loop.pending_events == 1

    def test_events_run_counter(self):
        loop = EventLoop()
        for _ in range(4):
            loop.call_after(1.0, lambda: None)
        loop.run()
        assert loop.events_run == 4

    def test_reentrant_run_rejected(self):
        loop = EventLoop()
        errors = []

        def reenter():
            try:
                loop.run()
            except SchedulingError as error:
                errors.append(error)

        loop.call_after(1.0, reenter)
        loop.run()
        assert len(errors) == 1

    def test_callback_args_passed_through(self):
        loop = EventLoop()
        seen = []
        loop.call_after(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        loop.run()
        assert seen == [(1, "x")]


class TestRunUntil:
    def test_run_until_matches_run_with_until(self):
        loop = EventLoop()
        ran = []
        loop.call_after(1.0, lambda: ran.append("a"))
        loop.call_after(3.0, lambda: ran.append("b"))
        end = loop.run_until(2.0)
        assert ran == ["a"]
        assert end == 2.0 == loop.now

    def test_run_until_respects_max_events(self):
        loop = EventLoop()
        count = []
        for _ in range(10):
            loop.call_after(0.5, lambda: count.append(1))
        loop.run_until(1.0, max_events=4)
        assert len(count) == 4


class TestCancellationCompaction:
    def test_cancelled_handles_are_compacted_out(self):
        # Cancelled events must not sit in the queue indefinitely: once
        # the dead fraction passes 25% (with a floor of 64), the queue
        # compacts and queue_depth drops back to the live population.
        loop = EventLoop()
        handles = [loop.call_after(1.0 + i * 0.001, lambda: None)
                   for i in range(300)]
        assert loop.queue_depth == 300
        for handle in handles[:100]:
            handle.cancel()
        assert loop.pending_events == 200
        # Compaction ran at least once: dead entries no longer dominate.
        dead = loop.queue_depth - loop.pending_events
        assert loop.queue_depth < 300
        assert dead * 4 <= loop.queue_depth

    def test_small_cancel_counts_stay_lazy(self):
        loop = EventLoop()
        handles = [loop.call_after(1.0, lambda: None) for _ in range(10)]
        handles[0].cancel()
        # Below the compaction floor the dead entry stays queued...
        assert loop.queue_depth == 10
        # ...but is never counted as pending nor executed.
        assert loop.pending_events == 9
        loop.run()
        assert loop.events_run == 9

    def test_order_preserved_across_compaction(self):
        loop = EventLoop()
        order = []
        keep = []
        cancel = []
        for i in range(200):
            when = 1.0 + (i % 50) * 0.01
            handle = loop.call_at(when, order.append, (when, i))
            (cancel if i % 2 else keep).append(handle)
        for handle in cancel:
            handle.cancel()
        loop.run()
        assert order == sorted(order, key=lambda pair: pair[0])
        assert len(order) == len(keep)

    def test_cancel_after_run_does_not_corrupt_queue(self):
        loop = EventLoop()
        handle = loop.call_after(1.0, lambda: None)
        loop.run()
        handle.cancel()  # stale cancel on an executed event
        ran = []
        loop.call_after(1.0, lambda: ran.append(1))
        loop.run()
        assert ran == [1]
        assert loop.pending_events == 0


class TestSignal:
    def test_fire_notifies_all_listeners(self):
        loop = EventLoop()
        signal = Signal(loop)
        seen = []
        signal.listen(lambda value: seen.append(("first", value)))
        signal.listen(lambda value: seen.append(("second", value)))
        signal.fire(42)
        assert seen == [("first", 42), ("second", 42)]

    def test_unsubscribe(self):
        loop = EventLoop()
        signal = Signal(loop)
        seen = []
        unsubscribe = signal.listen(seen.append)
        unsubscribe()
        signal.fire(1)
        assert seen == []

    def test_unsubscribe_twice_is_harmless(self):
        loop = EventLoop()
        signal = Signal(loop)
        unsubscribe = signal.listen(lambda: None)
        unsubscribe()
        unsubscribe()

    def test_fire_count(self):
        loop = EventLoop()
        signal = Signal(loop)
        signal.fire()
        signal.fire()
        assert signal.fire_count == 2

    def test_fire_soon_defers_to_loop(self):
        loop = EventLoop()
        signal = Signal(loop)
        seen = []
        signal.listen(seen.append)
        signal.fire_soon(9)
        assert seen == []
        loop.run()
        assert seen == [9]

    def test_listener_count(self):
        loop = EventLoop()
        signal = Signal(loop)
        signal.listen(lambda: None)
        signal.listen(lambda: None)
        assert len(signal) == 2


class TestTimerGroup:
    """Coalesced deadlines: one loop timer per group, exact fire times."""

    def test_callbacks_fire_at_exact_times_fifo(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        order = []
        group.call_after(2.0, lambda: order.append(("b", loop.now)))
        group.call_after(1.0, lambda: order.append(("a", loop.now)))
        group.call_at(2.0, lambda: order.append(("c", loop.now)))
        loop.run()
        assert order == [("a", 1.0), ("b", 2.0), ("c", 2.0)]

    def test_single_loop_timer_for_many_deadlines(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        sink = []
        for index in range(100):
            group.call_after(0.5, sink.append, index)
        loop.run()
        assert sink == list(range(100))
        # 100 deadlines at one instant cost one loop-timer firing.
        assert group.fires == 1

    def test_earlier_deadline_rearms_loop_timer(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        order = []
        group.call_after(5.0, order.append, "late")
        group.call_after(1.0, order.append, "early")
        loop.run()
        assert order == ["early", "late"]

    def test_cancel_drops_live_count_eagerly(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        handles = [group.call_after(1.0, lambda: None) for _ in range(10)]
        assert group.live == 10
        for handle in handles[:4]:
            handle.cancel()
        assert group.live == 6
        assert handles[0].cancelled
        handles[0].cancel()  # idempotent
        assert group.live == 6

    def test_cancelling_last_deadline_is_a_noop_fire(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        fired = []
        group.call_after(1.0, fired.append, "x").cancel()
        # Lazy disarm: the loop timer stays armed and no-ops.
        assert group.live == 0
        assert group.armed
        loop.run()
        assert fired == []
        assert not group.armed

    def test_schedule_cancel_churn_never_rearms(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        group.call_after(1.0, lambda: None).cancel()
        timer_after_first = group._timer
        for _ in range(50):
            group.call_after(1.0, lambda: None).cancel()
        # Pure churn at or past the armed deadline reuses the one timer.
        assert group._timer is timer_after_first

    def test_noop_fire_rearms_for_later_deadline(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        fired = []
        group.call_after(1.0, lambda: None).cancel()
        group.call_after(3.0, fired.append, "late")
        loop.run()
        assert fired == ["late"]
        assert loop.now == 3.0

    def test_cancel_all_disarms_for_real(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        sink = []
        for _ in range(5):
            group.call_after(1.0, sink.append, "never")
        group.cancel_all()
        assert group.live == 0
        assert not group.armed
        loop.run()
        assert sink == []

    def test_rescheduling_inside_callback(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        times = []

        def step():
            times.append(loop.now)
            if len(times) < 3:
                group.call_after(1.0, step)

        group.call_after(1.0, step)
        loop.run()
        assert times == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        with pytest.raises(SchedulingError):
            group.call_after(-0.1, lambda: None)

    def test_past_deadline_clamped_to_now(self):
        loop = EventLoop()
        loop.call_after(2.0, lambda: None)
        loop.run()
        group = TimerGroup(loop)
        seen = []
        group.call_at(0.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [2.0]

    def test_empty_group_is_truthy(self):
        loop = EventLoop()
        group = TimerGroup(loop)
        assert len(group) == 0
        # ``group or loop`` fallbacks must pick the (empty) group.
        assert (group or loop) is group
