"""Property-based tests for fragmentation round-trips over memoryviews.

Seeded-random payloads (no external property-testing dependency) cross
the wire format and the full ST stack: every size class -- zero bytes,
single bytes, exact MTU-boundary sizes, multi-fragment messages -- must
reassemble to the original bytes, and the plain (security-elided) fast
path must not take intermediate ``bytes()`` copies: encoded fragments
are memoryview slices of the client payload, decoded components are
memoryview slices of the received bundle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.message import Message
from repro.subtransport.wire import (
    FLAG_FRAGMENT,
    FRAG_HEADER_BYTES,
    BundleEntry,
    decode_bundle,
    encode_bundle,
)

SEED = 20260806


def _fragment_entries(payload, chunk_size, st_rms_id=7, send_time=1.25):
    """Slice a payload into fragment entries the way the ST layer does:
    one memoryview over the client buffer, zero-copy slices of it."""
    view = memoryview(payload)
    total = len(payload)
    entries = []
    offset = 0
    seq = 0
    while offset < total:
        chunk = view[offset : offset + chunk_size]
        entries.append(
            BundleEntry(
                st_rms_id=st_rms_id,
                seq=seq,
                flags=FLAG_FRAGMENT,
                payload=chunk,
                send_time=send_time,
                frag_offset=offset,
                frag_total=total,
            )
        )
        offset += len(chunk)
        seq += 1
    return entries


class TestWireRoundTrip:
    def _sizes(self, chunk_size):
        rng = random.Random(SEED)
        boundary = [
            1, chunk_size - 1, chunk_size, chunk_size + 1,
            2 * chunk_size, 2 * chunk_size + 1, 7 * chunk_size - 1,
        ]
        return boundary + [rng.randrange(1, 10 * chunk_size) for _ in range(40)]

    @pytest.mark.parametrize("chunk_size", [64, 497, 1478])
    def test_random_sizes_reassemble_exactly(self, chunk_size):
        rng = random.Random(SEED + chunk_size)
        for size in self._sizes(chunk_size):
            payload = bytes(rng.getrandbits(8) for _ in range(size))
            entries = _fragment_entries(payload, chunk_size)
            wire = encode_bundle(entries)
            decoded = decode_bundle(wire)
            assert len(decoded) == len(entries)
            rebuilt = bytearray()
            for entry in decoded:
                assert entry.is_fragment
                assert entry.frag_total == size
                assert entry.frag_offset == len(rebuilt)
                rebuilt.extend(entry.payload)
            assert bytes(rebuilt) == payload

    def test_fragments_are_views_of_the_client_payload(self):
        payload = bytes(range(256)) * 8
        entries = _fragment_entries(payload, 100)
        for entry in entries:
            assert isinstance(entry.payload, memoryview)
            assert entry.payload.obj is payload  # no copy was taken

    def test_decoded_components_are_views_of_the_bundle(self):
        payload = b"x" * 700
        wire = encode_bundle(_fragment_entries(payload, 256))
        for entry in decode_bundle(wire):
            assert isinstance(entry.payload, memoryview)
            assert entry.payload.obj is wire  # zero-copy decode

    def test_encoded_size_accounts_fragment_header(self):
        entries = _fragment_entries(b"y" * 10, 4)
        for entry in entries:
            assert entry.encoded_size == 22 + FRAG_HEADER_BYTES + len(entry.payload)

    def test_non_fragment_entry_round_trips_memoryview(self):
        payload = b"hello world"
        entry = BundleEntry(
            st_rms_id=3, seq=9, flags=0,
            payload=memoryview(payload), send_time=0.5,
        )
        (decoded,) = decode_bundle(encode_bundle([entry]))
        assert decoded.payload == payload
        assert decoded.st_rms_id == 3 and decoded.seq == 9


class TestMessageViewAdoption:
    def test_bytes_payload_not_copied(self):
        payload = b"abc" * 100
        assert Message(payload).payload is payload

    def test_memoryview_payload_adopted_without_copy(self):
        buffer = b"z" * 64
        view = memoryview(buffer)[10:30]
        message = Message(view)
        assert message.payload is view
        assert message.payload.obj is buffer
        assert message.size == 20

    def test_bytearray_payload_snapshotted(self):
        buffer = bytearray(b"mutable")
        message = Message(buffer)
        buffer[0] = 0
        assert message.payload == b"mutable"


class TestEndToEndFragmentation:
    """Random-size messages through the full ST stack on a LAN."""

    def _open_session(self, system, mms=4000):
        from repro.core.params import DelayBound, DelayBoundType, RmsParams

        params = RmsParams(
            capacity=64 * 1024,
            max_message_size=10_000,
            delay_bound=DelayBound(0.5, 1e-5),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="frag-prop"
        )
        system.run(until=system.now + 2.0)
        return session.established.result()

    def test_random_sizes_deliver_bit_exact(self):
        from repro.dash.system import DashSystem

        system = DashSystem(seed=SEED)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        st = self._open_session(system)
        received = []
        st.port.set_handler(lambda message: received.append(message.payload))
        rng = random.Random(SEED)
        sent = []
        # MTU is 1500; ~1470-byte components: cover both sides of every
        # fragmentation boundary plus the empty message.
        sizes = [0, 1, 1400, 1500, 1501, 2999, 3000]
        sizes += [rng.randrange(0, 10_000) for _ in range(12)]
        for size in sizes:
            payload = bytes(rng.getrandbits(8) for _ in range(size))
            sent.append(payload)
            st.send(payload)
            system.run(until=system.now + 0.5)
        assert received == sent
        for payload in received:
            assert type(payload) is bytes  # client boundary materializes

    def test_memoryview_client_payload_round_trips(self):
        from repro.dash.system import DashSystem

        system = DashSystem(seed=SEED + 1)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        st = self._open_session(system)
        received = []
        st.port.set_handler(lambda message: received.append(message.payload))
        buffer = bytes(range(256)) * 38  # 9728 B -> multi-fragment
        st.send(memoryview(buffer))
        system.run(until=system.now + 2.0)
        assert received == [buffer]
