"""Unit and property tests for RMS parameters (paper section 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    StatisticalSpec,
    is_compatible,
)
from repro.errors import ParameterError


class TestDelayBound:
    def test_bound_for_is_linear(self):
        bound = DelayBound(0.01, 1e-6)
        assert bound.bound_for(0) == pytest.approx(0.01)
        assert bound.bound_for(1000) == pytest.approx(0.011)

    def test_negative_terms_rejected(self):
        with pytest.raises(ParameterError):
            DelayBound(-1.0, 0.0)
        with pytest.raises(ParameterError):
            DelayBound(0.0, -1e-9)

    def test_negative_size_rejected(self):
        with pytest.raises(ParameterError):
            DelayBound(1.0).bound_for(-1)

    def test_no_greater_than_elementwise(self):
        tight = DelayBound(0.01, 1e-6)
        loose = DelayBound(0.02, 2e-6)
        assert tight.no_greater_than(loose)
        assert not loose.no_greater_than(tight)

    def test_mixed_terms_not_comparable(self):
        low_a = DelayBound(0.01, 2e-6)
        low_b = DelayBound(0.02, 1e-6)
        assert not low_a.no_greater_than(low_b)
        assert not low_b.no_greater_than(low_a)

    def test_unbounded_accepts_anything(self):
        bound = DelayBound(5.0, 1e-3)
        assert bound.no_greater_than(DelayBound.unbounded())

    def test_plus_composes_stages(self):
        total = DelayBound(0.01, 1e-6).plus(DelayBound(0.02, 2e-6))
        assert total.a == pytest.approx(0.03)
        assert total.b == pytest.approx(3e-6)

    def test_minus_requires_enough_slack(self):
        total = DelayBound(0.03, 3e-6)
        rest = total.minus(DelayBound(0.01, 1e-6))
        assert rest.a == pytest.approx(0.02)
        with pytest.raises(ParameterError):
            DelayBound(0.01).minus(DelayBound(0.02))


class TestDelayBoundType:
    def test_strength_ordering(self):
        assert DelayBoundType.DETERMINISTIC > DelayBoundType.STATISTICAL
        assert DelayBoundType.STATISTICAL > DelayBoundType.BEST_EFFORT

    @pytest.mark.parametrize(
        "provider,requested,ok",
        [
            (DelayBoundType.DETERMINISTIC, DelayBoundType.BEST_EFFORT, True),
            (DelayBoundType.DETERMINISTIC, DelayBoundType.STATISTICAL, True),
            (DelayBoundType.STATISTICAL, DelayBoundType.DETERMINISTIC, False),
            (DelayBoundType.BEST_EFFORT, DelayBoundType.BEST_EFFORT, True),
            (DelayBoundType.BEST_EFFORT, DelayBoundType.STATISTICAL, False),
        ],
    )
    def test_satisfies(self, provider, requested, ok):
        assert provider.satisfies(requested) is ok


class TestStatisticalSpec:
    def test_peak_load(self):
        spec = StatisticalSpec(average_load=1000.0, burstiness=3.0)
        assert spec.peak_load == pytest.approx(3000.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StatisticalSpec(average_load=-1.0)
        with pytest.raises(ParameterError):
            StatisticalSpec(average_load=1.0, burstiness=0.5)
        with pytest.raises(ParameterError):
            StatisticalSpec(average_load=1.0, delay_probability=0.0)
        with pytest.raises(ParameterError):
            StatisticalSpec(average_load=1.0, delay_probability=1.5)

    def test_no_greater_than(self):
        small = StatisticalSpec(average_load=100.0, burstiness=1.0, delay_probability=0.99)
        large = StatisticalSpec(average_load=200.0, burstiness=2.0, delay_probability=0.95)
        assert small.no_greater_than(large)
        assert not large.no_greater_than(small)


class TestRmsParams:
    def test_mms_cannot_exceed_capacity(self):
        """Section 2.2: the MMS limit cannot exceed the RMS capacity."""
        with pytest.raises(ParameterError):
            RmsParams(capacity=100, max_message_size=200)

    def test_statistical_type_needs_spec(self):
        with pytest.raises(ParameterError):
            RmsParams(
                delay_bound=DelayBound(0.1),
                delay_bound_type=DelayBoundType.STATISTICAL,
            )

    def test_deterministic_needs_finite_bound(self):
        with pytest.raises(ParameterError):
            RmsParams(delay_bound_type=DelayBoundType.DETERMINISTIC)

    def test_bit_error_rate_range(self):
        with pytest.raises(ParameterError):
            RmsParams(bit_error_rate=1.5)

    def test_implied_bandwidth_formula(self):
        """Section 2.2: bandwidth of about C/D bytes per second."""
        params = RmsParams(
            capacity=10000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 0.0),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        # D for a max-size message is 0.1 s; C/D = 100 kB/s.
        assert params.implied_bandwidth() == pytest.approx(100000.0)

    def test_implied_bandwidth_unbounded_is_zero(self):
        assert RmsParams().implied_bandwidth() == 0.0

    def test_message_period_spacing(self):
        params = RmsParams(
            capacity=10000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 0.0),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        # A size-M message every D*M/C = 0.1 * 1000/10000 = 10 ms.
        assert params.message_period() == pytest.approx(0.01)

    def test_recipe_constructors_are_valid(self):
        for params in (
            RmsParams.for_request_reply(),
            RmsParams.for_bulk_data(),
            RmsParams.for_voice(),
            RmsParams.for_flow_control_acks(),
            RmsParams.for_reliability_acks(),
        ):
            assert params.capacity >= params.max_message_size

    def test_voice_recipe_is_statistical(self):
        params = RmsParams.for_voice()
        assert params.delay_bound_type == DelayBoundType.STATISTICAL
        assert params.statistical is not None

    def test_with_replaces_fields(self):
        params = RmsParams()
        changed = params.with_(privacy=True)
        assert changed.privacy and not params.privacy


class TestCompatibility:
    """The section-2.4 compatibility relation."""

    def base(self, **kwargs):
        defaults = dict(
            capacity=10000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
            bit_error_rate=1e-6,
        )
        defaults.update(kwargs)
        return RmsParams(**defaults)

    def test_identical_sets_are_compatible(self):
        params = self.base()
        assert is_compatible(params, params)

    def test_rule1_security_inclusion(self):
        requested = self.base(privacy=True)
        assert not is_compatible(self.base(), requested)
        assert is_compatible(self.base(privacy=True), requested)
        # Extra properties in the actual set are fine.
        assert is_compatible(
            self.base(privacy=True, authentication=True), requested
        )

    def test_rule1_reliability_inclusion(self):
        requested = self.base(reliability=True)
        assert not is_compatible(self.base(), requested)
        assert is_compatible(self.base(reliability=True), requested)

    def test_rule2_capacity_no_less(self):
        requested = self.base()
        assert not is_compatible(self.base(capacity=9999), requested)
        assert is_compatible(self.base(capacity=20000), requested)

    def test_rule2_mms_no_less(self):
        requested = self.base()
        assert not is_compatible(self.base(max_message_size=999), requested)
        assert is_compatible(self.base(max_message_size=2000), requested)

    def test_rule3_delay_no_greater(self):
        requested = self.base()
        looser = self.base(delay_bound=DelayBound(0.2, 1e-6))
        tighter = self.base(delay_bound=DelayBound(0.05, 1e-6))
        assert not is_compatible(looser, requested)
        assert is_compatible(tighter, requested)

    def test_rule3_error_rate_no_greater(self):
        requested = self.base()
        assert not is_compatible(self.base(bit_error_rate=1e-3), requested)
        assert is_compatible(self.base(bit_error_rate=0.0), requested)

    def test_rule3_type_strength(self):
        requested = self.base(
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=100.0),
        )
        best_effort = self.base()
        deterministic = self.base(delay_bound_type=DelayBoundType.DETERMINISTIC)
        assert not is_compatible(best_effort, requested)
        assert is_compatible(deterministic, requested)


# -- property-based tests -----------------------------------------------------

bounds = st.builds(
    DelayBound,
    a=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    b=st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
)


@given(bounds, bounds, st.integers(min_value=0, max_value=100_000))
def test_no_greater_than_implies_pointwise(first, second, size):
    """If first <= second element-wise, then first bounds every size better."""
    if first.no_greater_than(second) and not second.is_unbounded:
        assert first.bound_for(size) <= second.bound_for(size) + 1e-12


@given(bounds, bounds)
def test_plus_then_minus_roundtrips(first, second):
    total = first.plus(second)
    back = total.minus(second)
    assert back.a == pytest.approx(first.a)
    assert back.b == pytest.approx(first.b)


params_strategy = st.builds(
    lambda cap, mms, a, b, ber: RmsParams(
        capacity=max(cap, mms),
        max_message_size=mms,
        delay_bound=DelayBound(a, b),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
        bit_error_rate=ber,
    ),
    cap=st.integers(min_value=1, max_value=10**6),
    mms=st.integers(min_value=1, max_value=10**5),
    a=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
    b=st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
    ber=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)


@given(params_strategy)
def test_compatibility_is_reflexive(params):
    assert is_compatible(params, params)


@given(params_strategy, params_strategy, params_strategy)
def test_compatibility_is_transitive(first, second, third):
    if is_compatible(first, second) and is_compatible(second, third):
        assert is_compatible(first, third)


@given(params_strategy)
def test_implied_bandwidth_consistent_with_period(params):
    """Sending a max-size message every message_period achieves roughly
    the implied bandwidth (section 2.2's argument)."""
    bandwidth = params.implied_bandwidth()
    period = params.message_period()
    if bandwidth > 0 and not math.isinf(period) and period > 0:
        achieved = params.max_message_size / period
        # C/D vs M/(D*M/C) = C/D exactly.
        assert achieved == pytest.approx(bandwidth, rel=1e-9)
