"""Tests for parameter negotiation (paper section 2.4)."""

from __future__ import annotations

import pytest

from repro.core.negotiation import (
    CapabilityTable,
    PerformanceLimits,
    combo_key,
    negotiate,
)
from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    StatisticalSpec,
    is_compatible,
)
from repro.errors import NegotiationError, ParameterError


def limits(**kwargs):
    defaults = dict(
        best_delay=DelayBound(0.005, 1e-6),
        max_capacity=100_000,
        max_message_size=1500,
        floor_bit_error_rate=0.0,
        strongest_type=DelayBoundType.DETERMINISTIC,
    )
    defaults.update(kwargs)
    return PerformanceLimits(**defaults)


def table(**kwargs):
    capability = CapabilityTable()
    capability.set_uniform(limits(**kwargs))
    return capability


def request(**kwargs):
    """A deterministic-type request: performance clauses all bind."""
    defaults = dict(
        capacity=10_000,
        max_message_size=1000,
        delay_bound=DelayBound(0.05, 2e-6),
        delay_bound_type=DelayBoundType.DETERMINISTIC,
    )
    defaults.update(kwargs)
    return RmsParams(**defaults)


class TestCapabilityTable:
    def test_exact_combination(self):
        capability = CapabilityTable()
        capability.set_limits(False, False, False, limits())
        assert capability.limits_for(request()) is not None

    def test_missing_combination_returns_none(self):
        capability = CapabilityTable()
        capability.set_limits(False, False, False, limits())
        assert capability.limits_for(request(privacy=True)) is None

    def test_stronger_combination_covers_request(self):
        """A combination with extra security also serves the request."""
        capability = CapabilityTable()
        capability.set_limits(False, True, True, limits())
        assert capability.limits_for(request()) is not None

    def test_closest_combination_wins(self):
        capability = CapabilityTable()
        wide = limits(max_capacity=50_000)
        exact = limits(max_capacity=100_000)
        capability.set_limits(False, True, True, wide)
        capability.set_limits(False, False, False, exact)
        chosen = capability.limits_for(request())
        assert chosen.max_capacity == 100_000

    def test_set_uniform_covers_all_eight(self):
        capability = table()
        assert len(capability) == 8

    def test_combo_key(self):
        assert combo_key(request(privacy=True)) == (False, False, True)

    def test_positive_limits_required(self):
        with pytest.raises(ParameterError):
            PerformanceLimits(
                best_delay=DelayBound(0.0), max_capacity=0, max_message_size=1
            )


class TestNegotiate:
    def test_desired_within_limits_granted(self):
        actual = negotiate(request(), request(), table())
        assert actual.capacity == 10_000
        assert actual.max_message_size == 1000
        assert is_compatible(actual, request())

    def test_delay_clamped_to_provider_best(self):
        """The provider can't beat its own best delay."""
        desired = request(delay_bound=DelayBound(0.001, 1e-7))
        acceptable = request(delay_bound=DelayBound(0.05, 2e-6))
        actual = negotiate(desired, acceptable, table())
        assert actual.delay_bound.a == pytest.approx(0.005)
        assert actual.delay_bound.b == pytest.approx(1e-6)

    def test_rejects_when_best_exceeds_acceptable(self):
        desired = request(delay_bound=DelayBound(0.001, 1e-7))
        acceptable = request(delay_bound=DelayBound(0.002, 1e-6))
        with pytest.raises(NegotiationError):
            negotiate(desired, acceptable, table())

    def test_capacity_clamped_to_limit(self):
        desired = request(capacity=500_000)
        acceptable = request(capacity=50_000)
        actual = negotiate(desired, acceptable, table(max_capacity=80_000))
        assert actual.capacity == 80_000

    def test_rejects_capacity_below_acceptable(self):
        desired = request(capacity=500_000)
        acceptable = request(capacity=200_000)
        with pytest.raises(NegotiationError):
            negotiate(desired, acceptable, table(max_capacity=80_000))

    def test_mms_clamped_and_respects_capacity(self):
        desired = request(capacity=1200, max_message_size=1200)
        actual = negotiate(desired, desired.with_(max_message_size=800),
                           table(max_message_size=1000))
        assert actual.max_message_size <= min(1000, actual.capacity)

    def test_unsupported_combination_rejected(self):
        capability = CapabilityTable()
        capability.set_limits(False, False, False, limits())
        with pytest.raises(NegotiationError):
            negotiate(request(privacy=True), request(privacy=True), capability)

    def test_error_rate_floor_applies(self):
        desired = request(bit_error_rate=0.0)
        acceptable = request(bit_error_rate=1e-4)
        actual = negotiate(
            desired, acceptable, table(floor_bit_error_rate=1e-5)
        )
        assert actual.bit_error_rate == pytest.approx(1e-5)

    def test_error_rate_floor_above_acceptable_rejected(self):
        desired = request(bit_error_rate=0.0)
        acceptable = request(bit_error_rate=1e-6)
        with pytest.raises(NegotiationError):
            negotiate(desired, acceptable, table(floor_bit_error_rate=1e-3))

    def test_type_downgraded_to_provider_strength(self):
        desired = request(delay_bound_type=DelayBoundType.DETERMINISTIC)
        acceptable = request(delay_bound_type=DelayBoundType.BEST_EFFORT)
        actual = negotiate(
            desired, acceptable, table(strongest_type=DelayBoundType.BEST_EFFORT)
        )
        assert actual.delay_bound_type == DelayBoundType.BEST_EFFORT

    def test_type_below_acceptable_rejected(self):
        desired = request(
            delay_bound_type=DelayBoundType.DETERMINISTIC,
            delay_bound=DelayBound(0.05, 2e-6),
        )
        acceptable = desired
        with pytest.raises(NegotiationError):
            negotiate(
                desired, acceptable, table(strongest_type=DelayBoundType.BEST_EFFORT)
            )

    def test_statistical_spec_carried_through(self):
        spec = StatisticalSpec(average_load=5000.0, burstiness=2.0,
                               delay_probability=0.95)
        desired = request(
            delay_bound_type=DelayBoundType.STATISTICAL, statistical=spec
        )
        actual = negotiate(desired, desired, table())
        assert actual.delay_bound_type == DelayBoundType.STATISTICAL
        assert actual.statistical.average_load == pytest.approx(5000.0)

    def test_self_contradictory_request_rejected(self):
        """Desired must itself satisfy the acceptable set."""
        desired = request(capacity=1000, max_message_size=500)
        acceptable = request(capacity=50_000)
        with pytest.raises(NegotiationError):
            negotiate(desired, acceptable, table())

    def test_unbounded_best_effort_passes(self):
        desired = request(
            delay_bound=DelayBound.unbounded(),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        actual = negotiate(desired, desired, table())
        assert actual.delay_bound.is_unbounded

    def test_best_effort_never_rejected_on_performance(self):
        """Section 2.3: best-effort creation requests are never rejected
        for delay, capacity, or error-rate reasons."""
        desired = request(
            capacity=10**9,
            max_message_size=1000,
            delay_bound=DelayBound(1e-9, 0.0),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
            bit_error_rate=0.0,
        )
        actual = negotiate(
            desired, desired, table(floor_bit_error_rate=0.01, max_capacity=2000)
        )
        # Granted (never rejected), with capacity clamped to reality.
        assert actual.capacity == 2000
        assert actual.delay_bound_type == DelayBoundType.BEST_EFFORT

    def test_result_always_compatible_with_acceptable(self):
        desired = request(
            capacity=80_000,
            delay_bound=DelayBound(0.01, 1e-6),
        )
        acceptable = request(capacity=5_000, delay_bound=DelayBound(0.1, 1e-5))
        actual = negotiate(desired, acceptable, table())
        assert is_compatible(actual, acceptable)
