"""Tests for deadline-based scheduling (paper section 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.sched.cpu import CpuCostModel, HostCpu
from repro.sched.policies import EdfQueue, FifoQueue, PriorityQueue, make_queue
from repro.sim.context import SimContext


class TestPolicies:
    def test_fifo_ignores_deadlines(self):
        queue = FifoQueue()
        queue.push("late", deadline=9.0)
        queue.push("early", deadline=1.0)
        assert queue.pop() == "late"
        assert queue.pop() == "early"

    def test_edf_orders_by_deadline(self):
        queue = EdfQueue()
        queue.push("late", deadline=9.0)
        queue.push("early", deadline=1.0)
        queue.push("middle", deadline=5.0)
        assert [queue.pop() for _ in range(3)] == ["early", "middle", "late"]

    def test_edf_stable_on_ties(self):
        """Section 4.3.1 refinement: equal deadlines keep send order."""
        queue = EdfQueue()
        for index in range(10):
            queue.push(index, deadline=1.0)
        assert [queue.pop() for _ in range(10)] == list(range(10))

    def test_priority_orders_by_priority(self):
        queue = PriorityQueue()
        queue.push("low", priority=5)
        queue.push("high", priority=1)
        assert queue.pop() == "high"

    def test_pop_empty_raises(self):
        for policy in ("fifo", "edf", "priority"):
            with pytest.raises(SchedulingError):
                make_queue(policy).pop()

    def test_peek_does_not_remove(self):
        queue = EdfQueue()
        queue.push("x", deadline=1.0)
        assert queue.peek() == "x"
        assert len(queue) == 1

    def test_make_queue_unknown_policy(self):
        with pytest.raises(SchedulingError):
            make_queue("random")

    def test_bool_and_len(self):
        queue = EdfQueue()
        assert not queue
        queue.push("x", deadline=1.0)
        assert queue and len(queue) == 1

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
                      st.integers()),
            min_size=1,
            max_size=50,
        )
    )
    def test_edf_pops_in_nondecreasing_deadline_order(self, items):
        queue = EdfQueue()
        for deadline, tag in items:
            queue.push((deadline, tag), deadline=deadline)
        popped = [queue.pop()[0] for _ in range(len(items))]
        assert popped == sorted(popped)


class TestCpuCostModel:
    def test_checksum_and_encrypt_add_cost(self):
        costs = CpuCostModel()
        plain = costs.protocol_cost(1000)
        with_checksum = costs.protocol_cost(1000, checksum=True)
        with_crypto = costs.protocol_cost(1000, checksum=True, encrypt=True)
        with_all = costs.protocol_cost(1000, checksum=True, encrypt=True, mac=True)
        assert plain < with_checksum < with_crypto < with_all

    def test_cost_scales_with_size(self):
        costs = CpuCostModel()
        assert costs.protocol_cost(10_000, encrypt=True) > costs.protocol_cost(
            1_000, encrypt=True
        )


class TestHostCpu:
    def test_items_run_in_deadline_order(self):
        context = SimContext()
        cpu = HostCpu(context, policy="edf", charge_context_switches=False)
        order = []
        # Submit in one batch while the CPU is busy with a long item.
        cpu.submit("x/busy", 0.010, deadline=99.0, callback=lambda: order.append("busy"))
        cpu.submit("x/late", 0.001, deadline=0.9, callback=lambda: order.append("late"))
        cpu.submit("x/early", 0.001, deadline=0.1, callback=lambda: order.append("early"))
        context.run()
        assert order == ["busy", "early", "late"]

    def test_fifo_cpu_runs_in_arrival_order(self):
        context = SimContext()
        cpu = HostCpu(context, policy="fifo", charge_context_switches=False)
        order = []
        cpu.submit("x/busy", 0.010, deadline=99.0, callback=lambda: order.append(0))
        cpu.submit("x/a", 0.001, deadline=50.0, callback=lambda: order.append(1))
        cpu.submit("x/b", 0.001, deadline=0.1, callback=lambda: order.append(2))
        context.run()
        assert order == [0, 1, 2]

    def test_deadline_miss_counted(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        cpu.submit("x/slow", 0.2, deadline=0.1, callback=lambda: None)
        context.run()
        assert cpu.deadline_misses == 1

    def test_on_time_item_not_a_miss(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        cpu.submit("x/fast", 0.01, deadline=0.1, callback=lambda: None)
        context.run()
        assert cpu.deadline_misses == 0

    def test_busy_time_accumulates(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        cpu.submit("x/a", 0.05, deadline=1.0, callback=lambda: None)
        cpu.submit("x/b", 0.03, deadline=1.0, callback=lambda: None)
        context.run()
        assert cpu.busy_time == pytest.approx(0.08)
        assert cpu.items_run == 2

    def test_context_switch_charged_between_owners(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=True)
        cpu.submit("alpha/1", 0.01, deadline=1.0, callback=lambda: None)
        cpu.submit("alpha/2", 0.01, deadline=1.0, callback=lambda: None)
        cpu.submit("beta/1", 0.01, deadline=1.0, callback=lambda: None)
        context.run()
        # First dispatch switches from None, then alpha->alpha is free,
        # then alpha->beta switches again.
        assert cpu.context_switches == 2

    def test_nonpreemptive_execution(self):
        """A running item finishes before a tighter-deadline arrival."""
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        order = []
        cpu.submit("x/long", 0.1, deadline=10.0, callback=lambda: order.append("long"))
        context.loop.call_after(
            0.01,
            lambda: cpu.submit(
                "x/urgent", 0.001, deadline=0.02, callback=lambda: order.append("urgent")
            ),
        )
        context.run()
        assert order == ["long", "urgent"]

    def test_protocol_stage_uses_cost_model(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        done = []
        item = cpu.submit_protocol_stage(
            "x/stage", 1000, deadline=1.0, callback=lambda: done.append(1),
            checksum=True,
        )
        context.run()
        assert done == [1]
        assert item.cpu_time == pytest.approx(
            cpu.costs.protocol_cost(1000, checksum=True)
        )

    def test_keep_history(self):
        context = SimContext()
        cpu = HostCpu(context, charge_context_switches=False)
        cpu.keep_history = True
        cpu.submit("x/a", 0.01, deadline=1.0, callback=lambda: None)
        context.run()
        assert len(cpu.completed) == 1
        assert cpu.completed[0].finished_at == pytest.approx(0.01)
