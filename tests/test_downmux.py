"""Tests for the downward-multiplexing extension (section 4.2, excluded
from the DASH design; implemented here to measure the trade-off)."""

from __future__ import annotations

import pytest

from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import MessageTooLargeError, ParameterError, TransportError
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.sim.context import SimContext
from repro.subtransport.downmux import DownwardMux


def dual_path_network(seed=31, slow_factor=1.0):
    """Two disjoint gateway paths between hosts a and z."""
    context = SimContext(seed=seed)
    network = InternetNetwork(context, trusted=True)
    network.attach(Host(context, "a"))
    network.attach(Host(context, "z"))
    network.add_router("g1")
    network.add_router("g2")
    network.add_link("a", "g1", bandwidth=5e4, propagation_delay=0.002)
    network.add_link("g1", "z", bandwidth=5e4, propagation_delay=0.002)
    network.add_link("a", "g2", bandwidth=5e4 / slow_factor,
                     propagation_delay=0.002 * slow_factor)
    network.add_link("g2", "z", bandwidth=5e4 / slow_factor,
                     propagation_delay=0.002 * slow_factor)
    return context, network


def make_path(context, network, via, capacity=8192):
    """A network RMS pinned through a specific gateway."""
    params = RmsParams(
        capacity=capacity,
        max_message_size=512,
        delay_bound=DelayBound(0.5, 1e-3),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = network.create_rms(Label("a"), Label("z"), params, params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    # Pin the route through the requested gateway for path diversity.
    rms.route = ["a", via, "z"]
    return rms


class TestDownwardMux:
    def test_requires_two_paths(self):
        context, network = dual_path_network()
        path = make_path(context, network, "g1")
        with pytest.raises(ParameterError):
            DownwardMux(context, [path])

    def test_paths_must_share_endpoints(self):
        context, network = dual_path_network()
        network.attach(Host(context, "w"))
        network.add_link("w", "g1", bandwidth=5e4, propagation_delay=0.002)
        good = make_path(context, network, "g1")
        params = good.params
        future = network.create_rms(Label("w"), Label("z"), params, params)
        context.run(until=context.now + 2.0)
        other = future.result()
        with pytest.raises(ParameterError):
            DownwardMux(context, [good, other])

    def test_aggregate_capacity_and_min_mms(self):
        context, network = dual_path_network()
        one = make_path(context, network, "g1", capacity=8192)
        two = make_path(context, network, "g2", capacity=4096)
        mux = DownwardMux(context, [one, two])
        assert mux.capacity == 8192 + 4096
        assert mux.max_message_size == 512 - 4

    def test_in_order_delivery_over_equal_paths(self):
        context, network = dual_path_network()
        mux = DownwardMux(context, [
            make_path(context, network, "g1"),
            make_path(context, network, "g2"),
        ])
        got = []
        mux.port.set_handler(lambda payload: got.append(payload[0]))
        for index in range(40):
            mux.send(bytes([index]) * 100)
        context.run(until=context.now + 5.0)
        assert got == list(range(40))

    def test_resequencing_over_unequal_paths(self):
        """A 4x slower second path forces overtaking; order still holds."""
        context, network = dual_path_network(slow_factor=4.0)
        mux = DownwardMux(context, [
            make_path(context, network, "g1"),
            make_path(context, network, "g2"),
        ])
        got = []
        mux.port.set_handler(lambda payload: got.append(payload[0]))
        for index in range(40):
            mux.send(bytes([index]) * 100)
        context.run(until=context.now + 10.0)
        assert got == list(range(40))
        assert mux.stats.resequenced > 0  # the complexity the paper feared

    def test_striping_uses_both_paths(self):
        context, network = dual_path_network()
        one = make_path(context, network, "g1")
        two = make_path(context, network, "g2")
        mux = DownwardMux(context, [one, two])
        for index in range(30):
            mux.send(bytes([index]) * 100)
        context.run(until=context.now + 5.0)
        assert len(mux.stats.per_path_sent) == 2
        assert all(count > 5 for count in mux.stats.per_path_sent.values())

    def test_throughput_exceeds_single_path(self):
        """The motivation: capacity beyond a single network RMS."""

        def run(paths_count):
            context, network = dual_path_network()
            paths = [make_path(context, network, "g1")]
            if paths_count == 2:
                paths.append(make_path(context, network, "g2"))
                stream = DownwardMux(context, paths)
                send = stream.send
                port = stream.port
            else:
                rms = paths[0]
                send = lambda payload: rms.send(payload)  # noqa: E731
                port = rms.port
            done = {"bytes": 0, "last": None}

            def on_message(message_or_payload):
                size = (message_or_payload.size
                        if hasattr(message_or_payload, "size")
                        else len(message_or_payload))
                done["bytes"] += size
                done["last"] = context.now

            port.set_handler(on_message)
            start = context.now

            def producer():
                for index in range(100):
                    send(bytes([index % 256]) * 400)
                    yield 0.004

            context.spawn(producer())
            context.run(until=context.now + 20.0)
            span = (done["last"] or context.now) - start
            return done["bytes"] / max(span, 1e-9)

        single = run(1)
        double = run(2)
        assert double > 1.5 * single

    def test_oversized_message_rejected(self):
        context, network = dual_path_network()
        mux = DownwardMux(context, [
            make_path(context, network, "g1"),
            make_path(context, network, "g2"),
        ])
        with pytest.raises(MessageTooLargeError):
            mux.send(b"x" * 600)

    def test_path_failure_fails_stream(self):
        context, network = dual_path_network()
        one = make_path(context, network, "g1")
        two = make_path(context, network, "g2")
        mux = DownwardMux(context, [one, two])
        reasons = []
        mux.on_failure.listen(lambda m, reason: reasons.append(reason))
        one.fail("induced")
        assert reasons
        with pytest.raises(TransportError):
            mux.send(b"x")
