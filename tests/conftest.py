"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.st import SubtransportLayer


@pytest.fixture
def context():
    return SimContext(seed=1234)


@pytest.fixture
def traced_context():
    return SimContext(seed=1234, trace=True)


@pytest.fixture
def ethernet_pair(context):
    """An Ethernet with two hosts 'a' and 'b' attached."""
    network = EthernetNetwork(context, trusted=True)
    host_a = Host(context, "a")
    host_b = Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    return network, host_a, host_b


@pytest.fixture
def st_pair(context, ethernet_pair):
    """Subtransport layers on both hosts of an Ethernet."""
    network, host_a, host_b = ethernet_pair
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys)
    return st_a, st_b


@pytest.fixture
def internet_pair(context):
    """A two-gateway internetwork with hosts 'h1' and 'h2'."""
    network = InternetNetwork(context)
    host_1 = Host(context, "h1")
    host_2 = Host(context, "h2")
    network.attach(host_1)
    network.attach(host_2)
    network.add_router("g1")
    network.add_router("g2")
    network.add_link("h1", "g1", bandwidth=1.25e5, propagation_delay=0.001)
    network.add_link("g1", "g2", bandwidth=7000.0, propagation_delay=0.02)
    network.add_link("g2", "h2", bandwidth=1.25e5, propagation_delay=0.001)
    return network, host_1, host_2


def best_effort_params(capacity=16384, mms=1400):
    return RmsParams(
        capacity=capacity,
        max_message_size=mms,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def resolve(context, future, until=5.0):
    """Run the loop until ``until`` and return the future's result."""
    context.run(until=until)
    return future.result()


@pytest.fixture
def make_st_rms(context, st_pair):
    """Factory creating an open ST RMS from a to b."""
    st_a, st_b = st_pair

    def factory(desired=None, acceptable=None, port="test", fast_ack=False):
        desired = desired or best_effort_params()
        future = st_a.create_st_rms(
            "b",
            port=port,
            desired=desired,
            acceptable=acceptable or desired,
            fast_ack=fast_ack,
        )
        return resolve(context, future)

    return factory


@pytest.fixture
def label_a():
    return Label("a", "test")


@pytest.fixture
def label_b():
    return Label("b", "test")
