"""Tests for tracer buffer modes and null-tracer isolation."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.sim.events import EventLoop
from repro.sim.trace import NullTracer, Tracer


class TestTracerModes:
    def test_head_mode_keeps_earliest(self):
        tracer = Tracer(EventLoop(), max_records=2, keep="head")
        tracer.record("a", "one")
        tracer.record("a", "two")
        tracer.record("a", "three")
        assert [r.event for r in tracer.records] == ["one", "two"]
        assert tracer.dropped == 1

    def test_tail_mode_keeps_latest(self):
        tracer = Tracer(EventLoop(), max_records=2, keep="tail")
        tracer.record("a", "one")
        tracer.record("a", "two")
        tracer.record("a", "three")
        assert [r.event for r in tracer.records] == ["two", "three"]
        assert tracer.dropped == 1

    def test_tail_mode_counts_every_eviction(self):
        tracer = Tracer(EventLoop(), max_records=1, keep="tail")
        for index in range(5):
            tracer.record("a", f"e{index}")
        assert [r.event for r in tracer.records] == ["e4"]
        assert tracer.dropped == 4

    def test_default_is_head(self):
        tracer = Tracer(EventLoop())
        assert tracer.keep == "head"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            Tracer(EventLoop(), keep="ring")

    def test_clear_resets_dropped(self):
        tracer = Tracer(EventLoop(), max_records=1, keep="tail")
        tracer.record("a", "one")
        tracer.record("a", "two")
        tracer.clear()
        assert len(tracer.records) == 0
        assert tracer.dropped == 0


class TestNullTracerIsolation:
    def test_instances_do_not_alias_records(self):
        one, two = NullTracer(), NullTracer()
        assert one.records is not two.records
        one.records.append("poison")
        assert two.records == []

    def test_instances_do_not_alias_dropped(self):
        one, two = NullTracer(), NullTracer()
        one.dropped = 99
        assert two.dropped == 0
