"""Tests for the observability metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.obs import NullObservability, Observability
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.sim.context import SimContext


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_buckets_and_mean(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(26.25)
        assert histogram.bucket_counts == [1, 1, 1, 1]

    def test_histogram_quantile_interpolates(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)  # all in the (1, 2] bucket
        q = histogram.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ParameterError):
            Histogram(bounds=(2.0, 1.0))

    def test_quantile_rejects_bad_fraction(self):
        with pytest.raises(ParameterError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("sent", layer="st", rms="r1")
        b = registry.counter("sent", rms="r1", layer="st")  # order-insensitive
        assert a is b
        a.inc()
        assert b.value == 1

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("sent", rms="r1").inc()
        registry.counter("sent", rms="r2").inc(2)
        series = {
            labels["rms"]: instrument.value
            for labels, instrument in registry.families["sent"].series()
        }
        assert series == {"r1": 1, "r2": 2}

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", rms="r1")
        with pytest.raises(ParameterError):
            registry.gauge("x", rms="r1")

    def test_label_name_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", rms="r1")
        with pytest.raises(ParameterError):
            registry.counter("x", host="a")

    def test_get_existing_and_missing(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", rms="r1")
        assert registry.get("x", rms="r1") is counter
        assert registry.get("x", rms="r2") is None
        assert registry.get("y") is None

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("sent", layer="st", rms="r1").inc(3)
        registry.histogram("delay", layer="st", rms="r1").observe(0.01)
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)
        parsed = json.loads(text)
        assert parsed["sent"]["kind"] == "counter"
        assert parsed["sent"]["series"][0]["value"] == 3
        histogram = parsed["delay"]["series"][0]
        assert histogram["count"] == 1
        assert "p50" in histogram and "p99" in histogram
        assert "buckets" in histogram


class TestNullRegistry:
    def test_disabled_and_stateless(self):
        registry = NullRegistry()
        assert not registry.enabled
        counter = registry.counter("x", rms="r1")
        counter.inc(100)
        assert counter.value == 0.0
        assert registry.snapshot() == {}

    def test_two_instances_share_nothing_mutable(self):
        one, two = NullRegistry(), NullRegistry()
        families = one.families
        families["poison"] = object()
        assert two.families == {}


class TestObservabilityFacade:
    def test_context_defaults_to_null(self):
        context = SimContext()
        assert not context.obs.enabled
        assert isinstance(context.obs, NullObservability)
        # The whole disabled path is one attribute check + no-ops.
        assert context.obs.spans.new_trace() is None

    def test_observe_flag_enables(self):
        context = SimContext(observe=True)
        assert context.obs.enabled
        assert isinstance(context.obs, Observability)
        assert context.obs.spans.new_trace() == 1
