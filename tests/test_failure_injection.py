"""Failure injection: links dying, hosts saturating, networks flapping.

Basic RMS property 3 -- "clients are notified of an RMS failure" -- must
hold through every layer, and the system must stay consistent (no
crashes, no stuck state) under mid-operation failures.
"""

from __future__ import annotations

import pytest

from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    is_compatible,
)
from repro.dash.system import DashSystem
from repro.errors import RmsFailedError
from repro.resilience import ResiliencePolicy, SessionState
from repro.transport.stream import StreamConfig


def lan_system(seed=51, **kwargs):
    system = DashSystem(seed=seed)
    system.add_ethernet(trusted=True, **kwargs)
    system.add_node("a")
    system.add_node("b")
    return system


def multihomed_system(seed=53, wan_guarantees=True):
    """Two nodes on a LAN (primary) plus a routed WAN (secondary)."""
    system = DashSystem(seed=seed)
    system.add_ethernet(name="lan", trusted=True)
    wan = system.add_internet(
        name="wan", trusted=True, supports_guarantees=wan_guarantees
    )
    system.add_node("a")
    system.add_node("b")
    wan.add_router("g1")
    wan.add_link("a", "g1", bandwidth=2.5e5, propagation_delay=0.002)
    wan.add_link("g1", "b", bandwidth=2.5e5, propagation_delay=0.002)
    return system


def wan_system(seed=52):
    system = DashSystem(seed=seed)
    internet = system.add_internet(trusted=True)
    system.add_node("a")
    system.add_node("b")
    internet.add_router("g1")
    internet.add_router("g2")
    internet.add_link("a", "g1", bandwidth=1e5, propagation_delay=0.002)
    internet.add_link("g1", "g2", bandwidth=5e4, propagation_delay=0.01)
    internet.add_link("g2", "b", bandwidth=1e5, propagation_delay=0.002)
    return system, internet


def open_rms(system, port="fail", params=None):
    params = params or RmsParams(
        capacity=16 * 1024,
        max_message_size=1400,
        delay_bound=DelayBound(0.2, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = system.nodes["a"].st.create_st_rms(
        "b", port=port, desired=params, acceptable=params
    )
    system.run(until=system.now + 3.0)
    return future.result()


class TestFailurePropagation:
    def test_notification_reaches_every_layer(self):
        """Network RMS -> ST RMS -> client, one failure event each."""
        system = lan_system()
        rms = open_rms(system)
        st_notified = []
        net_notified = []
        rms.on_failure.listen(lambda r, reason: st_notified.append(reason))
        rms.binding.network_rms.on_failure.listen(
            lambda r, reason: net_notified.append(reason)
        )
        system.networks["ether0"].segment.set_down()
        system.run(until=system.now + 1.0)
        assert len(net_notified) == 1
        assert len(st_notified) == 1

    def test_send_after_network_death_raises(self):
        system = lan_system()
        rms = open_rms(system)
        system.networks["ether0"].segment.set_down()
        system.run(until=system.now + 1.0)
        with pytest.raises(RmsFailedError):
            rms.send(b"too late")

    def test_messages_in_flight_at_failure_are_dropped_not_delivered(self):
        system = lan_system()
        rms = open_rms(system)
        got = []
        rms.port.set_handler(got.append)
        for index in range(10):
            rms.send(bytes([index]) * 1000)
        # Kill the segment immediately: everything still queued dies.
        system.networks["ether0"].segment.set_down()
        system.run(until=system.now + 2.0)
        assert got == []

    def test_wan_link_failure_fails_only_crossing_streams(self):
        system, internet = wan_system()
        internet.attach_extra = None
        rms = open_rms(system)
        reasons = []
        rms.on_failure.listen(lambda r, reason: reasons.append(reason))
        internet.link("g1", "g2").set_down()
        system.run(until=system.now + 1.0)
        assert reasons  # the stream crossed the dead trunk

    def test_new_stream_after_reroute(self):
        """After a link dies, new streams take the surviving path."""
        system, internet = wan_system()
        internet.add_link("g1", "b", bandwidth=1e5, propagation_delay=0.5)
        first = open_rms(system, port="one")
        internet.link("g1", "g2").set_down()
        system.run(until=system.now + 1.0)
        assert not first.is_open
        second = open_rms(system, port="two")
        got = []
        second.port.set_handler(got.append)
        second.send(b"via backup path")
        system.run(until=system.now + 3.0)
        assert len(got) == 1
        assert second.binding.network_rms.route == ["a", "g1", "b"]

    def test_link_recovery_allows_fresh_streams(self):
        system, internet = wan_system()
        rms = open_rms(system, port="one")
        internet.link("g1", "g2").set_down()
        system.run(until=system.now + 1.0)
        internet.link("g1", "g2").set_up()
        internet._route_cache.clear()
        replacement = open_rms(system, port="two")
        got = []
        replacement.port.set_handler(got.append)
        replacement.send(b"back in business")
        system.run(until=system.now + 3.0)
        assert len(got) == 1


class TestStreamFailureRecovery:
    def test_stream_reports_failure_and_rejects_sends(self):
        system = lan_system()
        session = system.connect("a", "b", kind="stream", config=StreamConfig())
        system.run(until=system.now + 2.0)
        stream = session.established.result()
        session.send(b"x" * 500)
        system.networks["ether0"].segment.set_down()
        system.run(until=system.now + 1.0)
        assert stream.failed is not None
        from repro.errors import TransportError

        with pytest.raises(TransportError):
            session.send(b"more")

    def test_retransmit_timer_stops_after_failure(self):
        system = lan_system()
        session = system.connect(
            "a", "b", kind="stream",
            config=StreamConfig(retransmit_timeout=0.1, max_retransmits=3),
        )
        system.run(until=system.now + 2.0)
        assert session.is_up
        session.send(b"x" * 500)
        system.networks["ether0"].segment.set_down()
        system.run(until=system.now + 5.0)
        events_after = system.context.loop.pending_events
        system.run(until=system.now + 5.0)
        # No runaway timer: the loop settles once the failure lands.
        assert system.context.loop.pending_events <= events_after

    def test_reliable_stream_gives_up_on_black_hole(self):
        system = lan_system()
        session = system.connect(
            "a", "b", kind="stream",
            config=StreamConfig(retransmit_timeout=0.1, max_retransmits=3),
        )
        system.run(until=system.now + 2.0)
        stream = session.established.result()
        system.networks["ether0"].segment.impairment.frame_loss_rate = 1.0
        session.send(b"into the void" + b"\x00" * 100)
        system.run(until=system.now + 20.0)
        assert stream.failed == "retransmission limit exceeded"


class TestCpuSaturation:
    def test_overloaded_cpu_reports_deadline_misses(self):
        system = lan_system()
        cpu = system.nodes["a"].cpu
        # Saturate the CPU with heavy synthetic protocol work.
        for index in range(50):
            cpu.submit(f"x/heavy{index}", 0.01, deadline=system.now + 0.05,
                       callback=lambda: None)
        system.run(until=system.now + 2.0)
        assert cpu.deadline_misses > 0
        assert cpu.items_run == 50

    def test_st_traffic_still_flows_on_busy_cpu(self):
        system = lan_system()
        rms = open_rms(system)
        got = []
        rms.port.set_handler(got.append)
        cpu = system.nodes["a"].cpu

        def hog():
            while True:
                cpu.submit("hog/work", 0.002, deadline=system.now + 10.0,
                           callback=lambda: None)
                yield 0.002

        hog_process = system.context.spawn(hog())
        for index in range(10):
            rms.send(bytes([index]) * 500)
        system.run(until=system.now + 5.0)
        hog_process.stop()
        # EDF lets the tighter-deadline ST stages through the hog's work.
        assert len(got) == 10


class TestSupervisedResilience:
    """Resilience layer on top of failure injection: failover, degrade."""

    @staticmethod
    def _params(capacity=8192, mms=512):
        return RmsParams(
            capacity=capacity,
            max_message_size=mms,
            delay_bound=DelayBound(0.5, 1e-4),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    def test_supervised_session_fails_over_to_secondary_network(self):
        system = multihomed_system()
        params = self._params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params,
            port="failover", resilience=ResiliencePolicy(),
        )
        system.run(until=system.now + 2.0)
        rms = session.established.result()
        assert rms.binding.network_rms.network.name == "lan"
        got = []
        session.port.set_handler(got.append)
        states = []
        session.on_state_change.listen(
            lambda s, old, new, reason: states.append(new)
        )
        system.networks["lan"].segment.set_down()
        system.run(until=system.now + 0.2)
        # In-flight client traffic during the outage is queued, not lost.
        for index in range(3):
            session.send(bytes([index]) * 256)
        system.run(until=system.now + 10.0)
        assert session.is_up
        assert session.rms.binding.network_rms.network.name == "wan"
        assert len(got) == 3
        assert SessionState.RE_ESTABLISHING in states
        assert session.stats.failovers >= 1
        assert session.stats.recoveries >= 1

    def test_weaker_parameter_set_survives_renegotiation(self):
        """Desired DETERMINISTIC degrades to the best-effort floor when
        the only surviving network cannot offer guarantees."""
        system = multihomed_system(wan_guarantees=False)
        desired = RmsParams(
            capacity=8192,
            max_message_size=512,
            delay_bound=DelayBound(0.25, 1e-4),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        floor = self._params(capacity=2048)
        session = system.connect(
            "a", "b", desired=desired, acceptable=floor,
            port="degrade", resilience=ResiliencePolicy(),
        )
        system.run(until=system.now + 2.0)
        first = session.established.result()
        assert is_compatible(first.params, desired)
        assert session.state is SessionState.UP
        got = []
        session.port.set_handler(got.append)
        system.networks["lan"].segment.set_down()
        system.run(until=system.now + 10.0)
        assert session.state is SessionState.DEGRADED
        assert session.rms.binding.network_rms.network.name == "wan"
        actual = session.rms.params
        assert actual.delay_bound_type == DelayBoundType.BEST_EFFORT
        assert is_compatible(actual, floor)
        assert not is_compatible(actual, desired)
        session.send(b"still flowing")
        system.run(until=system.now + 2.0)
        assert len(got) == 1

    def test_unsupervised_session_fails_terminally(self):
        system = multihomed_system()
        params = self._params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="bare"
        )
        system.run(until=system.now + 2.0)
        assert session.established.done and not session.established.failed
        system.networks["lan"].segment.set_down()
        system.run(until=system.now + 10.0)
        assert session.state is SessionState.FAILED
        with pytest.raises(RmsFailedError):
            session.send(b"too late")

    def test_supervisor_retries_through_transient_outage_on_single_network(self):
        """No alternate network: backoff keeps trying until the segment
        heals, then the session recovers on the same network."""
        system = lan_system(seed=54)
        params = self._params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params,
            port="heal", resilience=ResiliencePolicy(max_attempts=12),
        )
        system.run(until=system.now + 2.0)
        session.established.result()
        got = []
        session.port.set_handler(got.append)
        segment = system.networks["ether0"].segment
        segment.set_down()
        system.run(until=system.now + 0.5)
        session.send(b"queued during outage")
        system.context.loop.call_after(1.5, segment.set_up)
        system.run(until=system.now + 20.0)
        assert session.is_up
        assert session.stats.recoveries >= 1
        assert len(got) == 1

    def test_supervisor_gives_up_after_max_attempts(self):
        system = lan_system(seed=55)
        system.networks["ether0"].segment.set_down()
        params = self._params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params,
            port="doomed",
            resilience=ResiliencePolicy(max_attempts=2, backoff_cap=0.2),
        )
        system.run(until=system.now + 60.0)
        assert session.state is SessionState.FAILED
        assert session.established.done and session.established.failed


class TestControlPlaneResilience:
    def test_st_creation_fails_cleanly_when_network_is_dead(self):
        system = lan_system()
        system.networks["ether0"].segment.set_down()
        params = RmsParams(capacity=8192, max_message_size=1400)
        future = system.nodes["a"].st.create_st_rms(
            "b", port="dead", desired=params, acceptable=params
        )
        system.run(until=system.now + 60.0)
        assert future.done and future.failed  # failed, not hung

    def test_rkom_call_times_out_cleanly_on_dead_network(self):
        system = lan_system()
        system.nodes["b"].rkom.register_handler("echo", lambda p, s: p)
        rkom = system.connect("a", "b", kind="rkom")
        warm = rkom.call("echo", b"x")
        system.run(until=system.now + 2.0)
        assert not warm.failed
        system.networks["ether0"].segment.impairment.frame_loss_rate = 1.0
        doomed = rkom.call("echo", b"y", timeout=0.05)
        system.run(until=system.now + 30.0)
        assert doomed.done and doomed.failed
