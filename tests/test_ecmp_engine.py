"""Tests for the equal-cost multipath forwarding engine.

The contract (DESIGN.md 8.8): under ``ecmp=True`` every flow's pinned
route must cost exactly the Dijkstra optimum, path choice must be a
pure function of (src, dst, flow) and the topology -- no interpreter
salt, no iteration-order luck -- and on tie-free topologies the engine
must hand out the *same* canonical plans as the single-path engine, so
fixed-seed traces are byte-identical.  Link flaps must stay scoped:
only flows pinned through the flapped edge reroute.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import RoutingError
from repro.netsim.internet import InternetNetwork
from repro.netsim.routing import flow_hash
from repro.netsim.topology import Host, MeshSpec, build_two_tier
from repro.obs import LinkUtilizationCollector, jain_fairness
from repro.sim.context import SimContext

# Weights drawn from a tiny discrete set so random graphs are dense
# with exact cost ties -- the case ECMP exists for.
tie_rich_edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.sampled_from([1e-3, 2e-3, 4e-3]),
    ),
    min_size=2,
    max_size=14,
).map(lambda edges: [(a, b, w) for a, b, w in edges if a != b])


def best_effort(mms: int = 500) -> RmsParams:
    return RmsParams(
        capacity=16 * 1024,
        max_message_size=mms,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def build_ecmp_network(edges, seed: int = 1):
    """An ECMP internetwork over the deduplicated edge list."""
    context = SimContext(seed=seed)
    network = InternetNetwork(context, route_engine=True, ecmp=True)
    nodes = sorted({n for a, b, _ in edges for n in (a, b)})
    for node in nodes:
        network.attach(Host(context, f"n{node}"))
    seen = set()
    for a, b, weight in edges:
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        network.add_link(f"n{a}", f"n{b}", bandwidth=1e5,
                         propagation_delay=weight)
    return network, [f"n{n}" for n in nodes]


def reference_distances(network, src):
    """An independent textbook Dijkstra over the network's link weights."""
    dist = {src: 0.0}
    heap = [(0.0, src)]
    done = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor in network._adjacency.get(node, []):
            if (node, neighbor) not in network._links:
                continue
            weight = network._link_weight(node, neighbor)
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def route_cost(network, route):
    return sum(
        network._link_weight(route[i], route[i + 1])
        for i in range(len(route) - 1)
    )


class TestEcmpOptimality:
    """Every pinned route costs exactly the Dijkstra optimum."""

    @settings(max_examples=60, deadline=None)
    @given(edges=tie_rich_edge_lists)
    def test_every_flow_route_is_cost_optimal(self, edges):
        if not edges:
            return
        network, nodes = build_ecmp_network(edges)
        engine = network._engine
        for src in nodes:
            reference = reference_distances(network, src)
            for dst in nodes:
                if src == dst:
                    continue
                if dst not in reference:
                    with pytest.raises(RoutingError):
                        engine.plan_for_flow(src, dst, 0)
                    continue
                for flow in range(5):
                    plan = engine.plan_for_flow(src, dst, flow)
                    assert route_cost(network, plan.route) == reference[dst]
                    assert plan.route[0] == src and plan.route[-1] == dst

    @settings(max_examples=40, deadline=None)
    @given(edges=tie_rich_edge_lists)
    def test_every_enumerated_route_is_cost_optimal_and_unique(self, edges):
        if not edges:
            return
        network, nodes = build_ecmp_network(edges)
        engine = network._engine
        src, dst = nodes[0], nodes[-1]
        if src == dst:
            return
        reference = reference_distances(network, src)
        if dst not in reference:
            return
        pathset = engine.pathset(src, dst)
        assert 1 <= len(pathset.routes) <= engine.max_paths
        seen = set()
        for route in pathset.routes:
            assert route_cost(network, route) == reference[dst]
            key = tuple(route)
            assert key not in seen  # enumeration never repeats a path
            seen.add(key)


class TestEcmpDeterminism:
    """Path choice is a pure function of (topology, src, dst, flow)."""

    @settings(max_examples=40, deadline=None)
    @given(edges=tie_rich_edge_lists, seed=st.integers(1, 1000))
    def test_pinning_is_identical_across_rebuilds(self, edges, seed):
        if not edges:
            return
        first, nodes = build_ecmp_network(edges, seed=seed)
        second, _ = build_ecmp_network(edges, seed=seed)
        src, dst = nodes[0], nodes[-1]
        if src == dst or not first.can_reach(src, dst):
            return
        for flow in range(8):
            assert (
                first._engine.plan_for_flow(src, dst, flow).route
                == second._engine.plan_for_flow(src, dst, flow).route
            )

    def test_flow_hash_is_not_interpreter_salted(self):
        # CRC-32 of the canonical label: a constant anyone can recompute.
        import zlib
        assert flow_hash("h0", "h5", 0) == zlib.crc32(b"h0|h5|0") == 1678518622
        assert flow_hash("h0", "h5", 0) != flow_hash("h0", "h5", 1)
        assert flow_hash("h0", "h5", 2) != flow_hash("h5", "h0", 2)

    def test_flows_spread_across_spines(self):
        context = SimContext(seed=9)
        network = InternetNetwork(context, trusted=True, ecmp=True)
        build_two_tier(network, spines=4, leaves=4, hosts_per_leaf=1)
        engine = network._engine
        spines_used = {
            engine.plan_for_flow("h0", "h2", flow).route[2]
            for flow in range(16)
        }
        assert len(spines_used) > 1  # distinct flows take distinct trunks
        pathset = engine.pathset("h0", "h2")
        assert len(pathset.routes) == 4  # one per spine
        # The canonical route is always enumerated first.
        assert pathset.routes[0] == engine.plan("h0", "h2").route

    def test_max_paths_bounds_enumeration(self):
        context = SimContext(seed=9)
        network = InternetNetwork(context, trusted=True, ecmp=True,
                                  ecmp_max_paths=2)
        build_two_tier(network, spines=5, leaves=3, hosts_per_leaf=1)
        pathset = network._engine.pathset("h0", "h1")
        assert len(pathset.routes) == 2
        assert pathset.routes[0] == network._engine.plan("h0", "h1").route


def tie_free_diamond(ecmp: bool, seed: int = 7):
    """The PR 9 lossy diamond: distinct path costs, no ties anywhere."""
    context = SimContext(seed=seed)
    network = InternetNetwork(context, trusted=True, ecmp=ecmp)
    for name in ("a", "b"):
        network.attach(Host(context, name))
    for name in ("r1", "r2", "r3"):
        network.add_router(name)
    network.add_link("a", "r1", bandwidth=2.5e5, propagation_delay=1e-3)
    network.add_link("r1", "r2", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.1)
    network.add_link("r2", "r3", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.1)
    network.add_link("r1", "r3", bandwidth=6e4, propagation_delay=9e-3)
    network.add_link("r3", "b", bandwidth=2.5e5, propagation_delay=1e-3)
    return context, network


def tie_free_lossy_trace(ecmp: bool, messages: int = 60):
    """Fixed-seed delivery trace of the tie-free lossy diamond."""
    context, network = tie_free_diamond(ecmp)
    params = best_effort()
    future = network.create_rms(Label("a"), Label("b"), params, params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    deliveries = []
    rms.port.set_handler(
        lambda message: deliveries.append(
            (bytes(message.payload), context.now)
        )
    )
    for index in range(messages):
        rms.send(bytes([index % 251]) * 48)
        if index % 8 == 7:
            context.run(until=context.now + 0.05)
    context.run(until=context.now + 3.0)
    return deliveries, rms.stats.messages_sent, rms.stats.messages_delivered


class TestTieFreeEquivalence:
    """On a topology with no cost ties, ECMP must be a no-op: same plan
    objects, byte-identical fixed-seed traces, loss model and all."""

    def test_lossy_trace_identical_vs_single_path(self):
        ecmp = tie_free_lossy_trace(ecmp=True)
        single = tie_free_lossy_trace(ecmp=False)
        assert ecmp == single
        deliveries, sent, delivered = ecmp
        assert sent == 60
        assert 0 < delivered < sent  # the loss model really fired
        assert len(deliveries) == delivered

    def test_tie_free_pair_reuses_the_canonical_plan_object(self):
        _, network = tie_free_diamond(ecmp=True)
        engine = network._engine
        assert engine.plan_for_flow("a", "b", 4) is engine.plan("a", "b")


class TestDagScopedInvalidation:
    """A flapped edge reroutes only the flows pinned through it; the
    equal-cost siblings absorb them without a full invalidation."""

    def _fabric(self):
        context = SimContext(seed=13)
        network = InternetNetwork(context, trusted=True, ecmp=True)
        mesh = build_two_tier(network, spines=3, leaves=3, hosts_per_leaf=2)
        engine = network._engine
        # Prime tracking: the first state change pays one full
        # invalidation and switches the reverse indexes on.
        primer = network.link("leaf2", "spine2")
        primer.set_down()
        primer.set_up()
        return context, network, mesh, engine

    def test_only_pinned_through_plans_die(self):
        _, network, _, engine = self._fabric()
        plans = {
            flow: engine.plan_for_flow("h0", "h2", flow) for flow in range(9)
        }
        assert len({id(p) for p in plans.values()}) > 1
        full_before = engine.full_invalidations
        builds_before = engine.table_builds
        network.link("leaf0", "spine1").set_down()
        network.link("spine1", "leaf0").set_down()
        assert engine.full_invalidations == full_before
        for flow, plan in plans.items():
            assert plan.dead == ("spine1" in plan.route), (flow, plan.route)
        # Re-resolution lands on surviving siblings with zero Dijkstra.
        for flow in range(9):
            replacement = engine.plan_for_flow("h0", "h2", flow)
            assert "spine1" not in replacement.route
            assert not replacement.dead
        assert engine.table_builds == builds_before

    def test_remote_tables_prune_in_place(self):
        _, network, _, engine = self._fabric()
        engine.plan_for_flow("h0", "h2", 0)
        table = engine.table("h0")
        # Edge (spine1, leaf1): h0's DAG reaches leaf1 via all three
        # spines, so losing one prunes the DAG but keeps the table.
        prunes_before = engine.dag_prunes
        network.link("spine1", "leaf1").set_down()
        assert engine.dag_prunes == prunes_before + 1
        assert engine.table("h0") is table
        assert "spine1" not in table.preds["leaf1"]
        assert table.prev["leaf1"] == table.preds["leaf1"][0]

    def test_restored_sibling_rejoins_the_spread(self):
        _, network, _, engine = self._fabric()
        for flow in range(9):
            engine.plan_for_flow("h0", "h2", flow)
        down = network.link("leaf0", "spine1")
        down.set_down()
        assert all(
            "spine1" not in engine.plan_for_flow("h0", "h2", flow).route
            for flow in range(9)
        )
        down.set_up()
        spines_used = {
            engine.plan_for_flow("h0", "h2", flow).route[2]
            for flow in range(16)
        }
        assert "spine1" in spines_used

    def test_rms_failure_stays_scoped_to_pinned_flows(self):
        context, network, mesh, engine = self._fabric()
        params = best_effort()
        streams = []
        for flow in range(6):
            future = network.create_rms(
                Label("h0"), Label("h2"), params, params
            )
            context.run(until=context.now + 1.0)
            streams.append(future.result())
        assert len({tuple(rms.route) for rms in streams}) > 1
        failed = []
        for rms in streams:
            rms.on_failure.listen(
                lambda rms, reason: failed.append(rms.rms_id)
            )
        pinned_through = {
            rms.rms_id for rms in streams if "spine1" in rms.route
        }
        assert 0 < len(pinned_through) < len(streams)
        network.link("leaf0", "spine1").set_down()
        network.link("spine1", "leaf0").set_down()
        context.run(until=context.now + 0.5)
        assert set(failed) == pinned_through


class TestLinkUtilization:
    """The obs collector: Jain's index math and windowed deltas."""

    def test_jain_fairness_math(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0, 0]) == 1.0
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_fairness([2, 1]) == pytest.approx(0.9)

    def test_collector_windows_trunk_bytes(self):
        context = SimContext(seed=21)
        network = InternetNetwork(context, trusted=True, ecmp=True)
        build_two_tier(network, spines=2, leaves=2, hosts_per_leaf=1,
                       spec=MeshSpec())
        collector = LinkUtilizationCollector(network)
        # Trunks only: 2 spines x 2 leaves x 2 directions.
        assert len(collector.delta()) == 8
        assert all(v == 0 for v in collector.delta().values())
        params = best_effort()
        future = network.create_rms(Label("h0"), Label("h1"), params, params)
        context.run(until=context.now + 1.0)
        rms = future.result()
        collector.mark()
        from repro.core.message import Message
        for _ in range(4):
            rms.send(Message(b"x" * 200, source=rms.sender,
                             target=rms.receiver))
        context.run(until=context.now + 1.0)
        deltas = collector.delta()
        assert sum(deltas.values()) > 0
        (edge, busiest), = collector.busiest(1)
        assert deltas[edge] == busiest > 0
        assert 0.0 < collector.fairness() <= 1.0
