"""Unit tests for generator processes, futures, and ports."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError, SimulationError
from repro.sim.context import SimContext
from repro.sim.events import EventLoop
from repro.sim.ports import FlowControlledPort, Port
from repro.sim.process import Future, Process, all_of


class TestFuture:
    def test_resolve_and_result(self):
        loop = EventLoop()
        future = Future(loop)
        assert not future.done
        future.set_result(7)
        assert future.done
        assert future.result() == 7

    def test_result_before_resolution_raises(self):
        future = Future(EventLoop())
        with pytest.raises(ProcessError):
            future.result()

    def test_exception_propagates(self):
        future = Future(EventLoop())
        future.set_exception(ValueError("boom"))
        assert future.failed
        with pytest.raises(ValueError):
            future.result()

    def test_double_resolution_raises(self):
        future = Future(EventLoop())
        future.set_result(1)
        with pytest.raises(ProcessError):
            future.set_result(2)

    def test_callbacks_run_via_loop(self):
        loop = EventLoop()
        future = Future(loop)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        future.set_result("x")
        assert seen == []  # deferred to the loop
        loop.run()
        assert seen == ["x"]

    def test_callback_after_resolution_still_runs(self):
        loop = EventLoop()
        future = Future(loop)
        future.set_result(3)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        loop.run()
        assert seen == [3]

    def test_all_of_collects_results(self):
        loop = EventLoop()
        futures = [Future(loop) for _ in range(3)]
        combined = all_of(loop, futures)
        for index, future in enumerate(futures):
            future.set_result(index)
        loop.run()
        assert combined.result() == [0, 1, 2]

    def test_all_of_empty_resolves_immediately(self):
        loop = EventLoop()
        combined = all_of(loop, [])
        assert combined.result() == []

    def test_all_of_fails_on_any_failure(self):
        loop = EventLoop()
        futures = [Future(loop), Future(loop)]
        combined = all_of(loop, futures)
        futures[0].set_exception(RuntimeError("bad"))
        futures[1].set_result(1)
        loop.run()
        assert combined.failed


class TestProcess:
    def test_sleep_advances_time(self):
        context = SimContext()

        def worker():
            yield 2.5
            return context.now

        process = context.spawn(worker())
        context.run()
        assert process.finished.result() == 2.5

    def test_yield_none_is_same_time_slot(self):
        context = SimContext()
        trace = []

        def worker():
            trace.append(context.now)
            yield None
            trace.append(context.now)

        context.spawn(worker())
        context.run()
        assert trace == [0.0, 0.0]

    def test_await_future_returns_value(self):
        context = SimContext()
        future = Future(context.loop)

        def worker():
            value = yield future
            return value * 2

        process = context.spawn(worker())
        context.loop.call_after(1.0, future.set_result, 21)
        context.run()
        assert process.finished.result() == 42

    def test_future_exception_raises_inside_process(self):
        context = SimContext()
        future = Future(context.loop)
        caught = []

        def worker():
            try:
                yield future
            except ValueError as error:
                caught.append(error)

        context.spawn(worker())
        context.loop.call_after(1.0, future.set_exception, ValueError("x"))
        context.run()
        assert len(caught) == 1

    def test_uncaught_exception_fails_finished_future(self):
        context = SimContext()

        def worker():
            yield 1.0
            raise RuntimeError("crash")

        process = context.spawn(worker())
        context.run()
        assert process.finished.failed

    def test_negative_sleep_fails_process(self):
        context = SimContext()

        def worker():
            yield -1.0

        process = context.spawn(worker())
        context.run()
        assert process.finished.failed

    def test_unsupported_yield_fails_process(self):
        context = SimContext()

        def worker():
            yield "nonsense"

        process = context.spawn(worker())
        context.run()
        assert process.finished.failed

    def test_stop_without_exception(self):
        context = SimContext()

        def worker():
            while True:
                yield 1.0

        process = context.spawn(worker())
        context.run(until=3.0)
        process.stop()
        assert process.finished.result() is None

    def test_non_generator_rejected(self):
        context = SimContext()
        with pytest.raises(ProcessError):
            Process(context.loop, lambda: None)  # type: ignore[arg-type]

    def test_nested_generators_via_yield_from(self):
        context = SimContext()

        def inner():
            yield 1.0
            return "inner-done"

        def outer():
            result = yield from inner()
            yield 1.0
            return result

        process = context.spawn(outer())
        context.run()
        assert process.finished.result() == "inner-done"
        assert context.now == 2.0


class TestPort:
    def test_deliver_then_get(self):
        context = SimContext()
        port = Port(context.loop)
        port.deliver("m1")
        future = port.get()
        assert future.result() == "m1"

    def test_get_then_deliver(self):
        context = SimContext()
        port = Port(context.loop)
        future = port.get()
        port.deliver("m2")
        assert future.result() == "m2"

    def test_fifo_order(self):
        context = SimContext()
        port = Port(context.loop)
        for index in range(5):
            port.deliver(index)
        values = [port.get_nowait() for _ in range(5)]
        assert values == list(range(5))

    def test_get_nowait_empty_raises(self):
        context = SimContext()
        port = Port(context.loop)
        with pytest.raises(SimulationError):
            port.get_nowait()

    def test_callback_mode(self):
        context = SimContext()
        seen = []
        port = Port(context.loop, on_deliver=seen.append)
        port.deliver("x")
        assert seen == ["x"]
        with pytest.raises(SimulationError):
            port.get()

    def test_set_handler_replays_queued(self):
        context = SimContext()
        port = Port(context.loop)
        port.deliver(1)
        port.deliver(2)
        seen = []
        port.set_handler(seen.append)
        assert seen == [1, 2]
        port.deliver(3)
        assert seen == [1, 2, 3]

    def test_delivered_count(self):
        context = SimContext()
        port = Port(context.loop)
        port.deliver("a")
        port.deliver("b")
        assert port.delivered_count == 2


class TestFlowControlledPort:
    def test_put_below_limit_is_immediate(self):
        context = SimContext()
        port = FlowControlledPort(context.loop, limit=2)
        assert port.put("a").done
        assert port.put("b").done

    def test_put_beyond_limit_blocks_until_take(self):
        context = SimContext()
        port = FlowControlledPort(context.loop, limit=1)
        port.put("a")
        blocked = port.put("b")
        assert not blocked.done
        taken = port.take()
        assert taken.result() == "a"
        assert blocked.done
        assert port.blocked_puts == 1

    def test_take_before_put_hands_item_directly(self):
        context = SimContext()
        port = FlowControlledPort(context.loop, limit=1)
        taken = port.take()
        port.put("x")
        assert taken.result() == "x"

    def test_try_put_returns_false_when_full(self):
        context = SimContext()
        port = FlowControlledPort(context.loop, limit=1)
        assert port.try_put("a")
        assert not port.try_put("b")

    def test_sender_process_blocks_at_limit(self):
        """The paper's sender flow control: producer suspends when full."""
        context = SimContext()
        port = FlowControlledPort(context.loop, limit=2)
        progress = []

        def producer():
            for index in range(5):
                yield port.put(index)
                progress.append(index)

        def consumer():
            yield 1.0
            while True:
                yield port.take()
                yield 1.0

        context.spawn(producer())
        context.spawn(consumer())
        context.run(until=0.5)
        # Producer filled the port (limit 2) plus one pending put accepted
        # only after a take; it cannot have finished yet.
        assert len(progress) < 5
        context.run(until=10.0)
        assert progress == [0, 1, 2, 3, 4]

    def test_zero_limit_rejected(self):
        context = SimContext()
        with pytest.raises(SimulationError):
            FlowControlledPort(context.loop, limit=0)
