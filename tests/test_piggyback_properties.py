"""Property-based tests on the piggybacking queue invariants (4.3.1)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.context import SimContext
from repro.subtransport.piggyback import PiggybackQueue
from repro.subtransport.wire import BundleEntry, decode_bundle

MAX_PAYLOAD = 600


def make_entry(st_id, seq, size):
    return BundleEntry(
        st_rms_id=st_id, seq=seq, flags=0,
        payload=bytes([seq % 256]) * size, send_time=0.0,
    )


submissions = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),        # st rms id
        st.integers(min_value=1, max_value=200),      # payload size
        st.floats(min_value=0.0, max_value=0.05,      # slack before deadline
                  allow_nan=False),
        st.floats(min_value=0.0, max_value=0.01,      # gap to next submit
                  allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


def drive(items, enabled=True):
    """Feed generated submissions through a queue inside a simulation."""
    context = SimContext(seed=0)
    flushed = []

    def flush(payload, deadline, st_ids, count):
        flushed.append((context.now, payload, deadline, st_ids, count))

    floors = {}

    def ordering_floor(st_ids):
        return max((floors.get(st_id, 0.0) for st_id in st_ids), default=0.0)

    queue = PiggybackQueue(
        context,
        max_bundle_payload=MAX_PAYLOAD,
        flush_fn=lambda p, d, ids, c: (
            flushed.append((context.now, p, d, ids, c)),
            [floors.__setitem__(st_id, d) for st_id in ids],
        ),
        ordering_floor=ordering_floor,
        enabled=enabled,
    )

    def producer():
        seq = 0
        for st_id, size, slack, gap in items:
            queue.submit(make_entry(st_id, seq, size),
                         max_deadline=context.now + slack)
            seq += 1
            if gap > 0:
                yield gap

    context.spawn(producer())
    context.run(until=60.0)
    queue.flush("forced")
    return flushed


@settings(max_examples=60, deadline=None)
@given(items=submissions)
def test_every_submitted_entry_is_flushed_exactly_once(items):
    flushed = drive(items)
    seqs = []
    for _, payload, _, _, _ in flushed:
        for entry in decode_bundle(payload):
            seqs.append(entry.seq)
    assert sorted(seqs) == list(range(len(items)))


@settings(max_examples=60, deadline=None)
@given(items=submissions)
def test_bundles_never_exceed_network_mms(items):
    flushed = drive(items)
    for _, payload, _, _, _ in flushed:
        assert len(payload) <= MAX_PAYLOAD


@settings(max_examples=60, deadline=None)
@given(items=submissions)
def test_no_entry_flushed_after_its_max_deadline(items):
    """The flush timer fires no later than the earliest component's
    maximum transmission deadline."""
    context_now_of_flush = drive(items)
    # Reconstruct per-seq deadlines from the generated schedule.
    deadlines = {}
    now = 0.0
    for seq, (st_id, size, slack, gap) in enumerate(items):
        deadlines[seq] = now + slack
        now += gap
    for flush_time, payload, _, _, _ in context_now_of_flush:
        for entry in decode_bundle(payload):
            assert flush_time <= deadlines[entry.seq] + 1e-9


@settings(max_examples=60, deadline=None)
@given(items=submissions)
def test_per_stream_order_preserved_within_and_across_bundles(items):
    flushed = drive(items)
    last_seq = {}
    for _, payload, _, _, _ in flushed:
        for entry in decode_bundle(payload):
            st_id = entry.st_rms_id
            if st_id in last_seq:
                assert entry.seq > last_seq[st_id]
            last_seq[st_id] = entry.seq


@settings(max_examples=60, deadline=None)
@given(items=submissions)
def test_network_deadlines_monotone_per_stream(items):
    """The ordering-floor rule: the deadline passed to the network never
    decreases for bundles carrying the same ST RMS (so deadline-ordered
    interfaces preserve per-stream order)."""
    flushed = drive(items)
    last_deadline = {}
    for _, payload, deadline, st_ids, _ in flushed:
        for st_id in st_ids:
            if st_id in last_deadline:
                assert deadline >= last_deadline[st_id] - 1e-12
            last_deadline[st_id] = deadline


@settings(max_examples=40, deadline=None)
@given(items=submissions)
def test_disabled_queue_is_one_to_one(items):
    flushed = drive(items, enabled=False)
    assert len(flushed) == len(items)
    for _, payload, _, _, count in flushed:
        assert count == 1
