"""Integration tests for the stream protocol (sections 2.5, 3.3, 4.4)."""

from __future__ import annotations

import pytest

from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.st import SubtransportLayer
from repro.transport.flowcontrol import FlowControlMode
from repro.transport.stream import StreamConfig, open_stream
from repro.errors import ParameterError


def build(seed=42, **net_kwargs):
    context = SimContext(seed=seed)
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    network = EthernetNetwork(context, **defaults)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys)
    return context, network, st_a, st_b


def open_session(context, st_a, st_b, config=None, until=3.0):
    future = open_stream(context, st_a, st_b, config)
    context.run(until=context.now + until)
    return future.result()


def drain(context, session, count, rate=None):
    received = []

    def consumer():
        for _ in range(count):
            message = yield session.receive()
            received.append(message)
            if rate is not None:
                yield 1.0 / rate

    context.spawn(consumer())
    return received


class TestStreamBasics:
    def test_in_order_reliable_delivery(self):
        context, _net, st_a, st_b = build()
        session = open_session(context, st_a, st_b)
        received = drain(context, session, 30)
        for index in range(30):
            session.send(bytes([index]) * 600)
        context.run(until=context.now + 10.0)
        assert len(received) == 30
        assert [m[0] for m in received] == list(range(30))

    def test_uses_data_and_ack_rms(self):
        context, _net, st_a, st_b = build()
        session = open_session(context, st_a, st_b)
        assert session.data_rms is not None
        assert session.ack_rms is not None
        # Ack RMS per section 2.5: low capacity relative to data.
        assert session.ack_rms.params.capacity < session.data_rms.params.capacity

    def test_reliability_over_lossy_network(self):
        context, _net, st_a, st_b = build(seed=5, frame_loss_rate=0.2)
        config = StreamConfig(retransmit_timeout=0.2)
        session = open_session(context, st_a, st_b, config, until=10.0)
        received = drain(context, session, 25)

        def producer():
            # Spaced sends so messages ride separate frames and loss
            # actually bites.
            for index in range(25):
                session.send(bytes([index]) * 400)
                yield 0.02

        context.spawn(producer())
        context.run(until=context.now + 120.0)
        assert len(received) == 25
        assert [m[0] for m in received] == list(range(25))
        assert session.stats.retransmissions > 0

    def test_unreliable_stream_drops_stay_dropped(self):
        context, _net, st_a, st_b = build(seed=6, frame_loss_rate=0.15)
        config = StreamConfig(
            reliable=False,
            capacity_mode=None,
            flow_control=FlowControlMode.NONE,
        )
        session = open_session(context, st_a, st_b, config, until=10.0)
        for index in range(40):
            session.send(bytes([index]) * 400)
        context.run(until=context.now + 10.0)
        assert session.stats.retransmissions == 0
        assert session.stats.messages_delivered < 40

    def test_window_never_exceeds_rms_capacity(self):
        """Section 5: the fixed window size is the RMS capacity."""
        context, _net, st_a, st_b = build()
        config = StreamConfig(capacity_mode="ack", data_capacity=8192)
        session = open_session(context, st_a, st_b, config)
        drain(context, session, 50)
        for index in range(50):
            session.send(bytes([index]) * 1000)
        max_outstanding = 0

        def watch():
            nonlocal max_outstanding
            for _ in range(200):
                max_outstanding = max(
                    max_outstanding, session.data_rms.outstanding_bytes
                )
                yield 0.005

        context.spawn(watch())
        context.run(until=context.now + 10.0)
        assert max_outstanding <= 8192
        assert session.data_rms.stats.capacity_violations == 0

    def test_rate_based_capacity_mode(self):
        context, _net, st_a, st_b = build()
        config = StreamConfig(
            capacity_mode="rate",
            data_capacity=8192,
            data_delay_bound=0.05,
        )
        session = open_session(context, st_a, st_b, config)
        drain(context, session, 30)
        for index in range(30):
            session.send(bytes([index]) * 1000)
        context.run(until=context.now + 10.0)
        assert session.stats.messages_delivered == 30
        assert session.data_rms.stats.capacity_violations == 0


class TestReceiverFlowControl:
    def test_slow_receiver_stalls_sender(self):
        context, _net, st_a, st_b = build()
        config = StreamConfig(
            flow_control=FlowControlMode.CAPACITY_AND_RECEIVER,
            receive_buffer=4096,
        )
        session = open_session(context, st_a, st_b, config)
        received = drain(context, session, 40, rate=20.0)  # 20 msg/s consumer
        for index in range(40):
            session.send(bytes([index]) * 1000)
        context.run(until=context.now + 30.0)
        assert len(received) == 40
        assert session._credit is not None and session._credit.stalls > 0
        assert session.stats.receiver_overflow_drops == 0

    def test_no_receiver_fc_slow_consumer_overflows(self):
        """Without receiver flow control a slow receiver drops messages."""
        context, _net, st_a, st_b = build()
        config = StreamConfig(
            reliable=False,
            capacity_mode=None,
            flow_control=FlowControlMode.NONE,
            receive_buffer=3000,
        )
        session = open_session(context, st_a, st_b, config)
        drain(context, session, 40, rate=5.0)  # very slow consumer
        for index in range(40):
            session.send(bytes([index]) * 1000)
        context.run(until=context.now + 10.0)
        assert session.stats.receiver_overflow_drops > 0


class TestSenderFlowControl:
    def test_sender_port_blocks_producer(self):
        """Section 4.4: 'A sender blocks when a port queue size limit is
        reached.'"""
        context, _net, st_a, st_b = build()
        config = StreamConfig(
            flow_control=FlowControlMode.END_TO_END,
            sender_port_limit=4,
            receive_buffer=4096,
        )
        session = open_session(context, st_a, st_b, config)
        drain(context, session, 30, rate=30.0)
        progress = []

        def producer():
            for index in range(30):
                yield session.send(bytes([index]) * 1000)
                progress.append(context.now)

        context.spawn(producer())
        context.run(until=context.now + 30.0)
        assert len(progress) == 30
        # The producer was paced: sends span a nontrivial interval.
        assert progress[-1] - progress[0] > 0.1
        assert session.tx_port.blocked_puts > 0


class TestFastAckStream:
    def test_fast_ack_replaces_ack_rms(self):
        context, _net, st_a, st_b = build()
        config = StreamConfig(
            reliable=True,
            capacity_mode="ack",
            flow_control=FlowControlMode.CAPACITY_ONLY,
            use_fast_ack=True,
            record_size=512,
        )
        session = open_session(context, st_a, st_b, config)
        assert session.ack_rms is None
        received = drain(context, session, 20)
        for index in range(20):
            session.send(bytes([index]) * 512)
        context.run(until=context.now + 10.0)
        assert len(received) == 20
        assert session.all_acked

    def test_record_size_enforced(self):
        context, _net, st_a, st_b = build()
        config = StreamConfig(use_fast_ack=True, record_size=512)
        session = open_session(context, st_a, st_b, config)
        with pytest.raises(ParameterError):
            session.send(b"wrong size")

    def test_fast_ack_without_record_size_rejected(self):
        with pytest.raises(ParameterError):
            StreamConfig(use_fast_ack=True)


class TestStreamFailure:
    def test_stream_fails_when_rms_fails(self):
        context, network, st_a, st_b = build()
        session = open_session(context, st_a, st_b)
        session.send(b"x" * 100)
        network.segment.set_down()
        context.run(until=context.now + 1.0)
        assert session.failed is not None

    def test_goodput_calculation(self):
        context, _net, st_a, st_b = build()
        session = open_session(context, st_a, st_b)
        drain(context, session, 10)
        for index in range(10):
            session.send(bytes([index]) * 1000)
        context.run(until=context.now + 5.0)
        assert session.goodput(1.0) == pytest.approx(10_000)
        assert session.goodput(0.0) == 0.0
