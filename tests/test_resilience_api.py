"""The unified session API and its resilience machinery.

Covers the ``DashSystem.connect`` facade for every session kind, the
deprecated entry points (forwarding semantics plus the exactly-once
``DeprecationWarning`` contract), RMS lifetime conveniences, the
``RmsRequest`` creation shape, the resilience policy / degradation
ladder, chaos schedules, and session continuity for streams and RKOM.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    RmsRequest,
    is_compatible,
)
from repro.dash._deprecation import reset_deprecation_warnings
from repro.dash.system import DashSystem
from repro.errors import NetworkError, ParameterError, RmsFailedError
from repro.netsim.chaos import ChaosSchedule
from repro.resilience import (
    ResiliencePolicy,
    SessionState,
    degradation_ladder,
)
from repro.transport.stream import StreamConfig, StreamSession


def lan_system(seed=61, **kwargs):
    system = DashSystem(seed=seed)
    system.add_ethernet(trusted=True, **kwargs)
    system.add_node("a")
    system.add_node("b")
    return system


def be_params(capacity=8192, mms=512):
    return RmsParams(
        capacity=capacity,
        max_message_size=mms,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


class TestConnectFacade:
    def test_st_session_roundtrip(self):
        system = lan_system()
        params = be_params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="app"
        )
        assert session.kind == "st"
        assert session.state is SessionState.ESTABLISHING
        system.run(until=system.now + 2.0)
        rms = session.established.result()
        assert is_compatible(rms.params, params)
        assert session.state is SessionState.UP
        got = []
        session.port.set_handler(got.append)
        session.send(b"over the facade")
        system.run(until=system.now + 1.0)
        assert len(got) == 1
        assert session.stats.messages_sent == 1

    def test_accepts_node_objects_and_request_form(self):
        system = lan_system()
        request = RmsRequest(desired=be_params(), acceptable=be_params(2048))
        session = system.connect(
            system.nodes["a"], system.nodes["b"], request=request, port="obj"
        )
        system.run(until=system.now + 2.0)
        assert session.established.done and not session.established.failed
        assert session.request is request

    def test_stream_session_resolves_to_raw_stream(self):
        system = lan_system()
        session = system.connect("a", "b", kind="stream")
        system.run(until=system.now + 2.0)
        stream = session.established.result()
        assert isinstance(stream, StreamSession)
        assert session.state is SessionState.UP

    def test_stream_config_derived_from_desired_params(self):
        system = lan_system()
        desired = be_params(capacity=4096, mms=400)
        session = system.connect("a", "b", kind="stream", desired=desired)
        assert session.config.data_capacity == 4096
        assert session.config.data_max_message == 400

    def test_rkom_session_is_shared_per_pair(self):
        system = lan_system()
        system.nodes["b"].rkom.register_handler("echo", lambda p, s: p)
        first = system.connect("a", "b", kind="rkom")
        second = system.connect("a", "b", kind="rkom")
        assert first is second
        reply = first.call("echo", b"ping")
        system.run(until=system.now + 2.0)
        assert reply.result() == b"ping"
        first.close()
        third = system.connect("a", "b", kind="rkom")
        assert third is not first

    def test_rkom_rejects_rms_parameters(self):
        system = lan_system()
        with pytest.raises(ParameterError):
            system.connect("a", "b", kind="rkom", desired=be_params())

    def test_unknown_kind_and_unknown_node_raise(self):
        system = lan_system()
        with pytest.raises(ParameterError):
            system.connect("a", "b", kind="telepathy")
        with pytest.raises(NetworkError):
            system.connect("a", "nobody", desired=be_params())

    def test_session_context_manager_closes_idempotently(self):
        system = lan_system()
        params = be_params()
        with system.connect(
            "a", "b", desired=params, acceptable=params, port="cm"
        ) as session:
            system.run(until=system.now + 2.0)
            assert session.is_up
        assert session.state is SessionState.CLOSED
        session.close()  # idempotent
        assert session.state is SessionState.CLOSED
        with pytest.raises(RmsFailedError):
            session.send(b"closed")


class TestDeprecatedEntryPoints:
    def test_create_st_rms_shim_forwards_and_preserves_contract(self):
        reset_deprecation_warnings()
        system = lan_system()
        params = be_params()
        with pytest.warns(DeprecationWarning):
            future = system.nodes["a"].create_st_rms(
                "b", port="shim", desired=params, acceptable=params
            )
        system.run(until=system.now + 2.0)
        rms = future.result()
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"legacy path")
        system.run(until=system.now + 1.0)
        assert len(got) == 1

    def test_open_stream_shim_forwards(self):
        reset_deprecation_warnings()
        system = lan_system()
        with pytest.warns(DeprecationWarning):
            future = system.open_stream("a", "b", StreamConfig())
        system.run(until=system.now + 2.0)
        assert isinstance(future.result(), StreamSession)

    def test_call_shim_forwards(self):
        reset_deprecation_warnings()
        system = lan_system()
        system.nodes["b"].rkom.register_handler("echo", lambda p, s: p)
        with pytest.warns(DeprecationWarning):
            reply = system.nodes["a"].call(system.nodes["b"], "echo", b"hi")
        system.run(until=system.now + 2.0)
        assert reply.result() == b"hi"

    def test_each_entry_point_warns_exactly_once(self):
        reset_deprecation_warnings()
        system = lan_system()
        system.nodes["b"].rkom.register_handler("echo", lambda p, s: p)
        params = be_params()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            system.nodes["a"].create_st_rms(
                "b", port="w1", desired=params, acceptable=params
            )
            system.nodes["a"].create_st_rms(
                "b", port="w2", desired=params, acceptable=params
            )
            system.open_stream("a", "b")
            system.open_stream("a", "b")
            system.nodes["a"].call("b", "echo", b"x")
            system.nodes["a"].call("b", "echo", b"y")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 3  # one per distinct entry point


class TestRmsLifecycle:
    def test_rms_close_is_idempotent(self):
        system = lan_system()
        params = be_params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="life"
        )
        system.run(until=system.now + 2.0)
        rms = session.established.result()
        assert rms.is_open
        rms.close()
        assert not rms.is_open
        rms.close()  # second close is a no-op
        with pytest.raises(RmsFailedError):
            rms.send(b"closed")

    def test_rms_context_manager(self):
        system = lan_system()
        params = be_params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="ctx"
        )
        system.run(until=system.now + 2.0)
        with session.established.result() as rms:
            assert rms.is_open
        assert not rms.is_open


class TestRmsRequest:
    def test_of_rejects_both_forms(self):
        with pytest.raises(ParameterError):
            RmsRequest.of(desired=be_params(), request=RmsRequest())

    def test_of_passes_request_through(self):
        request = RmsRequest(desired=be_params())
        assert RmsRequest.of(request=request) is request

    def test_floor_defaults_to_desired(self):
        desired = be_params()
        assert RmsRequest(desired=desired).floor is desired
        floor = be_params(2048)
        assert RmsRequest(desired=desired, acceptable=floor).floor is floor


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            ResiliencePolicy(jitter=1.5)
        with pytest.raises(ParameterError):
            ResiliencePolicy(backoff_factor=0.5)

    def test_backoff_grows_to_cap_within_jitter_envelope(self):
        import random

        policy = ResiliencePolicy()
        rng = random.Random(7)
        previous_nominal = 0.0
        for failures in range(8):
            nominal = min(
                policy.backoff_cap,
                policy.backoff_initial * policy.backoff_factor ** failures,
            )
            delay = policy.backoff_delay(failures, rng)
            assert nominal * (1 - policy.jitter) - 1e-12 <= delay
            assert delay <= nominal * (1 + policy.jitter) + 1e-12
            assert nominal >= previous_nominal
            previous_nominal = nominal

    def test_degradation_ladder_walks_toward_floor(self):
        desired = RmsParams(
            capacity=32768,
            max_message_size=1024,
            delay_bound=DelayBound(0.05, 1e-5),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        floor = RmsParams(
            capacity=4096,
            max_message_size=1024,
            delay_bound=DelayBound.unbounded(),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        rungs = degradation_ladder(RmsRequest(desired, floor), max_rungs=4)
        assert rungs[0].desired == desired
        assert all(rung.floor == floor for rung in rungs)
        for earlier, later in zip(rungs, rungs[1:]):
            # Each rung is strictly weaker: the earlier desired set would
            # satisfy a request for the later one, never vice versa.
            assert is_compatible(earlier.desired, later.desired)
            assert not is_compatible(later.desired, earlier.desired)
        assert rungs[-1].desired.capacity >= floor.capacity
        assert rungs[-1].desired.delay_bound_type == DelayBoundType.BEST_EFFORT

    def test_ladder_is_single_rung_when_no_floor_slack(self):
        desired = be_params()
        rungs = degradation_ladder(RmsRequest(desired, None))
        assert len(rungs) == 1


class TestChaosSchedule:
    def test_random_flaps_are_deterministic_per_seed(self):
        def run(seed):
            system = lan_system(seed=seed)
            chaos = ChaosSchedule(system.context, name="det")
            chaos.random_flaps(
                system.networks["ether0"].segment,
                mean_uptime=0.5, mean_downtime=0.2, until=20.0,
            )
            system.run(until=25.0)
            return chaos.log

        first, second = run(99), run(99)
        assert first and first == second
        assert run(100) != first

    def test_scripted_flap_and_log(self):
        system = lan_system()
        segment = system.networks["ether0"].segment
        chaos = ChaosSchedule(system.context)
        chaos.flap_link(segment, down_at=1.0, duration=0.5)
        system.run(until=1.2)
        assert not segment.is_up
        system.run(until=2.0)
        assert segment.is_up
        assert [(e.kind, e.time) for e in chaos.log] == [
            ("link_down", 1.0), ("link_up", 1.5)
        ]

    def test_partition_cuts_and_heals_reachability(self):
        system = DashSystem(seed=62)
        internet = system.add_internet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        internet.add_router("g1")
        internet.add_link("a", "g1", bandwidth=1e5, propagation_delay=0.002)
        internet.add_link("g1", "b", bandwidth=1e5, propagation_delay=0.002)
        chaos = ChaosSchedule(system.context)
        chaos.partition_at(internet, 1.0, {"a"}, heal_at=2.0)
        assert internet.can_reach("a", "b")
        system.run(until=1.5)
        assert not internet.can_reach("a", "b")
        system.run(until=2.5)
        assert internet.can_reach("a", "b")
        kinds = [e.kind for e in chaos.log]
        # The cut/heal markers bracket the per-link events they inject.
        assert kinds[0] == "partition"
        assert "heal" in kinds
        assert kinds.count("link_down") == kinds.count("link_up") == 2

    def test_host_pause_defers_delivery_until_resume(self):
        system = lan_system()
        params = be_params()
        session = system.connect(
            "a", "b", desired=params, acceptable=params, port="pause"
        )
        system.run(until=system.now + 2.0)
        session.established.result()
        got = []
        session.port.set_handler(got.append)
        chaos = ChaosSchedule(system.context)
        start = system.now
        chaos.pause_host_at(system.nodes["b"].host, start + 0.1, 0.5)
        system.context.loop.call_at(start + 0.2, session.send, b"while paused")
        system.run(until=start + 0.5)
        assert got == []  # receiver CPU is frozen
        system.run(until=start + 2.0)
        assert len(got) == 1
        assert [e.kind for e in chaos.log] == ["host_pause", "host_resume"]


class TestStreamContinuity:
    def test_supervised_stream_redelivers_salvaged_sends(self):
        system = lan_system(seed=63)
        session = system.connect(
            "a", "b", kind="stream",
            config=StreamConfig(retransmit_timeout=0.1, max_retransmits=3),
            resilience=ResiliencePolicy(max_attempts=12),
        )
        system.run(until=system.now + 2.0)
        assert session.is_up
        got = []

        def arm(future):
            got.append(future.result())
            session.receive().add_done_callback(arm)

        session.receive().add_done_callback(arm)
        for index in range(5):
            session.send(bytes([index]) * 300)
        segment = system.networks["ether0"].segment
        system.context.loop.call_after(0.02, segment.set_down)
        system.run(until=system.now + 1.0)
        assert session.state is SessionState.RE_ESTABLISHING
        for index in range(5, 10):
            session.send(bytes([index]) * 300)  # queued while down
        system.context.loop.call_after(1.0, segment.set_up)
        system.run(until=system.now + 30.0)
        assert session.is_up
        assert session.stats.recoveries >= 1
        # At-least-once across the failure: every distinct payload arrives
        # (an ack lost in the outage may surface as a duplicate).
        assert {payload[0] for payload in got} == set(range(10))
        assert len(got) >= 10


class TestRkomContinuity:
    def test_rkom_session_recovers_channel_after_outage(self):
        system = lan_system(seed=64)
        system.nodes["b"].rkom.register_handler("echo", lambda p, s: p)
        session = system.connect("a", "b", kind="rkom")
        states = []
        session.on_state_change.listen(
            lambda s, old, new, reason: states.append(new)
        )
        warm = session.call("echo", b"warm")
        system.run(until=system.now + 2.0)
        assert warm.result() == b"warm"
        assert session.state is SessionState.UP
        segment = system.networks["ether0"].segment
        segment.set_down()
        system.run(until=system.now + 1.0)
        assert session.state is SessionState.RE_ESTABLISHING
        segment.set_up()
        reply = session.call("echo", b"again")
        system.run(until=system.now + 10.0)
        assert reply.result() == b"again"
        assert session.state is SessionState.UP
        assert SessionState.RE_ESTABLISHING in states
