"""Tests for message-lifecycle spans and the end-to-end delay breakdown."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.errors import ParameterError
from repro.obs.export import flight_recorder, metrics_payload, span_lines
from repro.obs.spans import NullSpanTracer, SpanBreakdown, SpanEvent, SpanTracer
from repro.sim.events import EventLoop


def make_tracer(**kwargs) -> SpanTracer:
    return SpanTracer(EventLoop(), **kwargs)


class TestSpanTracer:
    def test_event_recording_and_query(self):
        tracer = make_tracer()
        trace = tracer.new_trace()
        tracer.event(trace, "st", "send", size=100)
        tracer.event(trace, "net", "tx")
        assert len(tracer) == 2
        events = tracer.events_for(trace)
        assert [e.event for e in events] == ["send", "tx"]
        assert events[0].fields == {"size": 100}

    def test_none_trace_is_ignored(self):
        tracer = make_tracer()
        tracer.event(None, "st", "send")
        assert len(tracer) == 0

    def test_bad_keep_mode_rejected(self):
        with pytest.raises(ParameterError):
            make_tracer(keep="middle")

    def test_head_mode_drops_new_events(self):
        tracer = make_tracer(max_events=2, keep="head")
        first = tracer.new_trace()
        tracer.event(first, "st", "send")
        tracer.event(first, "st", "deliver")
        second = tracer.new_trace()
        tracer.event(second, "st", "send")
        assert len(tracer) == 2
        assert tracer.dropped == 1
        assert tracer.events_for(second) == []
        assert len(tracer.events_for(first)) == 2

    def test_tail_mode_evicts_oldest_trace(self):
        tracer = make_tracer(max_events=2, keep="tail")
        first = tracer.new_trace()
        tracer.event(first, "st", "send")
        tracer.event(first, "st", "deliver")
        second = tracer.new_trace()
        tracer.event(second, "st", "send")
        # The oldest trace's two events made room for the new one.
        assert tracer.dropped == 2
        assert tracer.events_for(first) == []
        assert len(tracer.events_for(second)) == 1

    def test_wire_table_stash_claim(self):
        tracer = make_tracer()
        tracer.stash((7, 3), 42)
        assert tracer.claim((7, 3)) == 42
        assert tracer.claim((7, 3)) is None  # claimed exactly once

    def test_clear_resets_everything(self):
        tracer = make_tracer()
        trace = tracer.new_trace()
        tracer.event(trace, "st", "send")
        tracer.stash((1, 1), trace)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.claim((1, 1)) is None


class TestSpanBreakdown:
    def make_events(self):
        return [
            SpanEvent(1, 0.0, "st", "send"),
            SpanEvent(1, 0.1, "cpu", "enqueue"),
            SpanEvent(1, 0.3, "cpu", "done"),
            SpanEvent(1, 0.5, "st", "deliver"),
        ]

    def test_segments_attributed_to_earlier_layer(self):
        breakdown = SpanBreakdown(1, self.make_events())
        assert [s.layer for s in breakdown.segments] == ["st", "cpu", "cpu"]
        assert breakdown.total == pytest.approx(0.5)
        by_layer = breakdown.by_layer()
        assert by_layer["st"] == pytest.approx(0.1)
        assert by_layer["cpu"] == pytest.approx(0.4)
        assert sum(by_layer.values()) == pytest.approx(breakdown.total)
        assert breakdown.dominant_layer() == "cpu"
        assert breakdown.delivered and not breakdown.dropped

    def test_slowest_orders_by_total(self):
        tracer = make_tracer()
        fast, slow = tracer.new_trace(), tracer.new_trace()
        for trace, end in ((fast, 0.1), (slow, 0.9)):
            tracer.event(trace, "st", "send")
            tracer._traces[trace].append(
                SpanEvent(trace, end, "st", "deliver")
            )
        slowest = tracer.slowest(2)
        assert [b.trace_id for b in slowest] == [slow, fast]


class TestNullSpanTracer:
    def test_all_no_ops(self):
        tracer = NullSpanTracer()
        assert not tracer.enabled
        assert tracer.new_trace() is None
        tracer.event(1, "st", "send")
        assert len(tracer) == 0
        assert tracer.breakdown(1) is None
        assert tracer.slowest() == []


class TestEndToEndBreakdown:
    """The acceptance demo: one message's delay decomposes exactly."""

    def deliver_one(self):
        system = DashSystem(seed=7, observe=True)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        params = RmsParams(
            capacity=16384,
            max_message_size=1400,
            delay_bound=DelayBound(0.1, 1e-5),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        params_future = system.nodes["a"].st.create_st_rms(
            "b", port="demo", desired=params, acceptable=params
        )
        system.run(until=2.0)
        rms = params_future.result()
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"\xaa" * 600)
        system.run(until=4.0)
        return system, got

    def test_span_segments_sum_to_observed_delay(self):
        system, got = self.deliver_one()
        assert len(got) == 1
        message = got[0]
        assert message.delay is not None
        assert message.trace_id is not None
        breakdown = system.obs.spans.breakdown(message.trace_id)
        assert breakdown is not None
        assert breakdown.delivered
        # Every per-layer segment sums exactly to the end-to-end delay.
        segment_sum = sum(s.duration for s in breakdown.segments)
        assert segment_sum == pytest.approx(breakdown.total, abs=1e-12)
        assert breakdown.total == pytest.approx(message.delay, abs=1e-12)
        layers = {s.layer for s in breakdown.segments}
        assert {"st", "cpu", "net"} <= layers

    def test_exporters_cover_the_run(self):
        system, _ = self.deliver_one()
        obs = system.obs
        lines = list(span_lines(obs.spans))
        assert lines, "expected span events in the JSONL dump"
        payload = metrics_payload(obs=obs, experiment="demo")
        assert payload["schema"] == 1
        assert payload["spans"]["events"] == len(obs.spans)
        assert "rms_messages_delivered" in payload["metrics"]
        text = flight_recorder(obs)
        assert "flight recorder" in text
        assert "slowest" in text
