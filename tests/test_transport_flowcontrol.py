"""Tests for the flow-control mechanisms of section 4.4."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import ParameterError
from repro.sim.context import SimContext
from repro.transport.flowcontrol import (
    FlowControlMode,
    RateBasedEnforcer,
    ReceiverCredit,
    WindowEnforcer,
)


def enforced_params(capacity=1000, delay=0.1):
    return RmsParams(
        capacity=capacity,
        max_message_size=min(500, capacity),
        delay_bound=DelayBound(delay, 0.0),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


class TestFlowControlMode:
    def test_capacity_flags(self):
        assert FlowControlMode.CAPACITY_ONLY.enforces_capacity
        assert FlowControlMode.END_TO_END.enforces_capacity
        assert not FlowControlMode.NONE.enforces_capacity
        assert not FlowControlMode.RECEIVER_ONLY.enforces_capacity

    def test_receiver_flags(self):
        assert FlowControlMode.RECEIVER_ONLY.has_receiver_fc
        assert FlowControlMode.END_TO_END.has_receiver_fc
        assert not FlowControlMode.CAPACITY_ONLY.has_receiver_fc

    def test_sender_flags(self):
        assert FlowControlMode.END_TO_END.has_sender_fc
        assert not FlowControlMode.CAPACITY_AND_RECEIVER.has_sender_fc


class TestRateBasedEnforcer:
    def test_burst_up_to_capacity_is_immediate(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000))
        sent = []
        enforcer.request(600, lambda: sent.append(context.now))
        enforcer.request(400, lambda: sent.append(context.now))
        assert sent == [0.0, 0.0]

    def test_excess_waits_for_window_to_clear(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000, delay=0.1))
        sent = []
        enforcer.request(1000, lambda: sent.append(context.now))
        enforcer.request(500, lambda: sent.append(context.now))
        context.run()
        assert sent[0] == 0.0
        # The window is A + C*B = 0.1 s; the 500 B send must wait until
        # the opening 1000 B burst ages out of the sliding window.
        assert sent[1] == pytest.approx(0.1, abs=1e-6)
        assert enforcer.sends_delayed == 1

    def test_window_rule_never_exceeded(self):
        """No window of duration A + C*B carries more than C bytes."""
        context = SimContext()
        params = enforced_params(capacity=1000, delay=0.1)
        enforcer = RateBasedEnforcer(context, params)
        events = []
        for _ in range(20):
            enforcer.request(250, lambda: events.append((context.now, 250)))
        context.run()
        window = params.delay_bound.a + params.capacity * params.delay_bound.b
        for start_index in range(len(events)):
            start_time = events[start_index][0]
            in_window = sum(
                size
                for time, size in events
                if start_time <= time < start_time + window
            )
            assert in_window <= params.capacity + 1e-9

    def test_oversized_request_rejected(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=100))
        with pytest.raises(ParameterError):
            enforcer.request(200, lambda: None)

    def test_unbounded_delay_rejected(self):
        context = SimContext()
        with pytest.raises(ParameterError):
            RateBasedEnforcer(context, RmsParams())

    def test_fifo_order_preserved(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=500, delay=0.1))
        order = []
        for tag in range(5):
            enforcer.request(400, lambda t=tag: order.append(t))
        context.run()
        assert order == list(range(5))


class TestWindowEnforcer:
    def test_window_fills_then_blocks(self):
        context = SimContext()
        window = WindowEnforcer(context, capacity=1000)
        sent = []
        window.request(600, lambda: sent.append("a"))
        window.request(600, lambda: sent.append("b"))
        assert sent == ["a"]
        assert window.queued == 1

    def test_ack_opens_window(self):
        context = SimContext()
        window = WindowEnforcer(context, capacity=1000)
        sent = []
        window.request(600, lambda: sent.append("a"))
        window.request(600, lambda: sent.append("b"))
        window.acknowledge(600)
        assert sent == ["a", "b"]

    def test_outstanding_tracks_bytes(self):
        context = SimContext()
        window = WindowEnforcer(context, capacity=1000)
        window.request(300, lambda: None)
        window.request(200, lambda: None)
        assert window.outstanding == 500
        window.acknowledge(300)
        assert window.outstanding == 200

    def test_over_ack_clamps_at_zero(self):
        context = SimContext()
        window = WindowEnforcer(context, capacity=1000)
        window.request(300, lambda: None)
        window.acknowledge(900)
        assert window.outstanding == 0

    def test_head_of_line_blocking(self):
        """A large blocked head does not let smaller followers pass."""
        context = SimContext()
        window = WindowEnforcer(context, capacity=1000)
        sent = []
        window.request(900, lambda: sent.append("big1"))
        window.request(900, lambda: sent.append("big2"))
        window.request(10, lambda: sent.append("small"))
        assert sent == ["big1"]

    def test_invalid_capacity(self):
        context = SimContext()
        with pytest.raises(ParameterError):
            WindowEnforcer(context, capacity=0)


class TestReceiverCredit:
    def test_credit_consumed_and_granted(self):
        credit = ReceiverCredit(buffer_bytes=1000)
        sent = []
        credit.request(700, lambda: sent.append("a"))
        credit.request(700, lambda: sent.append("b"))
        assert sent == ["a"]
        assert credit.stalls == 1
        credit.grant(700)
        assert sent == ["a", "b"]

    def test_grant_clamps_at_buffer_size(self):
        credit = ReceiverCredit(buffer_bytes=1000)
        credit.grant(5000)
        assert credit.available == 1000

    def test_message_larger_than_buffer_rejected(self):
        credit = ReceiverCredit(buffer_bytes=100)
        with pytest.raises(ParameterError):
            credit.request(200, lambda: None)

    def test_invalid_buffer(self):
        with pytest.raises(ParameterError):
            ReceiverCredit(buffer_bytes=0)


class TestTryAdmit:
    """The no-alloc admit-or-decline fast path shared by all enforcers."""

    def test_rate_admit_does_request_bookkeeping(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000))
        assert enforcer.try_admit(600)
        assert enforcer._in_window == 600
        # A queued request sees exactly the state request() would leave.
        sent = []
        enforcer.request(600, lambda: sent.append(context.now))
        assert sent == []
        context.run()
        assert sent and sent[0] > 0.0

    def test_rate_declines_when_window_full(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000))
        assert enforcer.try_admit(1000)
        assert not enforcer.try_admit(1)
        assert enforcer._in_window == 1000  # declined admit left no trace

    def test_rate_declines_when_contested(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000))
        enforcer.request(1000, lambda: None)
        enforcer.request(100, lambda: None)  # queued behind the window
        assert enforcer.queued == 1
        # FIFO fairness: nothing may jump the queue via the fast path.
        assert not enforcer.try_admit(1)

    def test_rate_evicts_aged_history(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000, delay=0.1))
        assert enforcer.try_admit(1000)
        context.loop.call_after(1.0, lambda: None)
        context.run()
        assert enforcer.try_admit(1000)

    def test_rate_oversize_raises_like_request(self):
        context = SimContext()
        enforcer = RateBasedEnforcer(context, enforced_params(capacity=1000))
        with pytest.raises(ParameterError):
            enforcer.try_admit(1001)

    def test_window_admit_and_decline(self):
        context = SimContext()
        enforcer = WindowEnforcer(context, capacity=1000)
        assert enforcer.try_admit(800)
        assert enforcer.outstanding == 800
        assert not enforcer.try_admit(300)
        enforcer.acknowledge(800)
        assert enforcer.try_admit(300)

    def test_window_declines_when_contested(self):
        context = SimContext()
        enforcer = WindowEnforcer(context, capacity=1000)
        enforcer.request(1000, lambda: None)
        enforcer.request(10, lambda: None)
        assert not enforcer.try_admit(1)

    def test_window_oversize_raises(self):
        context = SimContext()
        enforcer = WindowEnforcer(context, capacity=1000)
        with pytest.raises(ParameterError):
            enforcer.try_admit(1001)

    def test_credit_admit_and_decline(self):
        credit = ReceiverCredit(buffer_bytes=1000)
        assert credit.try_admit(900)
        assert credit.available == 100
        assert not credit.try_admit(200)
        credit.grant(900)
        assert credit.try_admit(200)

    def test_credit_declines_when_contested(self):
        credit = ReceiverCredit(buffer_bytes=1000)
        credit.request(1000, lambda: None)
        credit.request(10, lambda: None)
        assert not credit.try_admit(1)

    def test_credit_oversize_raises(self):
        credit = ReceiverCredit(buffer_bytes=100)
        with pytest.raises(ParameterError):
            credit.try_admit(200)
