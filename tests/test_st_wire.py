"""Tests for ST wire formats and the piggybacking queue algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TransportError
from repro.sim.context import SimContext
from repro.subtransport.piggyback import PiggybackQueue
from repro.subtransport.wire import (
    BundleEntry,
    FLAG_FRAGMENT,
    control_mac_material,
    decode_bundle,
    decode_control,
    encode_bundle,
    encode_control,
)


def entry(st_id=1, seq=0, payload=b"data", flags=0, send_time=0.0, **kwargs):
    return BundleEntry(
        st_rms_id=st_id,
        seq=seq,
        flags=flags,
        payload=payload,
        send_time=send_time,
        **kwargs,
    )


class TestBundleCodec:
    def test_roundtrip_single(self):
        data = encode_bundle([entry(payload=b"hello", seq=3)])
        decoded = decode_bundle(data)
        assert len(decoded) == 1
        assert decoded[0].payload == b"hello"
        assert decoded[0].seq == 3

    def test_roundtrip_multiple(self):
        entries = [entry(st_id=i, seq=i, payload=bytes([i]) * (i + 1)) for i in range(5)]
        decoded = decode_bundle(encode_bundle(entries))
        assert [e.st_rms_id for e in decoded] == list(range(5))
        assert [e.payload for e in decoded] == [bytes([i]) * (i + 1) for i in range(5)]

    def test_fragment_fields_roundtrip(self):
        frag = entry(
            flags=FLAG_FRAGMENT, payload=b"chunk", frag_offset=100, frag_total=500
        )
        decoded = decode_bundle(encode_bundle([frag]))[0]
        assert decoded.is_fragment
        assert decoded.frag_offset == 100
        assert decoded.frag_total == 500

    def test_send_time_roundtrips(self):
        decoded = decode_bundle(encode_bundle([entry(send_time=1.25)]))[0]
        assert decoded.send_time == pytest.approx(1.25)

    def test_empty_bundle_rejected(self):
        with pytest.raises(TransportError):
            encode_bundle([])

    def test_truncated_bundle_rejected(self):
        data = encode_bundle([entry(payload=b"hello")])
        with pytest.raises(TransportError):
            decode_bundle(data[:-3])

    def test_trailing_garbage_rejected(self):
        data = encode_bundle([entry()])
        with pytest.raises(TransportError):
            decode_bundle(data + b"junk")

    def test_encoded_size_matches_wire(self):
        single = entry(payload=b"x" * 100)
        assert len(encode_bundle([single])) == 2 + single.encoded_size

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**31),
                st.integers(min_value=0, max_value=2**31),
                st.binary(max_size=200),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, raw):
        entries = [entry(st_id=i, seq=s, payload=p) for i, s, p in raw]
        decoded = decode_bundle(encode_bundle(entries))
        assert [(e.st_rms_id, e.seq, e.payload) for e in decoded] == [
            (e.st_rms_id, e.seq, e.payload) for e in entries
        ]


class TestControlCodec:
    def test_roundtrip_without_mac(self):
        fields = {"op": "st_create", "st_id": 7}
        decoded = decode_control(encode_control(fields))
        assert decoded == fields

    def test_roundtrip_with_mac(self):
        mac = bytes(range(8))
        decoded = decode_control(encode_control({"op": "x"}, mac=mac))
        assert decoded["_mac"] == mac.hex()
        assert decoded["op"] == "x"

    def test_mac_containing_separator_byte(self):
        """Regression: a 0x02 byte inside the MAC must not split wrong."""
        mac = b"\x02" * 8
        decoded = decode_control(encode_control({"op": "y"}, mac=mac))
        assert decoded["_mac"] == mac.hex()

    def test_garbage_rejected(self):
        with pytest.raises(TransportError):
            decode_control(b"\x01\xff\xfe{bad json")

    def test_wrong_tag_rejected(self):
        with pytest.raises(TransportError):
            decode_control(b"\x07{}")

    def test_mac_material_excludes_mac_and_is_canonical(self):
        one = control_mac_material({"b": 2, "a": 1, "_mac": "ff"})
        two = control_mac_material({"a": 1, "b": 2})
        assert one == two


class TestPiggybackQueue:
    def make_queue(self, context, enabled=True, max_payload=500):
        flushes = []

        def flush(payload, deadline, st_ids, count):
            flushes.append((payload, deadline, st_ids, count))

        queue = PiggybackQueue(
            context,
            max_bundle_payload=max_payload,
            flush_fn=flush,
            ordering_floor=lambda ids: 0.0,
            enabled=enabled,
        )
        return queue, flushes

    def test_disabled_queue_sends_immediately(self):
        context = SimContext()
        queue, flushes = self.make_queue(context, enabled=False)
        queue.submit(entry(payload=b"a"), max_deadline=context.now + 1.0)
        assert len(flushes) == 1
        assert flushes[0][3] == 1

    def test_components_accumulate_until_timer(self):
        context = SimContext()
        queue, flushes = self.make_queue(context)
        queue.submit(entry(seq=0, payload=b"a" * 10), max_deadline=0.010)
        queue.submit(entry(seq=1, payload=b"b" * 10), max_deadline=0.012)
        assert flushes == []
        context.run()
        assert len(flushes) == 1
        payload, deadline, st_ids, count = flushes[0]
        assert count == 2
        # Flush fires at the earliest max deadline...
        assert context.now == pytest.approx(0.010)
        # ...but the deadline passed down is the queue's maximum.
        assert deadline == pytest.approx(0.012)

    def test_overflow_flushes_before_append(self):
        context = SimContext()
        queue, flushes = self.make_queue(context, max_payload=120)
        queue.submit(entry(seq=0, payload=b"a" * 60), max_deadline=1.0)
        queue.submit(entry(seq=1, payload=b"b" * 60), max_deadline=1.0)
        assert len(flushes) == 1  # first flushed to make room
        assert flushes[0][3] == 1
        assert queue.flushes_overflow == 1

    def test_overdue_message_flushes_whole_queue(self):
        context = SimContext()
        queue, flushes = self.make_queue(context)
        queue.submit(entry(seq=0, payload=b"a"), max_deadline=context.now + 1.0)
        queue.submit(entry(seq=1, payload=b"b"), max_deadline=context.now)  # no slack
        assert len(flushes) == 1
        assert flushes[0][3] == 2  # sent together, order preserved
        assert queue.flushes_immediate == 1

    def test_ordering_floor_raises_deadline(self):
        context = SimContext()
        flushes = []
        queue = PiggybackQueue(
            context,
            max_bundle_payload=500,
            flush_fn=lambda p, d, ids, c: flushes.append(d),
            ordering_floor=lambda ids: 9.0,
        )
        queue.submit(entry(payload=b"a"), max_deadline=0.5)
        context.run()
        assert flushes[0] == pytest.approx(9.0)

    def test_oversized_component_rejected(self):
        context = SimContext()
        queue, _ = self.make_queue(context, max_payload=50)
        with pytest.raises(TransportError):
            queue.submit(entry(payload=b"x" * 100), max_deadline=1.0)

    def test_forced_flush_empty_is_noop(self):
        context = SimContext()
        queue, flushes = self.make_queue(context)
        queue.flush("forced")
        assert flushes == []

    def test_bundle_decodes_after_flush(self):
        context = SimContext()
        queue, flushes = self.make_queue(context)
        queue.submit(entry(seq=0, payload=b"first"), max_deadline=0.001)
        queue.submit(entry(seq=1, payload=b"second"), max_deadline=0.002)
        context.run()
        decoded = decode_bundle(flushes[0][0])
        assert [e.payload for e in decoded] == [b"first", b"second"]

    def test_timer_rearms_for_earlier_deadline(self):
        context = SimContext()
        queue, flushes = self.make_queue(context)
        queue.submit(entry(seq=0, payload=b"later"), max_deadline=0.5)
        queue.submit(entry(seq=1, payload=b"sooner"), max_deadline=0.1)
        context.run()
        # Queue must have flushed at 0.1, not 0.5.
        assert context.now == pytest.approx(0.1)
        assert len(flushes) == 1
        assert flushes[0][3] == 2
