"""Tests for the batch-dispatch engine: bulk drains and link transmit
batching must be behavior-preserving, and the unified drive API must
terminate and validate as documented."""

from __future__ import annotations

import pytest

from repro.dash._deprecation import reset_deprecation_warnings
from repro.dash.system import DashSystem
from repro.errors import ParameterError, SchedulingError, TransportError
from repro.sim.events import EventLoop
from repro.transport.rkom import CallHandle


def _lossy_trace(batch_dispatch, link_batching, messages=60, loss=0.05):
    """A fixed-seed lossy run; returns the delivery trace and end time.

    Same workload as the PR 4 coalescing-equivalence suite: small bursty
    payloads exercise piggyback flush deadlines, frame loss exercises the
    ST retransmission timers, and both knobs of the E20 engine reorder
    nothing if they preserve the (time, seq) dispatch order.
    """
    system = DashSystem(seed=7, batch_dispatch=batch_dispatch)
    system.add_ethernet(trusted=True, frame_loss_rate=loss,
                        link_batching=link_batching)
    system.add_node("a")
    system.add_node("b")
    session = system.connect("a", "b", port="trace")
    system.run(until=2.0)
    rms = session.established.result()
    deliveries = []
    rms.port.set_handler(
        lambda message: deliveries.append((bytes(message.payload), system.now))
    )
    for index in range(messages):
        rms.send(bytes([index % 251]) * 64)
        if index % 8 == 7:
            system.run(until=system.now + 0.05)
    system.run(until=system.now + 2.0)
    return deliveries, system.now


class TestBatchDispatchEquivalence:
    """The batched inner loop and link transmit bursts deliver the exact
    byte sequence, at the exact times, of the per-event legacy path."""

    def test_lossy_trace_identical_vs_legacy_dispatcher(self):
        engine, _ = _lossy_trace(True, True)
        legacy, _ = _lossy_trace(False, False)
        assert engine == legacy

    def test_lossy_trace_identical_without_batch_dispatch(self):
        engine, _ = _lossy_trace(True, True)
        no_batch, _ = _lossy_trace(False, True)
        assert engine == no_batch

    def test_lossy_trace_identical_without_link_batching(self):
        engine, _ = _lossy_trace(True, True)
        no_link, _ = _lossy_trace(True, False)
        assert engine == no_link

    def test_lossless_trace_identical(self):
        engine, _ = _lossy_trace(True, True, loss=0.0)
        legacy, _ = _lossy_trace(False, False, loss=0.0)
        assert engine == legacy
        assert len(engine) == 60


class TestRunWhilePending:
    def test_idle_schedule_drains_and_returns_last_event_time(self):
        loop = EventLoop(batch_dispatch=True)
        fired = []
        loop.call_at(0.5, fired.append, "a")
        loop.call_at(1.5, fired.append, "b")
        assert loop.run_while_pending() == 1.5
        assert fired == ["a", "b"]
        assert loop.pending_events == 0

    def test_timer_only_schedule_terminates(self):
        # Nothing but timers: the drain must advance the clock through
        # every slot and the far heap, then stop on its own.
        loop = EventLoop(batch_dispatch=True)
        fired = []
        for i in range(200):
            loop.call_at(i * 0.01, fired.append, i)
        loop.call_at(600.0, fired.append, "far")  # beyond the wheel horizon
        end = loop.run_while_pending()
        assert end == 600.0
        assert fired[-1] == "far"
        assert len(fired) == 201

    def test_idle_grace_leaves_chaos_schedule_pending(self):
        # A far-out "chaos" event must not keep the drain alive once the
        # near-term work is done.
        loop = EventLoop(batch_dispatch=True)
        fired = []
        loop.call_at(0.01, fired.append, "near")
        loop.call_at(120.0, fired.append, "chaos")
        end = loop.run_while_pending(idle_grace=1.0)
        assert fired == ["near"]
        assert end == 0.01
        assert loop.pending_events == 1

    def test_runaway_schedule_raises_scheduling_error(self):
        loop = EventLoop(batch_dispatch=True)

        def rearm() -> None:
            loop.call_soon(rearm)

        loop.call_soon(rearm)
        with pytest.raises(SchedulingError):
            loop.run_while_pending(max_events=500)

    def test_system_run_while_pending_with_grace_terminates(self):
        # End-to-end: a DASH system holds long-lived housekeeping timers
        # (channel retransmission deadlines), so only the graced form of
        # the drain is guaranteed to stop.
        system = DashSystem(seed=9)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        session = system.connect("a", "b", port="drain")
        system.run(until=2.0)
        rms = session.established.result()
        got = []
        rms.port.set_handler(lambda message: got.append(bytes(message.payload)))
        rms.send(b"x" * 32)
        system.run(while_pending=True, idle_grace=0.5)
        assert got == [b"x" * 32]


class TestRunValidation:
    def _system(self):
        system = DashSystem(seed=3)
        system.add_ethernet(trusted=True)
        return system

    def test_until_and_while_pending_are_exclusive(self):
        with pytest.raises(ParameterError):
            self._system().run(until=1.0, while_pending=True)

    def test_idle_grace_requires_while_pending(self):
        with pytest.raises(ParameterError):
            self._system().run(until=1.0, idle_grace=0.5)

    def test_run_until_idle_warns_once_and_delegates(self):
        reset_deprecation_warnings()
        system = self._system()
        system.context.loop.call_at(0.25, lambda: None)
        with pytest.warns(DeprecationWarning, match="run_until_idle"):
            assert system.run_until_idle() == 0.25
        # warn-once: a second call stays silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            system.run_until_idle()


class TestCallHandle:
    def _rkom_pair(self):
        system = DashSystem(seed=13)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        return system, node_a, node_b

    def test_call_returns_handle_that_is_its_own_future(self):
        system, node_a, node_b = self._rkom_pair()
        node_b.rkom.register_handler("echo", lambda payload, sender: payload)
        handle = system.connect(node_a, node_b, kind="rkom").call("echo", b"hi")
        assert isinstance(handle, CallHandle)
        assert handle.future is handle  # the old bare-Future contract
        system.run(until=2.0)
        assert handle.result() == b"hi"

    def test_elapsed_tracks_flight_and_stamps_on_resolution(self):
        system, node_a, node_b = self._rkom_pair()
        node_b.rkom.register_handler("echo", lambda payload, sender: payload)
        handle = system.connect(node_a, node_b, kind="rkom").call("echo", b"x")
        system.run(until=0.001)
        in_flight = handle.elapsed
        assert in_flight > 0.0
        system.run(until=2.0)
        done = handle.elapsed
        assert done >= in_flight
        system.run(until=3.0)
        assert handle.elapsed == done  # stamped, not still ticking

    def test_cancel_fails_future_and_releases_record(self):
        from repro.sim.process import Future

        system, node_a, node_b = self._rkom_pair()
        node_b.rkom.register_handler(
            "hang", lambda payload, sender: Future(system.context.loop)
        )
        handle = system.connect(node_a, node_b, kind="rkom").call("hang", b"?")
        system.run(until=0.001)
        assert handle.cancel() is True
        assert not node_a.rkom._pending
        with pytest.raises(TransportError, match="cancelled"):
            handle.result()
        # A resolved call cannot be cancelled again.
        assert handle.cancel() is False
        # The loop stays healthy: no orphan timeout fires later.
        system.run(until=60.0)

    def test_cancel_after_reply_returns_false(self):
        system, node_a, node_b = self._rkom_pair()
        node_b.rkom.register_handler("echo", lambda payload, sender: payload)
        handle = system.connect(node_a, node_b, kind="rkom").call("echo", b"ok")
        system.run(until=2.0)
        assert handle.result() == b"ok"
        assert handle.cancel() is False
