"""Edge cases in the subtransport layer: stale traffic, cache limits,
garbled input, repeated operations."""

from __future__ import annotations

import pytest

from repro.core.message import Label, Message
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.config import StConfig
from repro.subtransport.st import SubtransportLayer
from repro.subtransport.wire import BundleEntry, encode_bundle


def build_pair(seed=91, st_config=None, **net_kwargs):
    context = SimContext(seed=seed)
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    network = EthernetNetwork(context, **defaults)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys,
                             config=st_config)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys,
                             config=st_config)
    return context, network, st_a, st_b


def params(**kwargs):
    defaults = dict(
        capacity=16_384,
        max_message_size=2_000,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    defaults.update(kwargs)
    return RmsParams(**defaults)


def open_rms(context, st, port="edge", p=None):
    p = p or params()
    future = st.create_st_rms("b", port=port, desired=p, acceptable=p)
    context.run(until=context.now + 3.0)
    return future.result()


class TestStaleAndGarbledInput:
    def test_orphan_components_counted_not_crashing(self):
        """Data for an unknown ST RMS id is dropped and counted."""
        context, network, st_a, st_b = build_pair()
        open_rms(context, st_a)  # establish the data path
        orphan = BundleEntry(st_rms_id=99_999, seq=0, flags=0,
                             payload=b"stale", send_time=context.now)
        st_b._data_arrived(None, Message(encode_bundle([orphan])))
        assert st_b.stats.orphan_components == 1

    def test_garbled_bundle_counted(self):
        context, network, st_a, st_b = build_pair()
        open_rms(context, st_a)
        st_b._data_arrived(None, Message(b"\xff\xfe garbage bytes"))
        assert st_b.stats.garbled_bundles == 1

    def test_traffic_after_close_is_orphaned(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        rms_id = rms.rms_id
        rms.close()
        context.run(until=context.now + 1.0)
        late = BundleEntry(st_rms_id=rms_id, seq=5, flags=0,
                           payload=b"late", send_time=context.now)
        st_b._data_arrived(None, Message(encode_bundle([late])))
        assert st_b.stats.orphan_components == 1

    def test_close_is_idempotent(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        rms.close()
        rms.close()  # second close is a no-op
        context.run(until=context.now + 1.0)
        assert not rms.is_open


class TestCacheLimits:
    def test_cache_size_limit_evicts_beyond(self):
        config = StConfig(cache_size_per_peer=1, multiplexing_enabled=False)
        context, network, st_a, st_b = build_pair(st_config=config)
        first = open_rms(context, st_a, port="one")
        second = open_rms(context, st_a, port="two")
        net_one = first.binding.network_rms
        net_two = second.binding.network_rms
        first.close()
        second.close()
        context.run(until=context.now + 1.0)
        peer = st_a._peer("b")
        assert len(peer.cached) == 1  # one kept, one torn down
        kept = peer.cached[0].network_rms
        dropped = net_two if kept is net_one else net_one
        assert kept.is_open
        assert not dropped.is_open

    def test_cache_disabled_means_no_retention(self):
        config = StConfig(cache_enabled=False, multiplexing_enabled=False)
        context, network, st_a, st_b = build_pair(st_config=config)
        rms = open_rms(context, st_a)
        network_rms = rms.binding.network_rms
        rms.close()
        context.run(until=context.now + 1.0)
        assert not network_rms.is_open
        assert st_a._peer("b").cached == []


class TestParameterEdges:
    def test_capability_table_offers_all_security_combos(self):
        context, network, st_a, st_b = build_pair(trusted=False)
        table = st_a.st_capability_table("b")
        # The ST supplies software security, so every non-reliable combo
        # is on offer even on the untrusted medium.
        assert table.limits_for(params(privacy=True)) is not None
        assert table.limits_for(params(authentication=True)) is not None

    def test_st_mms_multiple_respected(self):
        config = StConfig(max_message_multiple=2)
        context, network, st_a, st_b = build_pair(st_config=config)
        wanted = params(max_message_size=10_000, capacity=32_768)
        future = st_a.create_st_rms("b", port="big", desired=wanted,
                                    acceptable=wanted.with_(
                                        max_message_size=1_000))
        context.run(until=context.now + 3.0)
        rms = future.result()
        assert rms.params.max_message_size <= 2 * 1500

    def test_exact_mms_boundary_send(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"z" * rms.params.max_message_size)  # exactly at the cap
        context.run(until=context.now + 2.0)
        assert got[0].size == rms.params.max_message_size

    def test_one_byte_message(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"!")
        context.run(until=context.now + 2.0)
        assert got[0].payload == b"!"

    def test_empty_message(self):
        context, network, st_a, st_b = build_pair()
        rms = open_rms(context, st_a)
        got = []
        rms.port.set_handler(got.append)
        rms.send(b"")
        context.run(until=context.now + 2.0)
        assert got[0].payload == b""


class TestConcurrentPeers:
    def test_one_st_serves_many_peers(self):
        context = SimContext(seed=92)
        network = EthernetNetwork(context, trusted=True)
        hosts = {name: Host(context, name) for name in ("a", "b", "c", "d")}
        for host in hosts.values():
            network.attach(host)
        keys = KeyRegistry()
        sts = {
            name: SubtransportLayer(context, host, [network],
                                    key_registry=keys)
            for name, host in hosts.items()
        }
        streams = {}
        for peer in ("b", "c", "d"):
            future = sts["a"].create_st_rms(peer, port="fan",
                                            desired=params(),
                                            acceptable=params())
            context.run(until=context.now + 2.0)
            streams[peer] = future.result()
        got = {peer: [] for peer in streams}
        for peer, rms in streams.items():
            rms.port.set_handler(got[peer].append)
            rms.send(peer.encode() * 10)
        context.run(until=context.now + 2.0)
        for peer in streams:
            assert got[peer][0].payload == peer.encode() * 10
        # One control channel per peer.
        assert len(sts["a"]._peers) == 3

    def test_bidirectional_streams_between_same_pair(self):
        context, network, st_a, st_b = build_pair()
        forward = open_rms(context, st_a, port="fwd")
        backward_future = st_b.create_st_rms("a", port="bwd",
                                             desired=params(),
                                             acceptable=params())
        context.run(until=context.now + 3.0)
        backward = backward_future.result()
        got_f, got_b = [], []
        forward.port.set_handler(got_f.append)
        backward.port.set_handler(got_b.append)
        forward.send(b"a to b")
        backward.send(b"b to a")
        context.run(until=context.now + 2.0)
        assert got_f[0].payload == b"a to b"
        assert got_b[0].payload == b"b to a"
