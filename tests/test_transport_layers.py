"""Tests for sub-user / user RMS levels (section 3.4, Figure 3)."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.core.rms import RmsLevel
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.st import SubtransportLayer
from repro.transport.layers import SubUserRms, UserRms


def build():
    context = SimContext(seed=42)
    network = EthernetNetwork(context, trusted=True)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys)
    params = RmsParams(
        capacity=16_384,
        max_message_size=4_000,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = st_a.create_st_rms("b", port="layered", desired=params,
                                acceptable=params)
    context.run(until=2.0)
    return context, host_a, host_b, future.result()


class TestSubUserRms:
    def test_levels(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        assert subuser.level == RmsLevel.SUBUSER
        assert st_rms.level == RmsLevel.SUBTRANSPORT

    def test_delivery_through_levels(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        got = []
        subuser.port.set_handler(got.append)
        subuser.send(b"through the stack")
        context.run(until=context.now + 2.0)
        assert got[0].payload == b"through the stack"

    def test_delay_includes_processing_stages(self):
        """Section 3.4: sub-user delay bounds include protocol
        processing time at both ends."""
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(
            context, st_rms, host_a, host_b, stage_allowance=5e-3
        )
        got = []
        subuser.port.set_handler(got.append)
        st_got = []
        subuser.send(b"x" * 1000)
        context.run(until=context.now + 2.0)
        # The sub-user bound is the ST bound plus two stage allowances.
        assert subuser.params.delay_bound.a == pytest.approx(
            st_rms.params.delay_bound.a + 2 * 5e-3
        )
        # Measured delay includes CPU stages, so it exceeds the raw ST
        # delay of the same message.
        assert got[0].delay is not None
        assert got[0].delay > st_rms.stats.delays[-1]

    def test_user_rms_stacks_on_subuser(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        user = UserRms(context, subuser, host_a, host_b)
        got = []
        user.port.set_handler(got.append)
        user.send(b"top level")
        context.run(until=context.now + 2.0)
        assert got[0].payload == b"top level"
        assert user.level == RmsLevel.USER
        assert user.params.delay_bound.a > subuser.params.delay_bound.a

    def test_failure_propagates_up(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        reasons = []
        subuser.on_failure.listen(lambda r, reason: reasons.append(reason))
        st_rms.fail("lower level died")
        assert reasons

    def test_in_order_delivery_preserved(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        got = []
        subuser.port.set_handler(lambda m: got.append(m.payload[0]))
        for index in range(15):
            subuser.send(bytes([index]) * 200)
        context.run(until=context.now + 3.0)
        assert got == list(range(15))

    def test_delete_cascades_down(self):
        context, host_a, host_b, st_rms = build()
        subuser = SubUserRms(context, st_rms, host_a, host_b)
        subuser.delete()
        assert not subuser.is_open
        assert not st_rms.is_open
