"""Tests for RNG streams, tracing, and the simulation context."""

from __future__ import annotations

import pytest

from repro.sim.context import SimContext
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        first = RandomStreams(42).stream("x")
        second = RandomStreams(42).stream("x")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_streams_does_not_perturb_existing(self):
        """The draw sequence of one stream is independent of how many
        other streams exist -- crucial for experiment comparability."""
        solo = RandomStreams(7)
        seq_solo = [solo.stream("target").random() for _ in range(5)]
        crowded = RandomStreams(7)
        for name in ("a", "b", "c"):
            crowded.stream(name).random()
        seq_crowded = [crowded.stream("target").random() for _ in range(5)]
        assert seq_solo == seq_crowded

    def test_spawn_children_independent(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("one")
        child_b = parent.spawn("two")
        assert child_a.master_seed != child_b.master_seed
        assert child_a.stream("x").random() != child_b.stream("x").random()

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != RandomStreams(
            2
        ).stream("x").random()


class TestTracer:
    def test_records_with_time(self):
        context = SimContext(trace=True)
        context.loop.call_after(1.5, lambda: context.tracer.record(
            "cat", "evt", key="value"))
        context.run()
        assert context.tracer.count("cat", "evt") == 1
        record = next(context.tracer.select("cat"))
        assert record.time == pytest.approx(1.5)
        assert record.fields == {"key": "value"}

    def test_category_filter(self):
        context = SimContext(trace=True, trace_categories={"keep"})
        context.tracer.record("keep", "a")
        context.tracer.record("drop", "b")
        assert context.tracer.count() == 1

    def test_select_by_event(self):
        context = SimContext(trace=True)
        context.tracer.record("c", "one")
        context.tracer.record("c", "two")
        assert context.tracer.count(event="one") == 1

    def test_max_records_drops_overflow(self):
        context = SimContext()
        tracer = Tracer(context.loop, max_records=2)
        for index in range(5):
            tracer.record("c", "e", i=index)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        context = SimContext(trace=True)
        context.tracer.record("c", "e")
        context.tracer.clear()
        assert context.tracer.count() == 0

    def test_dump_renders_lines(self):
        context = SimContext(trace=True)
        context.tracer.record("cat", "evt", n=3)
        assert "cat.evt" in context.tracer.dump()
        assert "n=3" in context.tracer.dump()

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.record("c", "e", x=1)
        assert tracer.count() == 0
        assert list(tracer.select()) == []
        assert tracer.dump() == ""
        assert not tracer.enabled


class TestSimContext:
    def test_default_is_null_tracer(self):
        context = SimContext()
        assert isinstance(context.tracer, NullTracer)

    def test_trace_enables_tracer(self):
        context = SimContext(trace=True)
        assert isinstance(context.tracer, Tracer)

    def test_now_tracks_loop(self):
        context = SimContext()
        context.loop.call_after(3.0, lambda: None)
        context.run()
        assert context.now == 3.0

    def test_spawn_names_process(self):
        context = SimContext()

        def worker():
            yield 1.0

        process = context.spawn(worker(), name="my-worker")
        assert process.name == "my-worker"
        context.run()

    def test_run_until_idle(self):
        context = SimContext()
        context.loop.call_after(1.0, lambda: None)
        assert context.run_until_idle() == 1.0

    def test_signal_factory(self):
        context = SimContext()
        signal = context.signal()
        seen = []
        signal.listen(seen.append)
        signal.fire(1)
        assert seen == [1]
