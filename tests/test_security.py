"""Tests for the security substrate: checksums, ciphers, MACs, keys.

The raw primitives are imported from their *submodules* deliberately:
they are the reference oracles the provider engines are checked against
(importing them from the ``repro.security`` package is what's
deprecated).  Data-path behaviour goes through the provider API, tested
in :class:`TestProviderApi` and ``test_security_providers.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SecurityError
from repro.security import resolve_provider
from repro.security.checksum import (
    CHECKSUM_ALGORITHMS,
    checksum_bytes,
    crc32,
    fletcher16,
    internet_checksum,
)
from repro.security.cipher import StreamCipher, xtea_decrypt_block, xtea_encrypt_block
from repro.security.keys import KeyRegistry
from repro.security.mac import MAC_BYTES, compute_mac, verify_mac

KEY = b"0123456789abcdef"


class TestChecksums:
    def test_crc32_known_vector(self):
        """The canonical CRC-32 check value."""
        assert crc32(b"123456789") == 0xCBF43926

    def test_crc32_empty(self):
        assert crc32(b"") == 0

    def test_internet_checksum_detects_flip(self):
        data = bytearray(b"The quick brown fox")
        original = internet_checksum(bytes(data))
        data[3] ^= 0x40
        assert internet_checksum(bytes(data)) != original

    def test_internet_checksum_odd_length(self):
        assert isinstance(internet_checksum(b"abc"), int)

    def test_fletcher16_detects_transposition(self):
        assert fletcher16(b"ab") != fletcher16(b"ba")

    def test_all_algorithms_registered(self):
        assert set(CHECKSUM_ALGORITHMS) == {"internet", "fletcher16", "crc32"}

    def test_checksum_widths(self):
        assert checksum_bytes("crc32") == 4
        assert checksum_bytes("internet") == 2

    @given(st.binary(min_size=1, max_size=256), st.integers(min_value=0))
    def test_crc32_detects_single_bit_flips(self, data, bit_seed):
        bit = bit_seed % (len(data) * 8)
        flipped = bytearray(data)
        flipped[bit // 8] ^= 1 << (bit % 8)
        assert crc32(bytes(flipped)) != crc32(data)


class TestXtea:
    def test_block_roundtrip(self):
        block = b"8bytes!!"
        encrypted = xtea_encrypt_block(KEY, block)
        assert encrypted != block
        assert xtea_decrypt_block(KEY, encrypted) == block

    def test_wrong_key_size_rejected(self):
        with pytest.raises(SecurityError):
            xtea_encrypt_block(b"short", b"8bytes!!")

    def test_wrong_block_size_rejected(self):
        with pytest.raises(SecurityError):
            xtea_encrypt_block(KEY, b"toolongblock")

    def test_different_keys_differ(self):
        other_key = b"fedcba9876543210"
        block = b"8bytes!!"
        assert xtea_encrypt_block(KEY, block) != xtea_encrypt_block(other_key, block)

    @given(st.binary(min_size=8, max_size=8))
    def test_roundtrip_property(self, block):
        assert xtea_decrypt_block(KEY, xtea_encrypt_block(KEY, block)) == block


class TestStreamCipher:
    def test_apply_roundtrips(self):
        cipher = StreamCipher(KEY)
        plaintext = b"attack at dawn" * 10
        ciphertext = cipher.apply(7, plaintext)
        assert ciphertext != plaintext
        assert cipher.apply(7, ciphertext) == plaintext

    def test_different_nonces_differ(self):
        cipher = StreamCipher(KEY)
        assert cipher.apply(1, b"same data") != cipher.apply(2, b"same data")

    def test_keystream_length(self):
        cipher = StreamCipher(KEY)
        assert len(cipher.keystream(0, 13)) == 13

    def test_empty_data(self):
        assert StreamCipher(KEY).apply(0, b"") == b""

    @given(st.binary(max_size=512), st.integers(min_value=0, max_value=2**40))
    def test_roundtrip_property(self, data, nonce):
        cipher = StreamCipher(KEY)
        assert cipher.apply(nonce, cipher.apply(nonce, data)) == data


class TestMac:
    def test_verify_accepts_valid_tag(self):
        tag = compute_mac(KEY, b"payload", context=b"ctx")
        assert len(tag) == MAC_BYTES
        assert verify_mac(KEY, b"payload", tag, context=b"ctx")

    def test_verify_rejects_tampered_payload(self):
        tag = compute_mac(KEY, b"payload")
        assert not verify_mac(KEY, b"Payload", tag)

    def test_verify_rejects_wrong_context(self):
        """Impersonation: the MAC binds the source label."""
        tag = compute_mac(KEY, b"data", context=b"host-a")
        assert not verify_mac(KEY, b"data", tag, context=b"host-evil")

    def test_verify_rejects_wrong_key(self):
        tag = compute_mac(KEY, b"data")
        assert not verify_mac(b"fedcba9876543210", b"data", tag)

    def test_bad_tag_length_raises(self):
        with pytest.raises(SecurityError):
            verify_mac(KEY, b"data", b"short")

    def test_length_prefix_prevents_extension_ambiguity(self):
        """context||data splits must not collide."""
        tag_one = compute_mac(KEY, b"bc", context=b"a")
        tag_two = compute_mac(KEY, b"c", context=b"ab")
        assert tag_one != tag_two

    @given(st.binary(max_size=128), st.binary(max_size=32))
    def test_roundtrip_property(self, data, context):
        tag = compute_mac(KEY, data, context)
        assert verify_mac(KEY, data, tag, context)


class TestProviderApi:
    """The negotiated-provider surface the data path actually uses."""

    def test_seal_open_roundtrips(self):
        provider = resolve_provider("xtea-ct")(KEY)
        plaintext = b"attack at dawn" * 10
        sealed = provider.seal(7, plaintext)
        assert sealed != plaintext
        assert provider.open(7, sealed) == plaintext

    def test_keystream_matches_reference_cipher(self):
        """The scalar provider reuses the StreamCipher keystream, so the
        legacy cipher doubles as the provider oracle."""
        provider = resolve_provider("xtea-ct-ref")(KEY)
        assert provider.keystream(3, 100) == StreamCipher(KEY).keystream(3, 100)

    @given(
        st.binary(max_size=512),
        st.integers(min_value=0, max_value=2**40),
    )
    def test_vectorized_equals_scalar(self, data, nonce):
        fast = resolve_provider("xtea-ct")(KEY)
        oracle = resolve_provider("xtea-ct-ref")(KEY)
        assert fast.seal(nonce, data) == oracle.seal(nonce, data)
        assert fast.mac(data, b"ctx") == oracle.mac(data, b"ctx")


class TestKeyRegistry:
    def test_pairwise_key_symmetric(self):
        registry = KeyRegistry()
        registry.register_host("a")
        registry.register_host("b")
        assert registry.pairwise_key("a", "b") == registry.pairwise_key("b", "a")

    def test_distinct_pairs_distinct_keys(self):
        registry = KeyRegistry()
        for host in ("a", "b", "c"):
            registry.register_host(host)
        assert registry.pairwise_key("a", "b") != registry.pairwise_key("a", "c")

    def test_unenrolled_host_rejected(self):
        registry = KeyRegistry()
        registry.register_host("a")
        with pytest.raises(SecurityError):
            registry.pairwise_key("a", "mallory")

    def test_register_idempotent(self):
        registry = KeyRegistry()
        assert registry.register_host("a") == registry.register_host("a")

    def test_different_realms_differ(self):
        first = KeyRegistry(b"realm-one")
        second = KeyRegistry(b"realm-two")
        for registry in (first, second):
            registry.register_host("a")
            registry.register_host("b")
        assert first.pairwise_key("a", "b") != second.pairwise_key("a", "b")

    def test_session_keys_vary_by_id(self):
        registry = KeyRegistry()
        registry.register_host("a")
        registry.register_host("b")
        assert registry.session_key("a", "b", 1) != registry.session_key("a", "b", 2)

    def test_key_sizes(self):
        registry = KeyRegistry()
        assert len(registry.register_host("a")) == 16
        registry.register_host("b")
        assert len(registry.pairwise_key("a", "b")) == 16
