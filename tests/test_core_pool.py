"""Tests for core/pool.py and the frame-pool enable/disable rules."""

from __future__ import annotations

from repro.core.pool import ObjectPool
from repro.dash.system import DashSystem


class TestObjectPool:
    def test_acquire_from_empty_pool(self):
        assert ObjectPool().acquire() is None

    def test_release_then_acquire_is_lifo(self):
        pool = ObjectPool()
        first, second = object(), object()
        assert pool.release(first)
        assert pool.release(second)
        assert pool.acquire() is second
        assert pool.acquire() is first
        assert pool.acquire() is None

    def test_capacity_bound(self):
        pool = ObjectPool(cap=2)
        assert pool.release(object())
        assert pool.release(object())
        assert not pool.release(object())  # full: falls back to GC
        assert len(pool) == 2

    def test_len_tracks_free_list(self):
        pool = ObjectPool()
        assert len(pool) == 0
        pool.release(object())
        assert len(pool) == 1
        pool.acquire()
        assert len(pool) == 0


def _run_traffic(system, port, messages=10):
    session = system.connect("a", "b", port=port)
    system.run(until=system.now + 2.0)
    rms = session.established.result()
    got = []
    rms.port.set_handler(got.append)
    for _ in range(messages):
        rms.send(b"p" * 200)
        system.run(until=system.now + 0.05)
    assert len(got) == messages
    return got


def _lan(seed=21, observe=False):
    system = DashSystem(seed=seed, observe=observe)
    network = system.add_ethernet(trusted=True)
    system.add_node("a")
    system.add_node("b")
    return system, network


class TestFramePoolGating:
    def test_pooling_recycles_frames_by_default(self):
        system, network = _lan()
        _run_traffic(system, "pool")
        assert network._pool_frames
        assert len(network._frame_pool) > 0

    def test_sniffer_disables_pooling(self):
        system, network = _lan()
        seen = []
        network.add_sniffer(seen.append)
        _run_traffic(system, "sniffed")
        assert not network._pool_frames
        assert len(network._frame_pool) == 0
        assert seen  # the sniffer retained real frames

    def test_sniffer_registered_mid_run_keeps_inflight_frames(self):
        system, network = _lan()
        _run_traffic(system, "before")  # pool warm, frames marked pooled
        assert len(network._frame_pool) > 0
        seen = []
        network.add_sniffer(seen.append)
        # Frames acquired from the pool before the sniffer arrived must
        # not be recycled out from under it once they land.
        _run_traffic(system, "after")
        assert seen
        recycled = {id(frame) for frame in network._frame_pool._free}
        assert all(id(frame) not in recycled for frame in seen)
        for frame in seen:
            assert frame.message is not None

    def test_observability_disables_pooling(self):
        system, network = _lan(observe=True)
        _run_traffic(system, "observed")
        assert len(network._frame_pool) == 0

    def test_fresh_run_rearms_pooling(self):
        system, network = _lan()
        network.add_sniffer(lambda frame: None)
        _run_traffic(system, "spent")
        assert not network._pool_frames
        # Self-disabling is per network instance: a fresh run pools again.
        fresh_system, fresh_network = _lan(seed=22)
        _run_traffic(fresh_system, "fresh")
        assert fresh_network._pool_frames
        assert len(fresh_network._frame_pool) > 0
