"""Tests for the message-path engine: coalesced timers must be
behavior-preserving and leave no state behind at teardown."""

from __future__ import annotations

import pytest

from repro.dash.system import DashSystem
from repro.errors import RkomTimeoutError
from repro.sim.events import TimerGroup
from repro.subtransport.config import StConfig

LEGACY = StConfig(coalesced_timers=False, message_fastpath=False)
TIMERS_ONLY_OFF = StConfig(coalesced_timers=False)


def _lossy_trace(st_config, messages=60, loss=0.05):
    """A fixed-seed lossy run; returns the delivery trace and end time.

    Small bursty payloads exercise piggyback flush deadlines; frame loss
    exercises the ST control-request retransmission timers during
    establishment and stream-session setup.
    """
    system = DashSystem(seed=7, st_config=st_config)
    system.add_ethernet(trusted=True, frame_loss_rate=loss)
    system.add_node("a")
    system.add_node("b")
    session = system.connect("a", "b", port="trace")
    system.run(until=2.0)
    rms = session.established.result()
    deliveries = []
    rms.port.set_handler(
        lambda message: deliveries.append((bytes(message.payload), system.now))
    )
    for index in range(messages):
        rms.send(bytes([index % 251]) * 64)
        if index % 8 == 7:
            # Let queued bundles drain so some flushes happen on the
            # piggyback deadline timer rather than on overflow.
            system.run(until=system.now + 0.05)
    system.run(until=system.now + 2.0)
    return deliveries, system.now


class TestCoalescingEquivalence:
    """Retransmit/ack/piggyback deadlines fire at identical sim times
    with coalesced timers and with one loop timer per pending message."""

    def test_delivery_trace_identical_without_coalescing(self):
        fast, _ = _lossy_trace(None)
        uncoalesced, _ = _lossy_trace(TIMERS_ONLY_OFF)
        assert fast == uncoalesced

    def test_delivery_trace_identical_vs_full_legacy_path(self):
        fast, _ = _lossy_trace(None)
        legacy, _ = _lossy_trace(LEGACY)
        assert fast == legacy

    def test_lossless_trace_identical(self):
        fast, _ = _lossy_trace(None, loss=0.0)
        legacy, _ = _lossy_trace(LEGACY, loss=0.0)
        assert fast == legacy
        assert len(fast) == 60


class TestPeerTeardown:
    def _system(self):
        system = DashSystem(seed=11)
        system.add_ethernet(trusted=True)
        system.add_node("a")
        system.add_node("b")
        return system

    def test_close_peer_leaves_zero_live_timers(self):
        system = self._system()
        session = system.connect("a", "b", port="teardown")
        system.run(until=2.0)
        rms = session.established.result()
        for _ in range(5):
            rms.send(b"x" * 64)  # queued bundles hold flush deadlines
        st = system.nodes["a"].st
        group = st._peers["b"].timers
        assert isinstance(group, TimerGroup)
        st.close_peer("b")
        assert group.live == 0
        assert not group.armed
        assert "b" not in st._peers

    def test_close_peer_mid_establishment_leaves_zero_live_timers(self):
        system = self._system()
        system.connect("a", "b", port="early")
        # Step until a control request is in flight: its retransmission
        # deadline is then live in the peer's group.
        st = system.nodes["a"].st
        while system.now < 2.0:
            system.run(until=system.now + 1e-5)
            peer = st._peers.get("b")
            if peer is not None and peer.pending_replies:
                break
        group = st._peers["b"].timers
        assert isinstance(group, TimerGroup)
        assert group.live > 0
        st.close_peer("b")
        assert group.live == 0
        assert not group.armed

    def test_pending_control_timers_dropped_eagerly_on_reply(self):
        system = self._system()
        session = system.connect("a", "b", port="eager")
        system.run(until=2.0)
        session.established.result()
        st = system.nodes["a"].st
        peer = st._peers["b"]
        # Every answered control request cancelled its retransmission
        # timer, and the group dropped the dead entries eagerly.
        assert not peer.pending_replies
        assert peer.timers.live == 0


class TestRkomTimerGroup:
    def test_reply_cancels_timeout_leaving_no_live_timers(self):
        system = DashSystem(seed=13)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        node_b.rkom.register_handler("echo", lambda payload, sender: payload)
        future = system.connect(node_a, node_b, kind="rkom").call("echo", b"hi")
        system.run(until=2.0)
        assert future.result() == b"hi"
        assert node_a.rkom._timers.live == 0

    def test_unanswered_call_times_out_through_the_group(self):
        from repro.sim.process import Future

        system = DashSystem(seed=13)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        # A handler that never resolves: every timeout fires via the group.
        node_b.rkom.register_handler(
            "hang", lambda payload, sender: Future(system.context.loop)
        )
        future = system.connect(node_a, node_b, kind="rkom").call("hang", b"?")
        system.run(until=60.0)
        with pytest.raises(RkomTimeoutError):
            future.result()
        assert node_a.rkom._timers.fires > 1  # retransmission deadlines
        assert node_a.rkom._timers.live == 0
