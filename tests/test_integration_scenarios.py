"""Large end-to-end scenarios exercising many subsystems together."""

from __future__ import annotations

import pytest

from repro.core.accounting import AccountingLedger
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.transport.layers import SubUserRms, UserRms
from repro.transport.stream import StreamConfig


class TestMultiNetworkCampus:
    """A campus: two LANs joined by a WAN, multihomed gateway-side nodes."""

    def build(self, seed=61):
        system = DashSystem(seed=seed)
        system.add_ethernet(name="lan-cs", trusted=True)
        wan = system.add_internet(name="wan", trusted=True)
        # cs-1 and cs-2 share lan-cs; cs-1 and remote also sit on the WAN.
        cs1 = system.add_node("cs1", network_names=["lan-cs", "wan"])
        cs2 = system.add_node("cs2", network_names=["lan-cs"])
        remote = system.add_node("remote", network_names=["wan"])
        wan.add_router("g")
        wan.add_link("cs1", "g", bandwidth=1e5, propagation_delay=0.005)
        wan.add_link("g", "remote", bandwidth=1e5, propagation_delay=0.005)
        return system, cs1, cs2, remote

    def test_local_traffic_uses_the_lan(self):
        system, cs1, cs2, remote = self.build()
        assert cs1.st.network_for("cs2").name == "lan-cs"

    def test_remote_traffic_uses_the_wan(self):
        system, cs1, cs2, remote = self.build()
        assert cs1.st.network_for("remote").name == "wan"

    def test_concurrent_lan_and_wan_sessions(self):
        system, cs1, cs2, remote = self.build()
        cs2.rkom.register_handler("local", lambda p, s: b"lan:" + p)
        remote.rkom.register_handler("far", lambda p, s: b"wan:" + p)
        local_call = system.connect(cs1, cs2, kind="rkom").call("local", b"x")
        far_call = system.connect(cs1, remote, kind="rkom").call("far", b"y")
        system.run(until=5.0)
        assert local_call.result() == b"lan:x"
        assert far_call.result() == b"wan:y"

    def test_wan_failure_spares_lan_traffic(self):
        system, cs1, cs2, remote = self.build()
        params = RmsParams(capacity=8192, max_message_size=1000,
                           delay_bound=DelayBound(0.3, 1e-4),
                           delay_bound_type=DelayBoundType.BEST_EFFORT)
        lan_future = cs1.st.create_st_rms("cs2", port="l", desired=params,
                                          acceptable=params)
        wan_params = params.with_(max_message_size=500)
        wan_future = cs1.st.create_st_rms("remote", port="w",
                                          desired=wan_params,
                                          acceptable=wan_params)
        system.run(until=5.0)
        lan_rms, wan_rms = lan_future.result(), wan_future.result()
        system.networks["wan"].link("cs1", "g").set_down()
        system.run(until=system.now + 1.0)
        assert not wan_rms.is_open
        assert lan_rms.is_open
        got = []
        lan_rms.port.set_handler(got.append)
        lan_rms.send(b"still local")
        system.run(until=system.now + 1.0)
        assert len(got) == 1


class TestFigureThreeStack:
    """All four RMS levels of Figure 3 composed and measured."""

    def test_delay_grows_monotonically_up_the_stack(self):
        system = DashSystem(seed=62)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        params = RmsParams(
            capacity=32 * 1024,
            max_message_size=4 * 1024,
            delay_bound=DelayBound(0.1, 1e-5),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        future = node_a.st.create_st_rms("b", port="stack", desired=params,
                                         acceptable=params)
        system.run(until=2.0)
        st_rms = future.result()
        subuser = SubUserRms(system.context, st_rms, node_a.host, node_b.host,
                             stage_allowance=3e-3)
        user = UserRms(system.context, subuser, node_a.host, node_b.host,
                       stage_allowance=5e-3)
        got = []
        user.port.set_handler(got.append)
        for index in range(10):
            user.send(bytes([index]) * 500)
        system.run(until=system.now + 3.0)
        assert len(got) == 10
        # Figure-3 structure: each level's bound includes the one below.
        assert (
            st_rms.params.delay_bound.a
            < subuser.params.delay_bound.a
            < user.params.delay_bound.a
        )
        # Measured delay at the user level includes every stage below.
        assert user.stats.mean_delay > st_rms.stats.mean_delay

    def test_user_level_in_order(self):
        system = DashSystem(seed=63)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        node_b = system.add_node("b")
        params = RmsParams(capacity=32 * 1024, max_message_size=4096,
                           delay_bound=DelayBound(0.2, 1e-5),
                           delay_bound_type=DelayBoundType.BEST_EFFORT)
        future = node_a.st.create_st_rms("b", port="ord", desired=params,
                                         acceptable=params)
        system.run(until=2.0)
        user = UserRms(
            system.context,
            SubUserRms(system.context, future.result(), node_a.host,
                       node_b.host),
            node_a.host,
            node_b.host,
        )
        got = []
        user.port.set_handler(lambda m: got.append(m.payload[0]))
        for index in range(20):
            user.send(bytes([index]) * (100 if index % 2 else 2000))
        system.run(until=system.now + 5.0)
        assert got == list(range(20))


class TestAccountingIntegration:
    def test_ledger_charges_real_sessions(self):
        """Section 5's charging model applied to actual ST RMS usage."""
        system = DashSystem(seed=64)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        system.add_node("b")
        ledger = AccountingLedger()
        params_cheap = RmsParams(
            capacity=4096, max_message_size=1000,
            delay_bound=DelayBound(0.5, 1e-4),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        params_dear = RmsParams(
            capacity=32 * 1024, max_message_size=1000,
            delay_bound=DelayBound(0.1, 1e-5),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        sessions = []
        for owner, params in (("alice", params_cheap), ("bob", params_dear)):
            future = node_a.st.create_st_rms(
                "b", port=f"acct-{owner}", desired=params, acceptable=params
            )
            system.run(until=system.now + 2.0)
            rms = future.result()
            ledger.open_rms(owner, rms)
            sessions.append((owner, rms))
        for owner, rms in sessions:
            for index in range(20):
                rms.send(bytes([index]) * 500)
        system.run(until=system.now + 10.0)
        for owner, rms in sessions:
            rms.close()
            ledger.close_rms(rms)
        system.run(until=system.now + 1.0)
        # Both paid setup + bytes + time; the deterministic high-capacity
        # stream is the more expensive one (section 5: parameters map to
        # resources consumed).
        assert ledger.owner_total("alice") > 0
        assert ledger.owner_total("bob") > ledger.owner_total("alice")


class TestMixedBoundTypesOnOneSegment:
    def test_three_types_coexist(self):
        """Open question from section 5: 'How can deterministic,
        statistical and best-effort RMS's be intermixed on the same
        network?' -- here they are, concurrently."""
        from repro.core.params import StatisticalSpec

        system = DashSystem(seed=65)
        system.add_ethernet(trusted=True)
        node_a = system.add_node("a")
        system.add_node("b")
        deterministic = RmsParams(
            capacity=8192, max_message_size=512,
            delay_bound=DelayBound(0.1, 1e-6),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )
        statistical = RmsParams(
            capacity=8192, max_message_size=512,
            delay_bound=DelayBound(0.1, 1e-6),
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=20_000.0,
                                        burstiness=2.0),
        )
        best_effort = RmsParams(capacity=8192, max_message_size=512)
        streams = {}
        for name, params in (("det", deterministic), ("stat", statistical),
                             ("be", best_effort)):
            future = node_a.st.create_st_rms("b", port=name, desired=params,
                                             acceptable=params)
            system.run(until=system.now + 1.0)
            streams[name] = future.result()

        def producer(rms):
            for index in range(50):
                rms.send(bytes([index]) * 200)
                yield 0.01

        for rms in streams.values():
            system.context.spawn(producer(rms))
        system.run(until=system.now + 3.0)
        for name, rms in streams.items():
            assert rms.stats.messages_delivered == 50, name
        # The guaranteed classes kept their bounds.
        assert streams["det"].stats.messages_late == 0
        assert streams["stat"].stats.messages_late == 0
