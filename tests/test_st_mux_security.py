"""Tests for multiplexing rules (4.2) and security planning (2.5/3.1)."""

from __future__ import annotations

import pytest

from repro.core.params import DelayBound, DelayBoundType, RmsParams, StatisticalSpec
from repro.netsim.ethernet import EthernetNetwork
from repro.sim.context import SimContext
from repro.subtransport.mux import mux_violation
from repro.subtransport.security import plan_security


def st_params(**kwargs):
    defaults = dict(
        capacity=10_000,
        max_message_size=1000,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    defaults.update(kwargs)
    return RmsParams(**defaults)


def net_params(**kwargs):
    defaults = dict(
        capacity=50_000,
        max_message_size=1500,
        delay_bound=DelayBound(0.02, 1e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    defaults.update(kwargs)
    return RmsParams(**defaults)


class TestMuxRules:
    def test_legal_multiplexing_passes(self):
        assert mux_violation(st_params(), net_params(), existing_capacity=0) is None

    def test_rule_type_deterministic_needs_guaranteed_network(self):
        """Rule 1: det/stat ST RMS not onto best-effort network RMS."""
        deterministic = st_params(
            delay_bound_type=DelayBoundType.DETERMINISTIC
        )
        violation = mux_violation(deterministic, net_params(), 0)
        assert violation is not None and "best-effort" in violation

    def test_rule_type_satisfied_by_deterministic_network(self):
        deterministic_st = st_params(delay_bound_type=DelayBoundType.DETERMINISTIC)
        deterministic_net = net_params(delay_bound_type=DelayBoundType.DETERMINISTIC)
        assert mux_violation(deterministic_st, deterministic_net, 0) is None

    def test_rule_delay_st_must_cover_network(self):
        """Rule 2: ST delay bound at least the network's."""
        tight_st = st_params(delay_bound=DelayBound(0.01, 1e-6))
        slow_net = net_params(delay_bound=DelayBound(0.05, 1e-6))
        violation = mux_violation(tight_st, slow_net, 0)
        assert violation is not None and "delay" in violation

    def test_rule_capacity_sum(self):
        """Rule 3: sum of ST capacities within network capacity."""
        assert mux_violation(st_params(), net_params(), existing_capacity=45_000)

    def test_capacity_sum_at_boundary_passes(self):
        assert mux_violation(st_params(), net_params(), existing_capacity=40_000) is None

    def test_statistical_load_aggregation(self):
        stat_st = st_params(
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=600.0),
        )
        stat_net = net_params(
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=1000.0),
        )
        assert mux_violation(stat_st, stat_net, 0, existing_load=0.0) is None
        assert mux_violation(stat_st, stat_net, 0, existing_load=500.0) is not None

    def test_mms_may_exceed_network(self):
        """Rule 4: larger ST MMS is legal (fragmentation handles it)."""
        big = st_params(max_message_size=8000)
        assert mux_violation(big, net_params(), 0) is None

    def test_unbounded_st_always_covers_delay(self):
        unbounded = st_params(delay_bound=DelayBound.unbounded())
        assert mux_violation(unbounded, net_params(), 0) is None


class TestSecurityPlanning:
    def make_network(self, **kwargs):
        context = SimContext()
        return EthernetNetwork(context, **kwargs)

    def test_trusted_network_elides_everything(self):
        """Section 2.5 case 3: the network is considered secure."""
        network = self.make_network(trusted=True)
        plan = plan_security(st_params(privacy=True, authentication=True), network)
        assert not plan.encrypt and not plan.mac
        assert plan.network_privacy and plan.network_authentication

    def test_link_encryption_elides_software_crypto(self):
        """Section 2.5 case 2: link-level encryption hardware."""
        network = self.make_network(trusted=False, link_encryption=True)
        plan = plan_security(st_params(privacy=True), network)
        assert not plan.encrypt
        assert plan.network_privacy

    def test_untrusted_network_needs_software_crypto(self):
        """Section 2.5 case 1: encryption in the subtransport layer."""
        network = self.make_network(trusted=False)
        plan = plan_security(st_params(privacy=True, authentication=True), network)
        assert plan.encrypt and plan.mac
        assert not plan.network_privacy

    def test_no_privacy_request_no_mechanism(self):
        """'If a client does not require privacy, no mechanism is used.'"""
        network = self.make_network(trusted=False)
        plan = plan_security(st_params(), network)
        assert not plan.any_software_mechanism

    def test_hardware_checksum_elides_software_checksum(self):
        network = self.make_network(link_checksum=True, bit_error_rate=1e-6)
        plan = plan_security(st_params(), network)
        assert not plan.checksum

    def test_software_checksum_on_raw_noisy_network(self):
        network = self.make_network(link_checksum=False, bit_error_rate=1e-6)
        plan = plan_security(st_params(), network)
        assert plan.checksum

    def test_clean_network_without_checksum_needs_none(self):
        network = self.make_network(link_checksum=False, bit_error_rate=0.0)
        plan = plan_security(st_params(), network)
        assert not plan.checksum
