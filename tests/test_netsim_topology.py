"""Tests for links, impairments, and admission control."""

from __future__ import annotations

import pytest

from repro.core.message import Message
from repro.core.params import DelayBound, DelayBoundType, RmsParams, StatisticalSpec
from repro.errors import AdmissionError, NetworkError, ParameterError
from repro.netsim.admission import AdmissionController
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame
from repro.netsim.topology import Host, Link
from repro.sim.context import SimContext


def make_frame(size=100, deadline=1.0):
    return Frame(
        message=Message(b"x" * size),
        src_host="a",
        dst_host="b",
        rms_id=1,
        deadline=deadline,
    )


class TestFrame:
    def test_size_includes_overhead(self):
        frame = make_frame(size=100)
        assert frame.size == 100 + FRAME_OVERHEAD_BYTES

    def test_corrupt_payload_flips_one_bit(self):
        frame = make_frame(size=10)
        original = frame.message.payload
        frame.corrupt_payload(13)
        assert frame.corrupted
        diffs = [
            index
            for index, (a, b) in enumerate(zip(original, frame.message.payload))
            if a != b
        ]
        assert len(diffs) == 1

    def test_corrupt_empty_payload_sets_flag(self):
        frame = Frame(message=Message(b""), src_host="a", dst_host="b", rms_id=1)
        frame.corrupt_payload(0)
        assert frame.corrupted


class TestImpairmentModel:
    def test_clean_model(self):
        model = ImpairmentModel()
        assert model.is_clean
        assert model.corruption_probability(1000) == 0.0

    def test_corruption_probability_grows_with_size(self):
        model = ImpairmentModel(bit_error_rate=1e-6)
        assert model.corruption_probability(10_000) > model.corruption_probability(100)

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            ImpairmentModel(bit_error_rate=2.0)
        with pytest.raises(ParameterError):
            ImpairmentModel(frame_loss_rate=-0.1)

    def test_loss_sampling_statistics(self):
        context = SimContext(seed=11)
        model = ImpairmentModel(frame_loss_rate=0.3)
        rng = context.rng.stream("test")
        losses = sum(model.loses_frame(rng) for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35

    def test_corruption_actually_corrupts(self):
        context = SimContext(seed=11)
        model = ImpairmentModel(bit_error_rate=1e-3)
        rng = context.rng.stream("test")
        frame = make_frame(size=1000)
        original = frame.message.payload
        corrupted = model.maybe_corrupt(frame, rng)
        assert corrupted  # at 1e-3 ber over 8000+ bits, near certain
        assert frame.message.payload != original


class TestLink:
    def test_transmission_and_propagation_delay(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e6, propagation_delay=0.01)
        arrivals = []
        frame = make_frame(size=1000 - FRAME_OVERHEAD_BYTES)
        link.transmit(frame, deliver=lambda f: arrivals.append(context.now))
        context.run()
        assert arrivals[0] == pytest.approx(1000 / 1e6 + 0.01)

    def test_serialization_queues_frames(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e3, propagation_delay=0.0)
        arrivals = []
        for _ in range(3):
            link.transmit(make_frame(size=100 - FRAME_OVERHEAD_BYTES),
                          deliver=lambda f: arrivals.append(context.now))
        context.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]

    def test_edf_queue_reorders_by_deadline(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e4, propagation_delay=0.0, policy="edf")
        order = []
        # First frame occupies the link; the next two queue and reorder.
        link.transmit(make_frame(deadline=0.0), deliver=lambda f: order.append("busy"))
        link.transmit(make_frame(deadline=9.0), deliver=lambda f: order.append("late"))
        link.transmit(make_frame(deadline=1.0), deliver=lambda f: order.append("early"))
        context.run()
        assert order == ["busy", "early", "late"]

    def test_fifo_queue_keeps_arrival_order(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e4, propagation_delay=0.0, policy="fifo")
        order = []
        link.transmit(make_frame(deadline=0.0), deliver=lambda f: order.append(0))
        link.transmit(make_frame(deadline=9.0), deliver=lambda f: order.append(1))
        link.transmit(make_frame(deadline=1.0), deliver=lambda f: order.append(2))
        context.run()
        assert order == [0, 1, 2]

    def test_buffer_overrun_drops(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e3, propagation_delay=0.0,
                    buffer_bytes=300)
        drops = []
        for _ in range(5):
            link.transmit(
                make_frame(size=100 - FRAME_OVERHEAD_BYTES),
                deliver=lambda f: None,
                on_drop=lambda f, reason: drops.append(reason),
            )
        assert link.stats.frames_dropped_overrun == len(drops) > 0
        context.run()

    def test_overrun_hook_invoked(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e3, propagation_delay=0.0,
                    buffer_bytes=150)
        quenched = []
        link.on_overrun = quenched.append
        link.transmit(make_frame(), deliver=lambda f: None)
        link.transmit(make_frame(), deliver=lambda f: None)
        assert len(quenched) == 1

    def test_link_down_discards_and_notifies(self):
        context = SimContext()
        link = Link(context, "l", bandwidth=1e3, propagation_delay=0.0)
        down = []
        drops = []
        link.on_down.listen(lambda l: down.append(l))
        link.transmit(make_frame(), deliver=lambda f: None,
                      on_drop=lambda f, r: drops.append(r))
        link.transmit(make_frame(), deliver=lambda f: None,
                      on_drop=lambda f, r: drops.append(r))
        link.set_down()
        assert down == [link]
        assert not link.transmit(make_frame(), deliver=lambda f: None,
                                 on_drop=lambda f, r: drops.append(r))
        context.run()
        assert len(drops) >= 2

    def test_invalid_parameters_rejected(self):
        context = SimContext()
        with pytest.raises(NetworkError):
            Link(context, "l", bandwidth=0, propagation_delay=0.0)
        with pytest.raises(NetworkError):
            Link(context, "l", bandwidth=1.0, propagation_delay=-1.0)


class TestHost:
    def test_bind_port_idempotent(self):
        context = SimContext()
        host = Host(context, "h")
        assert host.bind_port("p") is host.bind_port("p")

    def test_cpu_policy_configurable(self):
        context = SimContext()
        host = Host(context, "h", cpu_policy="fifo")
        assert host.cpu.policy == "fifo"


class TestAdmissionController:
    def deterministic_params(self, capacity=10_000, delay=0.1):
        return RmsParams(
            capacity=capacity,
            max_message_size=1000,
            delay_bound=DelayBound(delay, 0.0),
            delay_bound_type=DelayBoundType.DETERMINISTIC,
        )

    def statistical_params(self, load=10_000.0):
        return RmsParams(
            capacity=10_000,
            max_message_size=1000,
            delay_bound=DelayBound(0.1, 0.0),
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(average_load=load, burstiness=2.0),
        )

    def best_effort_params(self):
        return RmsParams(capacity=10_000, max_message_size=1000)

    def test_best_effort_never_rejected(self):
        """Section 2.3: best-effort creation requests are never rejected."""
        pool = AdmissionController(total_bandwidth=1.0, total_buffer_bytes=1)
        for rms_id in range(100):
            pool.admit(rms_id, self.best_effort_params())
        assert pool.admitted == 100

    def test_deterministic_reserves_and_rejects(self):
        # implied bandwidth 10000/0.1 = 100 kB/s, x1.5 phasing guard.
        pool = AdmissionController(total_bandwidth=350_000, total_buffer_bytes=10**6)
        pool.admit(1, self.deterministic_params())
        pool.admit(2, self.deterministic_params())
        with pytest.raises(AdmissionError):
            pool.admit(3, self.deterministic_params())
        assert pool.rejected == 1

    def test_deterministic_buffer_limit(self):
        pool = AdmissionController(total_bandwidth=1e9, total_buffer_bytes=15_000)
        pool.admit(1, self.deterministic_params())
        with pytest.raises(AdmissionError):
            pool.admit(2, self.deterministic_params())

    def test_release_frees_resources(self):
        pool = AdmissionController(total_bandwidth=200_000, total_buffer_bytes=10**6)
        pool.admit(1, self.deterministic_params())
        with pytest.raises(AdmissionError):
            pool.admit(2, self.deterministic_params())
        pool.release(1)
        pool.admit(2, self.deterministic_params())

    def test_release_unknown_is_idempotent(self):
        pool = AdmissionController(total_bandwidth=1.0, total_buffer_bytes=1)
        pool.release(42)

    def test_statistical_admits_more_than_deterministic(self):
        """Effective bandwidth sits between average and peak, so more
        statistical streams fit the same pool than deterministic ones."""
        bandwidth = 200_000.0
        det_pool = AdmissionController(bandwidth, 10**7)
        stat_pool = AdmissionController(bandwidth, 10**7)
        det_count = 0
        while True:
            try:
                det_pool.admit(det_count, self.deterministic_params())
                det_count += 1
            except AdmissionError:
                break
        stat_count = 0
        while True:
            try:
                stat_pool.admit(stat_count, self.statistical_params())
                stat_count += 1
            except AdmissionError:
                break
        assert stat_count > det_count

    def test_duplicate_admission_rejected(self):
        pool = AdmissionController(total_bandwidth=1e6, total_buffer_bytes=10**6)
        pool.admit(1, self.best_effort_params())
        with pytest.raises(AdmissionError):
            pool.admit(1, self.best_effort_params())

    def test_statistical_needs_spec(self):
        pool = AdmissionController(total_bandwidth=1e6, total_buffer_bytes=10**6)
        broken = self.deterministic_params()
        with pytest.raises(ParameterError):
            pool.statistical_demand(broken)


class TestMeshBuilders:
    """The scale-out mesh builders: counts, connectivity, callbacks."""

    @staticmethod
    def _internet():
        from repro.netsim.internet import InternetNetwork
        context = SimContext(seed=3)
        return context, InternetNetwork(context, trusted=True)

    def test_grid_counts_and_connectivity(self):
        from repro.netsim.topology import build_grid
        context, network = self._internet()
        mesh = build_grid(network, 3, 4, hosts_per_router=2)
        assert len(mesh.routers) == 12
        assert len(mesh.hosts) == 24
        assert set(mesh.host_router) == set(mesh.hosts)
        # Opposite grid corners are connected host-to-host.
        assert network.can_reach(mesh.hosts[0], mesh.hosts[-1])
        route = network.route_between(mesh.hosts[0], mesh.hosts[-1])
        assert route[0] == mesh.hosts[0] and route[-1] == mesh.hosts[-1]
        # Interior hops are all routers.
        assert all(node in set(mesh.routers) for node in route[1:-1])

    def test_star_routes_cross_the_core(self):
        from repro.netsim.topology import build_star_of_routers
        context, network = self._internet()
        mesh = build_star_of_routers(network, arms=4, hosts_per_arm=2)
        assert len(mesh.routers) == 5  # core + arms
        assert len(mesh.hosts) == 8
        cross = network.route_between(mesh.hosts[0], mesh.hosts[-1])
        assert "core" in cross

    def test_two_tier_routes_cross_one_spine(self):
        from repro.netsim.topology import build_two_tier
        context, network = self._internet()
        mesh = build_two_tier(network, spines=3, leaves=4, hosts_per_leaf=2)
        assert len(mesh.routers) == 7
        assert len(mesh.hosts) == 8
        cross = network.route_between(mesh.hosts[0], mesh.hosts[-1])
        spines = {name for name in mesh.routers if name.startswith("spine")}
        assert len([node for node in cross if node in spines]) == 1

    def test_mesh_spec_reaches_links(self):
        from repro.netsim.topology import MeshSpec, build_grid
        context, network = self._internet()
        spec = MeshSpec(trunk_bandwidth=12345.0, access_bandwidth=54321.0)
        mesh = build_grid(network, 2, 2, spec=spec)
        assert network.link("g0x0", "g0x1").bandwidth == 12345.0
        host = mesh.hosts[0]
        assert network.link(host, mesh.host_router[host]).bandwidth == 54321.0

    def test_attach_host_callback_owns_host_creation(self):
        from repro.netsim.topology import build_grid
        context, network = self._internet()
        created = []

        def attach(net, name):
            label = f"custom-{name}"
            net.attach(Host(context, label))
            created.append(label)
            return label

        mesh = build_grid(network, 2, 2, attach_host=attach)
        assert mesh.hosts == created
        assert all(name.startswith("custom-h") for name in mesh.hosts)

    def test_degenerate_shapes_rejected(self):
        from repro.netsim.topology import (
            build_grid, build_star_of_routers, build_two_tier,
        )
        context, network = self._internet()
        with pytest.raises(ValueError, match="grid rows"):
            build_grid(network, 0, 3)
        # A 1xN "grid" is a chain, not a mesh: rejected loudly rather
        # than built silently.
        with pytest.raises(ValueError, match="chain"):
            build_grid(network, 1, 5)
        with pytest.raises(ValueError, match="chain"):
            build_grid(network, 3, 1)
        with pytest.raises(ValueError, match="hosts_per_router"):
            build_grid(network, 2, 2, hosts_per_router=-1)
        with pytest.raises(ValueError, match="star arms"):
            build_star_of_routers(network, arms=0)
        with pytest.raises(ValueError, match="star arms"):
            build_star_of_routers(network, arms=1)
        with pytest.raises(ValueError, match="spines"):
            build_two_tier(network, spines=0, leaves=2)
        # A single-spine fabric has no equal-cost diversity at all.
        with pytest.raises(ValueError, match="single spine"):
            build_two_tier(network, spines=1, leaves=3)
        with pytest.raises(ValueError, match="leaves"):
            build_two_tier(network, spines=2, leaves=1)
        with pytest.raises(ValueError, match="integer"):
            build_grid(network, 2.0, 2)
        # Nothing was half-built by the rejected calls.
        assert not network.routers

    def test_dash_system_add_mesh(self):
        from repro.dash.system import DashSystem
        system = DashSystem(seed=11)
        network, mesh = system.add_mesh("grid", rows=2, cols=2,
                                        hosts_per_router=1)
        assert set(mesh.hosts) <= set(system.nodes)
        session = system.connect(mesh.hosts[0], mesh.hosts[-1], port="mesh")
        system.run(until=system.now + 2.0)
        rms = session.established.result()
        got = []
        rms.port.set_handler(lambda message: got.append(message))
        rms.send(b"mesh" * 20)
        system.run(until=system.now + 2.0)
        assert len(got) == 1
        with pytest.raises(NetworkError):
            system.add_mesh("moebius")
