"""Security-provider engine tests (bench E21's correctness side).

The vectorized ``"xtea-ct"`` provider must be byte-identical to the
scalar ``"xtea-ct-ref"`` oracle on every output -- keystream,
ciphertext, MAC tag -- for random keys, nonces, offsets, and lengths
(including empty and non-multiple-of-8 payloads).  Seeded-random
property style, matching the repo's other property suites (no external
property-testing dependency).
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.core.params import RmsParams
from repro.dash._deprecation import reset_deprecation_warnings
from repro.dash.system import DashSystem
from repro.errors import ParameterError, SecurityError
from repro.security.providers import (
    MAC_BYTES,
    HardwareProvider,
    NullProvider,
    XteaScalarProvider,
    XteaVectorProvider,
    provider_names,
    register_provider,
    resolve_provider,
)
from repro.subtransport.config import StConfig
from repro.subtransport.security import SecurityContext, plan_security

SEED = 20260808

KEY = bytes(range(16))


def _rng():
    return random.Random(SEED)


def _random_cases(rng, count=40, max_len=1200):
    """(key, nonce, length) triples covering the interesting size axes."""
    lengths = [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 511, 512, 513]
    cases = []
    for index in range(count):
        key = rng.randbytes(16)
        nonce = rng.getrandbits(64)
        length = (
            lengths[index % len(lengths)]
            if index < len(lengths) * 2
            else rng.randrange(0, max_len)
        )
        cases.append((key, nonce, length))
    return cases


class TestVectorScalarEquivalence:
    """The tentpole invariant: same bytes out of both engines."""

    def test_keystream_identical(self):
        rng = _rng()
        for key, nonce, length in _random_cases(rng):
            scalar = XteaScalarProvider(key)
            vector = XteaVectorProvider(key)
            assert vector.keystream(nonce, length) == scalar.keystream(
                nonce, length
            ), (nonce, length)

    def test_keystream_identical_at_offsets(self):
        rng = _rng()
        for key, nonce, _ in _random_cases(rng, count=12):
            scalar = XteaScalarProvider(key)
            vector = XteaVectorProvider(key)
            near_limit = (1 << 32) * 8 - 16
            for offset in (0, 1, 7, 8, 9, 64, 1000, near_limit):
                # Stay inside the per-nonce counter span at the limit.
                length = 16 if offset == near_limit else rng.randrange(1, 200)
                assert vector.keystream(
                    nonce, length, offset=offset
                ) == scalar.keystream(nonce, length, offset=offset)

    def test_seal_open_roundtrip_and_equivalence(self):
        rng = _rng()
        for key, nonce, length in _random_cases(rng):
            payload = rng.randbytes(length)
            scalar = XteaScalarProvider(key)
            vector = XteaVectorProvider(key)
            sealed = vector.seal(nonce, payload)
            assert sealed == scalar.seal(nonce, payload)
            assert vector.open(nonce, sealed) == payload
            assert scalar.open(nonce, sealed) == payload

    def test_seal_accepts_memoryview(self):
        rng = _rng()
        payload = rng.randbytes(777)
        view = memoryview(payload)[100:600]
        vector = XteaVectorProvider(KEY)
        scalar = XteaScalarProvider(KEY)
        assert vector.seal(9, view) == scalar.seal(9, bytes(view))
        assert vector.mac(view, b"ctx") == scalar.mac(bytes(view), b"ctx")

    def test_mac_identical(self):
        rng = _rng()
        for key, _, length in _random_cases(rng):
            payload = rng.randbytes(length)
            context = rng.randbytes(rng.randrange(0, 24))
            scalar = XteaScalarProvider(key)
            vector = XteaVectorProvider(key)
            tag = vector.mac(payload, context)
            assert tag == scalar.mac(payload, context)
            assert len(tag) == MAC_BYTES
            assert vector.verify(payload, tag, context)
            assert scalar.verify(payload, tag, context)

    def test_mac_binds_context_and_data(self):
        vector = XteaVectorProvider(KEY)
        tag = vector.mac(b"payload", b"ctx")
        assert not vector.verify(b"payload", tag, b"ctx2")
        assert not vector.verify(b"payloae", tag, b"ctx")
        with pytest.raises(SecurityError):
            vector.verify(b"payload", tag[:-1], b"ctx")

    def test_chunked_seal_matches_whole_stream(self):
        """The ``offset=`` continuation API: sealing in chunks at the
        right offsets equals sealing the whole buffer at once (this is
        what the keystream tail cache accelerates)."""
        rng = _rng()
        payload = rng.randbytes(3000)
        vector = XteaVectorProvider(KEY)
        whole = vector.seal(5, payload)
        pieces = []
        offset = 0
        while offset < len(payload):
            step = rng.randrange(1, 400)
            chunk = payload[offset : offset + step]
            pieces.append(vector.seal(5, chunk, offset=offset))
            offset += len(chunk)
        assert b"".join(pieces) == whole

    def test_tail_cache_does_not_leak_between_nonces(self):
        vector = XteaVectorProvider(KEY)
        scalar = XteaScalarProvider(KEY)
        # Interleave nonces and odd lengths so cached tails from one
        # stream would corrupt another if keying were wrong.
        for nonce, length in [(1, 5), (2, 5), (1, 11), (2, 3), (1, 40)]:
            assert vector.keystream(nonce, length) == scalar.keystream(
                nonce, length
            )


class TestCounterWraparound:
    """Overflowing the 64-bit counter block must raise, not wrap."""

    def test_keystream_overflow_raises(self):
        limit_bytes = (1 << 32) * 8
        for provider in (XteaScalarProvider(KEY), XteaVectorProvider(KEY)):
            with pytest.raises(SecurityError):
                provider.keystream(0, limit_bytes + 8)
            with pytest.raises(SecurityError):
                provider.keystream(0, 16, offset=limit_bytes - 8)

    def test_keystream_at_the_limit_is_fine(self):
        vector = XteaVectorProvider(KEY)
        scalar = XteaScalarProvider(KEY)
        offset = (1 << 32) * 8 - 8
        assert vector.keystream(3, 8, offset=offset) == scalar.keystream(
            3, 8, offset=offset
        )

    def test_legacy_streamcipher_guard(self):
        from repro.security.cipher import StreamCipher

        with pytest.raises(SecurityError):
            StreamCipher(KEY).keystream(0, (1 << 32) * 8 + 8)


class TestRegistry:
    def test_known_names(self):
        names = provider_names()
        for name in ("xtea-ct", "xtea-ct-ref", "null", "hw"):
            assert name in names

    def test_resolve_unknown_raises(self):
        with pytest.raises(SecurityError, match="unknown security provider"):
            resolve_provider("rot13")

    def test_register_shadows(self):
        class Custom(NullProvider):
            name = "test-custom"

        register_provider("test-custom", Custom)
        try:
            assert resolve_provider("test-custom") is Custom
        finally:
            import repro.security.providers as mod

            del mod._REGISTRY["test-custom"]

    def test_null_and_hw_providers(self):
        for factory in (NullProvider, HardwareProvider):
            provider = factory(KEY)
            payload = b"plaintext stays plaintext"
            assert provider.seal(1, payload) == payload
            assert provider.open(1, payload) == payload
            tag = provider.mac(payload, b"ctx")
            assert len(tag) == MAC_BYTES
            assert provider.verify(payload, tag, b"ctx")
        assert HardwareProvider(KEY).hardware
        assert not NullProvider(KEY).hardware


class TestNegotiation:
    """StConfig -> plan_security -> SecurityContext provider binding."""

    def test_config_rejects_unknown_provider(self):
        with pytest.raises(ParameterError, match="unknown security provider"):
            StConfig(security_provider="rot13")

    def test_plan_records_provider_and_factory(self):
        system = DashSystem(seed=1)
        network = system.add_ethernet(trusted=False)
        params = RmsParams(privacy=True, authentication=True)
        plan = plan_security(params, network, "xtea-ct-ref")
        assert plan.provider == "xtea-ct-ref"
        assert plan.factory is XteaScalarProvider
        context = SecurityContext(plan, KEY, "a", 7)
        assert isinstance(context.provider, XteaScalarProvider)

    def test_context_resolves_handbuilt_plan(self):
        from repro.subtransport.security import SecurityPlan

        plan = SecurityPlan(
            encrypt=True, mac=False, checksum=False,
            network_privacy=False, network_authentication=False,
            provider="xtea-ct",
        )
        context = SecurityContext(plan, KEY, "a", 7)
        assert isinstance(context.provider, XteaVectorProvider)

    def test_context_transform_roundtrip(self):
        system = DashSystem(seed=1)
        network = system.add_ethernet(trusted=False)
        params = RmsParams(privacy=True, authentication=True)
        contexts = [
            SecurityContext(plan_security(params, network, name), KEY, "a", 7)
            for name in ("xtea-ct", "xtea-ct-ref")
        ]
        payload = b"x" * 100
        wires = [c.protect(3, payload) for c in contexts]
        assert wires[0] == wires[1]
        for context in contexts:
            data, reason = context.unprotect(context.flags, 3, wires[0])
            assert reason is None
            assert data == payload


def _secured_trace(provider, messages=40, loss=0.04):
    """Fixed-seed lossy run over an *untrusted* ethernet with privacy and
    authentication requested, so every component is sealed and tagged."""
    system = DashSystem(
        seed=11, st_config=StConfig(security_provider=provider)
    )
    system.add_ethernet(trusted=True, frame_loss_rate=loss)
    system.add_ethernet(
        name="ether1", trusted=False, frame_loss_rate=loss
    )
    system.add_node("a")
    system.add_node("b")
    params = RmsParams(privacy=True, authentication=True)
    session = system.connect("a", "b", port="sec", desired=params)
    system.run(until=2.0)
    rms = session.established.result()
    deliveries = []
    rms.port.set_handler(
        lambda message: deliveries.append((bytes(message.payload), system.now))
    )
    rng = random.Random(99)
    for index in range(messages):
        rms.send(rng.randbytes(200) + bytes([index]))
        if index % 8 == 7:
            system.run(until=system.now + 0.05)
    system.run(until=system.now + 2.0)
    return deliveries


class TestSecuredTraceEquivalence:
    """Swapping the engine must not change *anything* observable: same
    deliveries at the same simulated times on a lossy secured channel."""

    def test_vectorized_matches_scalar_oracle(self):
        fast = _secured_trace("xtea-ct")
        oracle = _secured_trace("xtea-ct-ref")
        assert len(fast) > 0
        assert fast == oracle


class TestDeprecationShims:
    def test_package_primitive_import_warns_once(self):
        import repro.security as package

        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cipher_cls = package.StreamCipher
            package.StreamCipher  # second access: no second warning
        from repro.security.cipher import StreamCipher

        assert cipher_cls is StreamCipher
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "provider" in str(deprecations[0].message)

    def test_all_shimmed_names_resolve(self):
        import repro.security as package

        reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro.security.cipher import xtea_encrypt_block
            from repro.security.mac import compute_mac, verify_mac

            assert package.xtea_encrypt_block is xtea_encrypt_block
            assert package.compute_mac is compute_mac
            assert package.verify_mac is verify_mac

    def test_unknown_attribute_raises(self):
        import repro.security as package

        with pytest.raises(AttributeError):
            package.does_not_exist
