"""Tests for the plain-text table renderer and throughput meter."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import ThroughputMeter
from repro.metrics.report import Table, format_table


class TestFormatTable:
    def test_float_rendering(self):
        text = format_table(
            ["value"],
            [[0.0], [0.12345], [1.5], [12345.6]],
        )
        lines = text.splitlines()
        assert lines[2].strip() == "0"
        assert lines[3].strip() == "0.1235"  # 4 decimals below 1
        assert lines[4].strip() == "1.50"  # 2 decimals in [1, 1000)
        assert lines[5].strip() == "12,346"  # thousands separator above

    def test_none_renders_as_text(self):
        text = format_table(["a", "b"], [[None, 1]])
        assert "None" in text

    def test_alignment_and_rule(self):
        text = format_table(
            ["name", "count"],
            [["long-name-here", 1], ["x", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        header, rule = lines[1], lines[2]
        # The rule under the header matches each column's width.
        assert len(rule) == len(header.rstrip()) or len(rule) >= len("name")
        widths = [len(part) for part in rule.split("  ")]
        assert widths[0] == len("long-name-here")
        assert widths[1] == len("count")
        # Cells are left-justified to the column width.
        assert lines[3].startswith("long-name-here  1")
        assert lines[4].startswith("x" + " " * (widths[0] - 1) + "  22")

    def test_row_wider_than_headers_tolerated(self):
        text = format_table(["only"], [["a", "extra"]])
        assert "a" in text


class TestTable:
    def test_incremental_build_and_str(self):
        table = Table("title", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        text = str(table)
        assert text.splitlines()[0] == "title"
        assert "2.50" in text
        assert "None" in text

    def test_to_payload_round_trip(self):
        table = Table("t", ["h1", "h2"])
        table.add_row(1, 0.5)
        payload = table.to_payload()
        assert payload == {
            "title": "t",
            "headers": ["h1", "h2"],
            "rows": [[1, 0.5]],
        }


class TestThroughputMeter:
    def test_normal_window(self):
        meter = ThroughputMeter(start_time=0.0)
        meter.record(1000, now=2.0)
        assert meter.throughput() == pytest.approx(500.0)

    def test_zero_width_window_uses_epsilon(self):
        """Bytes recorded at the start instant must not report 0 B/s."""
        meter = ThroughputMeter(start_time=1.0)
        meter.record(500, now=1.0)
        rate = meter.throughput()
        assert rate > 0.0
        assert rate == pytest.approx(500 / ThroughputMeter.MIN_WINDOW)

    def test_no_bytes_is_zero(self):
        meter = ThroughputMeter(start_time=0.0)
        assert meter.throughput() == 0.0
        assert meter.throughput(end_time=5.0) == 0.0
