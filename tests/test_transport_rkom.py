"""Integration tests for RKOM (paper section 3.3)."""

from __future__ import annotations

import pytest

from repro.errors import RkomTimeoutError
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.topology import Host
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.sim.process import Future
from repro.subtransport.st import SubtransportLayer
from repro.transport.rkom import HIGH_PORT, LOW_PORT, RkomConfig, RkomService


def build(seed=42, **net_kwargs):
    context = SimContext(seed=seed)
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    network = EthernetNetwork(context, **defaults)
    host_a, host_b = Host(context, "a"), Host(context, "b")
    network.attach(host_a)
    network.attach(host_b)
    keys = KeyRegistry()
    st_a = SubtransportLayer(context, host_a, [network], key_registry=keys)
    st_b = SubtransportLayer(context, host_b, [network], key_registry=keys)
    rkom_a = RkomService(context, st_a)
    rkom_b = RkomService(context, st_b)
    return context, network, rkom_a, rkom_b


class TestRkomBasics:
    def test_call_and_reply(self):
        context, _net, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: b"echo:" + payload)
        future = rkom_a.call("b", "echo", b"hello")
        context.run(until=1.0)
        assert future.result() == b"echo:hello"
        assert rkom_a.stats.replies == 1

    def test_channel_is_four_st_rms(self):
        """Section 3.3: an RKOM channel has a low- and a high-delay RMS
        in each direction."""
        context, _net, rkom_a, rkom_b = build()
        rkom_b.register_handler("noop", lambda payload, src: b"")
        future = rkom_a.call("b", "noop")
        context.run(until=1.0)
        future.result()
        channel_ab = rkom_a._channels["b"]
        channel_ba = rkom_b._channels["a"]
        assert channel_ab.low is not None and channel_ab.high is not None
        assert channel_ba.low is not None and channel_ba.high is not None
        # The low-delay RMS has the tighter bound.
        assert (
            channel_ab.low.params.delay_bound.a
            < channel_ab.high.params.delay_bound.a
        )

    def test_unknown_op_returns_empty(self):
        context, _net, rkom_a, rkom_b = build()
        future = rkom_a.call("b", "does-not-exist", b"x")
        context.run(until=1.0)
        assert future.result() == b""

    def test_handler_source_host_passed(self):
        context, _net, rkom_a, rkom_b = build()
        sources = []

        def handler(payload, src):
            sources.append(src)
            return b""

        rkom_b.register_handler("who", handler)
        rkom_a.call("b", "who")
        context.run(until=1.0)
        assert sources == ["a"]

    def test_async_handler_future_reply(self):
        context, _net, rkom_a, rkom_b = build()

        def handler(payload, src):
            future = Future(context.loop)
            context.loop.call_after(0.05, future.set_result, b"deferred")
            return future

        rkom_b.register_handler("slow", handler)
        call = rkom_a.call("b", "slow")
        context.run(until=1.0)
        assert call.result() == b"deferred"

    def test_concurrent_calls(self):
        context, _net, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: payload)
        futures = [rkom_a.call("b", "echo", bytes([i])) for i in range(10)]
        context.run(until=2.0)
        assert [f.result() for f in futures] == [bytes([i]) for i in range(10)]

    def test_channel_reused_across_calls(self):
        context, network, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: payload)
        rkom_a.call("b", "echo", b"1")
        context.run(until=1.0)
        setups = network.setup_count
        rkom_a.call("b", "echo", b"2")
        context.run(until=2.0)
        assert network.setup_count == setups  # nothing new created

    def test_second_call_is_faster(self):
        """Channel establishment is amortized over later calls."""
        context, _net, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: payload)
        latencies = []

        def measure():
            for tag in (b"1", b"2"):
                begin = context.now
                yield rkom_a.call("b", "echo", tag)
                latencies.append(context.now - begin)

        context.spawn(measure())
        context.run(until=10.0)
        assert len(latencies) == 2
        # The first call pays control-channel + channel setup; the second
        # only the warm round trip (which includes piggyback queueing).
        assert latencies[1] < latencies[0]


class TestRkomReliability:
    def _warm(self, context, rkom_a, rkom_b):
        """Establish both channels before impairments kick in."""
        rkom_b.register_handler("echo", lambda payload, src: payload)
        warm = rkom_a.call("b", "echo", b"warm")
        context.run(until=context.now + 5.0)
        assert warm.result() == b"warm"

    def test_retransmission_recovers_lost_request(self):
        context, network, rkom_a, rkom_b = build(seed=7)
        self._warm(context, rkom_a, rkom_b)
        network.segment.impairment.frame_loss_rate = 0.25
        futures = [rkom_a.call("b", "echo", bytes([i]), timeout=0.1) for i in range(10)]
        context.run(until=context.now + 30.0)
        completed = [f for f in futures if f.done and not f.failed]
        assert len(completed) == 10
        assert rkom_a.stats.retransmissions > 0

    def test_duplicate_requests_executed_once(self):
        """The reply cache gives at-most-once execution."""
        context, network, rkom_a, rkom_b = build(seed=11)
        self._warm(context, rkom_a, rkom_b)
        network.segment.impairment.frame_loss_rate = 0.3
        executions = []

        def handler(payload, src):
            executions.append(payload)
            return payload

        rkom_b.register_handler("once", handler)
        futures = [rkom_a.call("b", "once", bytes([i]), timeout=0.1) for i in range(8)]
        context.run(until=context.now + 60.0)
        done = [f for f in futures if f.done and not f.failed]
        assert len(done) == 8
        # Each distinct request ran exactly once despite retransmissions.
        assert len(executions) == 8

    def test_timeout_when_peer_unreachable(self):
        context, network, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: payload)
        # Warm the channel first.
        warm = rkom_a.call("b", "echo", b"warm")
        context.run(until=1.0)
        warm.result()
        # Now make the network eat everything.
        network.segment.impairment.frame_loss_rate = 1.0
        config_timeout = rkom_a.config
        future = rkom_a.call("b", "echo", b"lost", timeout=0.05)
        context.run(until=60.0)
        assert future.failed
        with pytest.raises(RkomTimeoutError):
            future.result()
        assert rkom_a.stats.timeouts == 1

    def test_ack_clears_reply_cache(self):
        context, _net, rkom_a, rkom_b = build()
        rkom_b.register_handler("echo", lambda payload, src: payload)
        future = rkom_a.call("b", "echo", b"x")
        context.run(until=2.0)
        future.result()
        assert len(rkom_b._served) == 0  # ACK purged the cached reply
