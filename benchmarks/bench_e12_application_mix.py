"""E12 -- Section 2.5 / Figure 3: per-class RMS parameters end to end.

Claim: choosing RMS parameters per application class -- statistical
low-delay for voice, low-capacity events plus higher-capacity graphics
for the window system, high-capacity high-delay for bulk, low-delay for
request/reply -- lets every class meet its needs *simultaneously* on one
network, because providers schedule by the declared deadlines.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.apps.media import VoiceCall, voice_rms_params
from repro.apps.rpcload import RpcWorkload
from repro.apps.window import (
    WindowSystemWorkload,
    event_rms_params,
    graphics_rms_params,
)
from repro.core.params import DelayBound, DelayBoundType, RmsParams

DURATION = 4.0


def run_mix(seed: int = 13):
    system = build_lan(seed=seed, nodes=("a", "b"))
    node_a, node_b = system.nodes["a"], system.nodes["b"]

    # Voice: statistical low-delay RMS (section 2.5).
    voice_rms = open_st_rms(system, "a", "b", params=voice_rms_params(),
                            port="voice")
    voice = VoiceCall(system.context, voice_rms, duration=DURATION)

    # Window system: small events up, graphics down.
    events = open_st_rms(system, "a", "b", params=event_rms_params(),
                         port="events")
    graphics = open_st_rms(system, "b", "a", params=graphics_rms_params(),
                           port="graphics")
    window = WindowSystemWorkload(system.context, events, graphics,
                                  duration=DURATION)

    # Bulk: high capacity, high delay; drives the segment hard.
    bulk_params = RmsParams(
        capacity=96 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(1.0, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    bulk_rms = open_st_rms(system, "a", "b", params=bulk_params, port="bulk")
    bulk_bytes = {"n": 0}
    bulk_rms.port.set_handler(
        lambda m: bulk_bytes.__setitem__("n", bulk_bytes["n"] + m.size)
    )

    def bulk_producer():
        while True:
            bulk_rms.send(b"\xAA" * 3000)
            yield 0.004  # ~750 kB/s offered

    bulk_process = system.context.spawn(bulk_producer())

    # Request/reply via RKOM.
    node_b.rkom.register_handler("echo", lambda payload, src: payload)
    rpc = RpcWorkload(system.context, node_a.rkom, "b", clients=1,
                      calls_per_client=60, think_time=0.05)

    start = system.now
    system.run(until=start + DURATION + 2.0)
    bulk_process.stop()
    system.run(until=system.now + 1.0)

    voice_report = voice.report()
    window_report = window.report()
    rpc_report = rpc.report()
    return {
        "voice": voice_report,
        "window": window_report,
        "rpc": rpc_report,
        "bulk_goodput_kBps": bulk_bytes["n"] / DURATION / 1e3,
    }


def render(result) -> Table:
    voice = result["voice"]
    window = result["window"]
    rpc = result["rpc"]
    table = Table(
        "E12: concurrent application mix on one Ethernet (section 2.5)",
        ["class", "metric", "value", "target"],
    )
    table.add_row("voice", "usable fraction", voice.usable_fraction, "> 0.95")
    table.add_row("voice", "p95 delay (ms)", voice.delay.p95 * 1e3, "< 80")
    table.add_row("voice", "jitter (ms)", voice.jitter * 1e3, "small")
    table.add_row("window", "RTTs over 100 ms", window.round_trips_over_budget,
                  "~0")
    table.add_row("window", "event p95 (ms)", window.event_delay.p95 * 1e3,
                  "< 50")
    table.add_row("rpc", "completed", rpc.calls_completed, "60")
    table.add_row("rpc", "p95 RTT (ms)", rpc.rtt.p95 * 1e3, "< 50")
    table.add_row("bulk", "goodput (kB/s)", result["bulk_goodput_kBps"],
                  "> 300")
    return table


def run_experiment():
    return run_mix()


def test_e12_application_mix(run_once):
    result = run_once(run_experiment)
    report("e12_application_mix", render(result))
    voice = result["voice"]
    window = result["window"]
    rpc = result["rpc"]
    # Voice plays out: nearly every packet on time.
    assert voice.usable_fraction > 0.95
    assert voice.delay.p95 < 0.08
    # Interactive round trips stay within human perception budget.
    assert window.round_trips_over_budget <= 0.05 * window.events_sent
    # RPC completes with modest tails despite the bulk load.
    assert rpc.calls_completed == 60
    assert rpc.rtt.p95 < 0.05
    # Bulk still gets most of the leftover bandwidth.
    assert result["bulk_goodput_kBps"] > 300


run = make_run("e12_application_mix", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
