"""E13 -- Section 3.2: the ST fast-acknowledgement service.

Claim: "the subtransport layer provides a 'fast acknowledgement' service
to reduce response time and RMS establishment overhead."  A reliable
record stream that uses fast acks needs no reverse ack RMS (fewer
network RMS setups) and sees acknowledgements sooner, shortening the
time until the sender knows everything arrived.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, report
from repro.transport.flowcontrol import FlowControlMode
from repro.transport.stream import StreamConfig, open_stream

RECORDS = 40
RECORD_SIZE = 512


def run_case(use_fast_ack: bool, seed: int = 14):
    system = build_lan(seed=seed)
    network = system.networks["ether0"]
    config = StreamConfig(
        reliable=True,
        capacity_mode="ack",
        flow_control=FlowControlMode.CAPACITY_ONLY,
        use_fast_ack=use_fast_ack,
        record_size=RECORD_SIZE if use_fast_ack else None,
        data_capacity=16 * 1024,
        ack_every=1,
    )
    future = open_stream(system.context, system.nodes["a"].st,
                         system.nodes["b"].st, config)
    system.run(until=system.now + 3.0)
    session = future.result()
    setups_before_traffic = network.setup_count

    consumed = []

    def consumer():
        for _ in range(RECORDS):
            message = yield session.receive()
            consumed.append(message)

    system.context.spawn(consumer())
    start = system.now
    for index in range(RECORDS):
        session.send(bytes([index % 256]) * RECORD_SIZE)
    all_acked_at = {"t": None}

    def watcher():
        while not session.all_acked:
            yield 0.001
        all_acked_at["t"] = system.now

    system.context.spawn(watcher())
    system.run(until=system.now + 20.0)
    return {
        "mode": "fast ack" if use_fast_ack else "ack RMS",
        "st_rms_used": 1 if use_fast_ack else 2,
        "network_setups": setups_before_traffic,
        "consumed": len(consumed),
        "all_acked_ms": ((all_acked_at["t"] or system.now) - start) * 1e3,
    }


def run_experiment():
    return [run_case(False), run_case(True)]


def render(rows) -> Table:
    table = Table(
        f"E13: reliable {RECORD_SIZE}B record stream, reverse ack RMS vs "
        "ST fast acknowledgements (section 3.2)",
        ["mode", "ST RMSs", "net setups at open", "records",
         "all-acked (ms)"],
    )
    for row in rows:
        table.add_row(row["mode"], row["st_rms_used"], row["network_setups"],
                      row["consumed"], row["all_acked_ms"])
    return table


def test_e13_fast_ack(run_once):
    rows = run_once(run_experiment)
    report("e13_fast_ack", render(rows))
    ack_rms, fast = rows
    assert ack_rms["consumed"] == fast["consumed"] == RECORDS
    # Fast acks eliminate the reverse stream and its establishment work.
    assert fast["st_rms_used"] < ack_rms["st_rms_used"]
    assert fast["network_setups"] < ack_rms["network_setups"]
    # And the sender learns of delivery at least as fast.
    assert fast["all_acked_ms"] <= ack_rms["all_acked_ms"] * 1.1


run = make_run("e13_fast_ack", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
