"""E18 -- fast-path engine: calendar-wheel event loop vs the seed loop.

Claim: the hybrid calendar-wheel/heap timer queue (repro.sim.events)
executes the event mixes the DASH stack actually generates -- call_soon
chains, same-instant bursts, schedule/cancel timer churn, mixed delays
-- at least twice as fast as the seed's pure-heapq loop, and the
zero-copy ST datapath keeps per-message allocations bounded.

The seed loop is embedded below verbatim (modulo names) so the
comparison stays honest as the real loop evolves.  Results are written
to the repo-root ``BENCH_e18.json`` for the CI perf-smoke job; see
DESIGN.md's "Performance" section for the schema.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import random
import sys
import time
from typing import Callable, List, Optional, Tuple

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.sim.events import EventLoop

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e18/1"

SOON_CHAIN = 150_000
BURSTS = 400
BURST_WIDTH = 250
CHURN_TIMERS = 120_000
MIXED_TIMERS = 120_000
LAN_MESSAGES = 300


# -- the seed's event loop, embedded for comparison -------------------------


class _LegacyHandle:
    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled")

    def __init__(self, time: float, seq: int, callback, args) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._callback = _noop
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        self._callback(*self._args)

    def __lt__(self, other: "_LegacyHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)


def _noop() -> None:
    return None


class _LegacyEventLoop:
    """The seed's pure-heapq scheduler (one handle object per event,
    Python-level ``__lt__`` on every sift)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_LegacyHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._events_run = 0

    @property
    def now(self) -> float:
        return self._now

    def call_at(self, when: float, callback, *args) -> _LegacyHandle:
        handle = _LegacyHandle(when, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def call_after(self, delay: float, callback, *args) -> _LegacyHandle:
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback, *args) -> _LegacyHandle:
        return self.call_at(self._now, callback, *args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                handle = self._queue[0]
                if handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and handle.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = handle.time
                handle._run()
                self._events_run += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now


# -- microbench workloads ----------------------------------------------------
#
# Each takes a fresh loop and returns the number of callbacks it will
# execute; the driver times loop.run().


def _load_soon_chain(loop) -> int:
    """One callback rescheduling itself: the instant-bucket fast path."""
    remaining = [SOON_CHAIN]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            loop.call_soon(step)

    loop.call_soon(step)
    return SOON_CHAIN


def _load_same_time_bursts(loop) -> int:
    """Many events at identical timestamps (piggyback/mux patterns)."""
    sink = _Counter()
    for burst in range(BURSTS):
        when = loop.now + burst * 0.0007
        for _ in range(BURST_WIDTH):
            loop.call_at(when, sink)
    return BURSTS * BURST_WIDTH


def _load_timer_churn(loop, rng: random.Random) -> int:
    """Schedule/cancel churn: retransmission timers that rarely fire."""
    sink = _Counter()
    handles = []
    for _ in range(CHURN_TIMERS):
        handles.append(loop.call_after(rng.uniform(0.0, 0.4), sink))
    cancelled = 0
    for index, handle in enumerate(handles):
        if index % 2 == 0:
            handle.cancel()
            cancelled += 1
    return CHURN_TIMERS - cancelled


def _load_mixed_delays(loop, rng: random.Random) -> int:
    """Delays spanning the wheel horizon and the far heap."""
    sink = _Counter()
    for _ in range(MIXED_TIMERS):
        loop.call_after(rng.expovariate(1 / 0.05), sink)
    return MIXED_TIMERS


class _Counter:
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def __call__(self) -> None:
        self.n += 1


WORKLOADS: List[Tuple[str, Callable[..., int], bool]] = [
    ("call_soon chain", _load_soon_chain, False),
    ("same-time bursts", _load_same_time_bursts, False),
    ("timer churn (50% cancel)", _load_timer_churn, True),
    ("mixed delays", _load_mixed_delays, True),
]


def _time_workload(make_loop, load, needs_rng: bool, seed: int) -> Tuple[int, float]:
    loop = make_loop()
    if needs_rng:
        events = load(loop, random.Random(seed))
    else:
        events = load(loop)
    started = time.perf_counter()
    loop.run()
    return events, time.perf_counter() - started


def _lan_throughput(seed: int) -> Tuple[float, float]:
    """End-to-end ST messages/sec of simulated work, plus allocations
    per message (heap blocks, via sys.getallocatedblocks)."""
    system = build_lan(seed=seed)
    rms = open_st_rms(system, "a", "b", port="e18")
    delivered = _Counter()
    rms.port.set_handler(lambda message: delivered())
    payload = b"\xa5" * 1400

    get_blocks = getattr(sys, "getallocatedblocks", lambda: 0)
    started = time.perf_counter()
    blocks_before = get_blocks()
    for _ in range(LAN_MESSAGES):
        rms.send(payload)
        system.run(until=system.now + 0.02)
    blocks_after = get_blocks()
    elapsed = time.perf_counter() - started
    assert delivered.n == LAN_MESSAGES
    msgs_per_sec = LAN_MESSAGES / max(elapsed, 1e-9)
    allocs_per_msg = max(0, blocks_after - blocks_before) / LAN_MESSAGES
    return msgs_per_sec, allocs_per_msg


def run_experiment(seed: int = 18):
    rows = []
    fast_events = fast_time = legacy_events = legacy_time = 0.0
    for name, load, needs_rng in WORKLOADS:
        events, legacy_s = _time_workload(_LegacyEventLoop, load, needs_rng, seed)
        _, fast_s = _time_workload(EventLoop, load, needs_rng, seed)
        legacy_events += events
        legacy_time += legacy_s
        fast_events += events
        fast_time += fast_s
        rows.append({
            "workload": name,
            "events": events,
            "legacy_eps": events / max(legacy_s, 1e-9),
            "fast_eps": events / max(fast_s, 1e-9),
            "speedup": legacy_s / max(fast_s, 1e-9),
        })
    events_per_sec = fast_events / max(fast_time, 1e-9)
    legacy_eps = legacy_events / max(legacy_time, 1e-9)
    msgs_per_sec, allocs_per_msg = _lan_throughput(seed)
    result = {
        "rows": rows,
        "events_per_sec": events_per_sec,
        "legacy_events_per_sec": legacy_eps,
        "speedup_vs_legacy": events_per_sec / max(legacy_eps, 1e-9),
        "msgs_per_sec": msgs_per_sec,
        "allocs_per_msg": allocs_per_msg,
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "events_per_sec": round(result["events_per_sec"], 1),
        "legacy_events_per_sec": round(result["legacy_events_per_sec"], 1),
        "speedup_vs_legacy": round(result["speedup_vs_legacy"], 3),
        "msgs_per_sec": round(result["msgs_per_sec"], 1),
        "allocs_per_msg": round(result["allocs_per_msg"], 2),
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e18.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result) -> Table:
    table = Table(
        "E18: calendar-wheel loop vs seed heapq loop",
        ["workload", "events", "legacy ev/s", "fast ev/s", "speedup"],
    )
    for row in result["rows"]:
        table.add_row(row["workload"], row["events"],
                      round(row["legacy_eps"]), round(row["fast_eps"]),
                      round(row["speedup"], 2))
    table.add_row("TOTAL", "",
                  round(result["legacy_events_per_sec"]),
                  round(result["events_per_sec"]),
                  round(result["speedup_vs_legacy"], 2))
    table.add_row("LAN end-to-end", LAN_MESSAGES,
                  f"{result['msgs_per_sec']:.0f} msg/s",
                  f"{result['allocs_per_msg']:.1f} allocs/msg", "")
    return table


def test_e18_fastpath(run_once):
    result = run_once(run_experiment)
    report("e18_fastpath", render(result))
    # The tentpole claim: >= 2x events/sec over the seed loop.
    assert result["speedup_vs_legacy"] >= 2.0
    assert result["msgs_per_sec"] > 0


run = make_run("e18_fastpath", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
