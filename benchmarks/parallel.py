#!/usr/bin/env python
"""Parallel multi-seed bench runner.

Shards (experiment, seed) pairs across worker processes, each invoking
the bench module's uniform ``run(seed, out_dir)`` entry point, then
merges the per-seed summaries into one JSON report.

Usage::

    python benchmarks/parallel.py --seeds 1 2 3 --experiments e04 e05
    python benchmarks/parallel.py --seeds 1..8 --workers 4

Per-seed artifacts land under ``<out-dir>/seed<N>/`` so the committed
single-seed snapshots in ``benchmarks/results/`` are never clobbered;
the merged summary is written to ``<out-dir>/summary.json``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, List, Optional, Tuple

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_OUT = os.path.join(BENCH_DIR, "results", "parallel")

sys.path.insert(0, BENCH_DIR)

from run_all import EXPERIMENTS  # noqa: E402


def _run_one(job: Tuple[str, int, str]) -> Dict[str, Any]:
    """Worker entry point: one (experiment module, seed) shard."""
    module_name, seed, out_dir = job
    # Workers started with the "spawn" method re-import this module, so
    # re-assert the import paths before touching bench modules.
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    module = importlib.import_module(module_name)
    started = time.time()
    try:
        summary = module.run(seed=seed, out_dir=out_dir)
        summary["ok"] = True
    except Exception as error:  # noqa: BLE001 - reported in the summary
        summary = {
            "experiment": module_name[len("bench_"):],
            "seed": seed,
            "ok": False,
            "error": f"{type(error).__name__}: {error}",
        }
    summary["wall_s"] = time.time() - started
    return summary


def _parse_seeds(tokens: List[str]) -> List[int]:
    seeds: List[int] = []
    for token in tokens:
        if ".." in token:
            lo, hi = token.split("..", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(token))
    return seeds


def _select_experiments(tags: List[str]) -> List[str]:
    if not tags:
        return list(EXPERIMENTS)
    wanted = {tag.lower() for tag in tags}
    chosen = [name for name in EXPERIMENTS if name.split("_")[1] in wanted]
    missing = wanted - {name.split("_")[1] for name in chosen}
    if missing:
        raise SystemExit(f"unknown experiments: {sorted(missing)}")
    return chosen


def _shard_key(summary: Dict[str, Any]) -> Tuple[str, int]:
    seed = summary.get("seed")
    return (summary["experiment"], -1 if seed is None else seed)


def _merge(summaries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-(experiment, seed) summaries into one report: per-seed
    runtimes plus cross-seed aggregates.

    Shards are sorted by (experiment, seed) before merging, so the
    report is byte-identical no matter which worker finished first.
    """
    merged: Dict[str, Any] = {}
    for summary in sorted(summaries, key=_shard_key):
        entry = merged.setdefault(
            summary["experiment"], {"seeds": {}, "failures": 0}
        )
        key = str(summary.get("seed"))
        if summary.get("ok"):
            entry["seeds"][key] = {
                "elapsed_s": round(summary.get("elapsed_s", 0.0), 3),
                "tables": summary.get("tables", []),
            }
        else:
            entry["failures"] += 1
            entry["seeds"][key] = {"error": summary.get("error")}
    for entry in merged.values():
        elapsed = [
            seed_data["elapsed_s"]
            for seed_data in entry["seeds"].values()
            if "elapsed_s" in seed_data
        ]
        if elapsed:
            entry["elapsed_mean_s"] = round(sum(elapsed) / len(elapsed), 3)
            entry["elapsed_max_s"] = round(max(elapsed), 3)
    return merged


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", nargs="+", default=["1"],
                        help="seed list; ranges like 1..8 are expanded")
    parser.add_argument("--experiments", nargs="*", default=[],
                        help="experiment tags (e01 e18 ...); default: all")
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--out-dir", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    seeds = _parse_seeds(args.seeds)
    experiments = _select_experiments(args.experiments)
    jobs = [
        (name, seed, os.path.join(args.out_dir, f"seed{seed}"))
        for seed in seeds
        for name in experiments
    ]
    workers = max(1, min(args.workers, len(jobs)))
    print(f"running {len(jobs)} shards ({len(experiments)} experiments x "
          f"{len(seeds)} seeds) on {workers} workers", flush=True)

    summaries: List[Dict[str, Any]] = []
    started = time.time()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(_run_one, job): job for job in jobs}
        for completed, future in enumerate(as_completed(futures), start=1):
            summary = future.result()
            summaries.append(summary)
            status = "ok" if summary.get("ok") else "FAILED"
            print(f"  [{completed}/{len(jobs)}] [{status}] "
                  f"{summary['experiment']} seed={summary.get('seed')} "
                  f"{summary['wall_s']:.1f}s", flush=True)

    merged = _merge(summaries)
    os.makedirs(args.out_dir, exist_ok=True)
    summary_path = os.path.join(args.out_dir, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump(
            {
                "seeds": seeds,
                "experiments": [n[len("bench_"):] for n in experiments],
                "wall_s": round(time.time() - started, 1),
                "results": merged,
            },
            handle, indent=2, default=str,
        )
        handle.write("\n")
    failures = sum(entry["failures"] for entry in merged.values())
    print(f"merged summary -> {summary_path} "
          f"({len(jobs) - failures}/{len(jobs)} shards ok)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
