"""E1 -- Figure 1: one network-independent stack over multiple networks.

Claim: the DASH stack above the network-dependent interface is identical
for every network type; the same RKOM and stream client code runs over
the Ethernet simulator and the internetwork simulator, with performance
differences explained entirely by the media.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, build_wan, make_run, report
from repro.apps.rpcload import RpcWorkload
from repro.transport.stream import StreamConfig


def run_network(kind: str, seed: int = 1):
    if kind == "ethernet":
        system = build_lan(seed=seed)
    else:
        system = build_wan(seed=seed, senders=("a",), receiver="b",
                           propagation=0.02)
    node_a, node_b = system.nodes["a"], system.nodes["b"]
    node_b.rkom.register_handler("echo", lambda payload, src: payload)

    rpc = RpcWorkload(system.context, node_a.rkom, "b",
                      clients=1, calls_per_client=20, think_time=0.01)
    handle = system.connect("a", "b", kind="stream", config=StreamConfig(
        data_max_message=4000, data_capacity=32 * 1024))
    system.run(until=system.now + 5.0)
    session = handle.established.result()

    received = []
    finish = {"at": None}
    start = system.now

    def consumer():
        for _ in range(40):
            message = yield session.receive()
            received.append(message)
        finish["at"] = system.now

    system.context.spawn(consumer())
    for index in range(40):
        session.send(bytes([index % 256]) * 1000)
    system.run(until=system.now + 60.0)
    rpc_report = rpc.report()
    elapsed = (finish["at"] or system.now) - start
    return {
        "network": kind,
        "rpc_completed": rpc_report.calls_completed,
        "rpc_mean_ms": rpc_report.rtt.mean * 1e3,
        "stream_delivered": len(received),
        "goodput_kBps": session.stats.bytes_delivered / max(elapsed, 1e-9) / 1e3,
    }


def run_experiment():
    return [run_network("ethernet"), run_network("internet")]


def render(rows) -> Table:
    table = Table(
        "E1: identical workload over both network types (Figure 1)",
        ["network", "RPC done", "RPC mean (ms)", "stream msgs", "goodput (kB/s)"],
    )
    for row in rows:
        table.add_row(
            row["network"], row["rpc_completed"], row["rpc_mean_ms"],
            row["stream_delivered"], row["goodput_kBps"],
        )
    return table


def test_e01_portability(run_once):
    rows = run_once(run_experiment)
    report("e01_portability", render(rows))
    ether, inet = rows
    # Both networks carry the full workload to completion.
    assert ether["rpc_completed"] == inet["rpc_completed"] == 20
    assert ether["stream_delivered"] == inet["stream_delivered"] == 40
    # The long-haul network is slower, as the media dictate.
    assert inet["rpc_mean_ms"] > ether["rpc_mean_ms"]
    assert inet["goodput_kBps"] < ether["goodput_kBps"]


run = make_run("e01_portability", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
