"""E23 -- mesh-scale full-stack transport: ECMP over a two-tier fabric.

E22 proved the routing engine scales *route resolution*; this bench is
the first to drive the **whole DASH stack** -- secured ST streams
(privacy + authentication, software transforms on the untrusted
medium), piggybacking, and RKOM request/reply -- over a router fabric,
and measures what the engine's equal-cost multipath mode buys at the
saturated core.

The fabric is a spine/leaf two-tier (``build_two_tier``): every
inter-leaf pair has one equal-cost path per spine.  The single-path
engine deterministically tie-breaks them all onto ``spine0`` (heap
order), so one trunk saturates while its siblings idle -- the ROADMAP
gap this PR closes.  With ``ecmp=True`` each flow (one per network RMS,
keyed per (src, dst) creation order) is pinned by a deterministic hash
to one equal-cost plan, spreading distinct flows across the spines
while every flow keeps in-order delivery on its pinned path.

Four legs, asserted by ``test_e23_meshtransport``:

* **Throughput ablation** -- identical secured-stream workload, arms
  ``ecmp=True`` / ``ecmp=False``, offered load ~2.5x one trunk per
  leaf.  The headline ``ecmp_speedup`` is the ratio of aggregate
  delivered payload bytes per *simulated* second (deterministic, so CI
  can gate it exactly); Jain's fairness index over per-trunk bytes
  (``repro.obs.LinkUtilizationCollector``) shows *why*: the single
  path arm sits near 1/spines, ECMP near 1.
* **RKOM leg** -- request/reply calls from every leaf cross the same
  saturated core; calls per simulated second, both arms.
* **Flap leg** (ECMP arm) -- one loaded trunk dies: only the streams
  whose pinned plan traverses it fail (scoped DAG invalidation, zero
  full invalidations), surviving equal-cost siblings absorb the
  re-established flows while unaffected streams keep delivering, and
  the trunk's return restores the spread.
* **Tie-free trace equality** -- the same full stack over a tie-free
  WAN, ECMP on vs off, one seed, lossy links: byte-identical delivery
  traces (ECMP must be a provable no-op without cost ties).

Results go to the repo-root ``BENCH_e23.json`` for the CI perf-smoke
job; see DESIGN.md section 8.8 for the engine design.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from common import Table, bench_main, make_run, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.netsim.topology import MeshSpec
from repro.obs import LinkUtilizationCollector

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e23/1"

SEED = 23

#: The fabric: 4 spines x 6 leaves, 3 hosts per leaf = 18 hosts, every
#: inter-leaf pair with 4 equal-cost two-trunk paths across the core.
SPINES = 4
LEAVES = 6
HOSTS_PER_LEAF = 3
#: Slow trunks against fast access links put the bottleneck squarely in
#: the core; 125 KB/s per trunk keeps the simulated second cheap.
SPEC = MeshSpec(
    trunk_bandwidth=1.25e5,
    trunk_delay=1e-3,
    access_bandwidth=2.5e6,
    access_delay=1e-4,
    buffer_bytes=64 * 1024,
)
#: One secured stream per host (a perfect cross-leaf matching: every
#: host sends one stream and receives one).
PAYLOAD = b"\xe2\x23" * 200  # 400 bytes, sealed + MAC'd in software
#: Messages per stream per round; at 4 rounds/sim-second this offers
#: ~2.4x one trunk's bandwidth per leaf uplink.
BURST = 56
ROUND_TIME = 0.25  # simulated seconds per traffic round
WARMUP_ROUNDS = 2
MEASURED_ROUNDS = 8
#: RKOM leg: echo calls per leaf client per round.
RKOM_CALLS = 4
RKOM_ROUNDS = 4


def _secured_params() -> RmsParams:
    return RmsParams(
        privacy=True,
        authentication=True,
        capacity=16 * 1024,
        max_message_size=512,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def _stream_pairs() -> List[Tuple[str, str]]:
    """A deterministic cross-leaf perfect matching, host i -> one peer."""
    pairs = []
    for leaf in range(LEAVES):
        for slot in range(HOSTS_PER_LEAF):
            peer_leaf = (leaf + 1 + slot) % LEAVES
            pairs.append((
                f"h{leaf * HOSTS_PER_LEAF + slot}",
                f"h{peer_leaf * HOSTS_PER_LEAF + slot}",
            ))
    return pairs


class _MeshArm:
    """One ablation arm: the full DASH stack over the two-tier fabric."""

    def __init__(self, seed: int, ecmp: bool) -> None:
        self.ecmp = ecmp
        self.system = DashSystem(seed=seed)
        self.network, self.mesh = self.system.add_mesh(
            "two_tier",
            ecmp=ecmp,
            spines=SPINES,
            leaves=LEAVES,
            hosts_per_leaf=HOSTS_PER_LEAF,
            spec=SPEC,
        )
        # Prime the engine's invalidation tracking before any streams
        # exist, so the measured flap exercises the scoped (DAG) path
        # rather than the one-time tracking switch-on.  Both arms get
        # the identical primer for symmetry.
        primer = self.network.link("leaf0", "spine0")
        primer.set_down()
        primer.set_up()
        self.pairs = _stream_pairs()
        self.params = _secured_params()
        self.streams: Dict[Tuple[str, str], object] = {}
        self.delivered_bytes: Dict[Tuple[str, str], int] = {}
        self.failed: Dict[Tuple[str, str], str] = {}
        self.collector = LinkUtilizationCollector(self.network)

    # -- streams ----------------------------------------------------------

    def _watch(self, pair: Tuple[str, str], rms) -> None:
        self.streams[pair] = rms
        self.delivered_bytes.setdefault(pair, 0)

        def on_message(message, pair=pair):
            self.delivered_bytes[pair] += len(message.payload)

        rms.port.set_handler(on_message)
        rms.on_failure.listen(
            lambda rms, reason, pair=pair: self.failed.setdefault(pair, reason)
        )

    def establish(self, pairs: Optional[List[Tuple[str, str]]] = None,
                  tag: str = "s") -> None:
        pending = []
        for index, pair in enumerate(pairs or self.pairs):
            session = self.system.connect(
                pair[0], pair[1],
                desired=self.params, acceptable=self.params,
                port=f"{tag}{index}", fast_ack=False,
            )
            pending.append((pair, session))
        self.system.run(until=self.system.now + 2.0)
        for pair, session in pending:
            rms = session.established.result()
            assert rms.plan.encrypt and rms.plan.mac, \
                "untrusted medium must force software security"
            self._watch(pair, rms)

    def traffic_round(self) -> None:
        for pair, rms in self.streams.items():
            if pair in self.failed:
                continue
            try:
                for _ in range(BURST):
                    rms.send(PAYLOAD)
            except Exception:
                # A stream torn down mid-round (flap leg): counted via
                # its on_failure listener, not here.
                pass
        self.system.run(until=self.system.now + ROUND_TIME)

    # -- legs -------------------------------------------------------------

    def throughput_leg(self) -> Dict[str, float]:
        self.establish()
        for _ in range(WARMUP_ROUNDS):
            self.traffic_round()
        marks = dict(self.delivered_bytes)
        self.collector.mark()
        sim_start = self.system.now
        for _ in range(MEASURED_ROUNDS):
            self.traffic_round()
        sim_elapsed = self.system.now - sim_start
        delivered = sum(
            self.delivered_bytes[pair] - marks.get(pair, 0)
            for pair in self.pairs
        )
        spines = {f"spine{i}" for i in range(SPINES)}
        uplinks = [
            edge for edge in self.collector.delta()
            if edge[1] in spines
        ]
        return {
            "delivered_bytes": delivered,
            "bytes_per_sec": delivered / sim_elapsed,
            "jain_trunks": self.collector.fairness(),
            "jain_uplinks": self.collector.fairness(uplinks),
            "capacity_violations": sum(
                rms.stats.capacity_violations for rms in self.streams.values()
            ),
        }

    def rkom_leg(self) -> Dict[str, float]:
        clients = []
        for leaf in range(LEAVES):
            client = f"h{leaf * HOSTS_PER_LEAF}"
            server_leaf = (leaf + LEAVES // 2) % LEAVES
            server = f"h{server_leaf * HOSTS_PER_LEAF + 1}"
            self.system.nodes[server].rkom.register_handler(
                "echo", lambda payload, sender: payload
            )
            clients.append(self.system.connect(client, server, kind="rkom"))
        handles = []
        sim_start = self.system.now
        for _ in range(RKOM_ROUNDS):
            for rpc in clients:
                for _ in range(RKOM_CALLS):
                    handles.append(rpc.call("echo", b"e23-ping"))
            self.system.run(until=self.system.now + ROUND_TIME)
        self.system.run(until=self.system.now + 1.0)
        sim_elapsed = self.system.now - sim_start
        completed = sum(
            1 for handle in handles if handle.done and not handle.failed
        )
        return {
            "calls": len(handles),
            "completed": completed,
            "calls_per_sec": completed / sim_elapsed,
        }

    # -- flap leg (ECMP arm only) -----------------------------------------

    def flap_leg(self) -> Dict[str, object]:
        engine = self.network._engine
        network = self.network

        def data_route(rms) -> List[str]:
            return list(rms.binding.network_rms.route)

        # Flap the loaded uplink trunk of leaf0's first stream.
        first = self.streams[self.pairs[0]]
        spine = data_route(first)[2]
        edge = ("leaf0", spine)

        def crosses(route: List[str]) -> bool:
            return any(
                (route[i], route[i + 1]) in (edge, edge[::-1])
                for i in range(len(route) - 1)
            )

        pinned_through = {
            pair for pair, rms in self.streams.items()
            if crosses(data_route(rms))
        }
        survivors = set(self.pairs) - pinned_through
        self.failed.clear()
        marks = dict(self.delivered_bytes)
        full_before = engine.full_invalidations
        prunes_before = engine.dag_prunes
        network.link(*edge).set_down()
        network.link(edge[1], edge[0]).set_down()
        self.traffic_round()
        self.traffic_round()
        failed_streams = set(self.failed)
        survivors_delivering = sum(
            1 for pair in survivors
            if self.delivered_bytes[pair] > marks.get(pair, 0)
        )
        # Re-establish exactly the failed streams: their new flows must
        # pin onto surviving equal-cost siblings.
        rerouted = sorted(failed_streams)
        self.establish(rerouted, tag="r")
        for pair in rerouted:
            self.failed.pop(pair, None)
        rerouted_avoid_edge = all(
            not crosses(data_route(self.streams[pair])) for pair in rerouted
        )
        self.traffic_round()
        network.link(*edge).set_up()
        network.link(edge[1], edge[0]).set_up()
        marks = dict(self.delivered_bytes)
        self.failed.clear()
        self.traffic_round()
        all_delivering = sum(
            1 for pair in self.pairs
            if self.delivered_bytes[pair] > marks.get(pair, 0)
        )
        return {
            "flapped_edge": list(edge),
            "streams": len(self.pairs),
            "pinned_through": len(pinned_through),
            "failed": len(failed_streams),
            "failed_match_pinned": failed_streams == pinned_through,
            "survivors_delivering": survivors_delivering,
            "survivors": len(survivors),
            "rerouted_avoid_edge": rerouted_avoid_edge,
            "full_invalidations": engine.full_invalidations - full_before,
            "dag_prunes": engine.dag_prunes - prunes_before,
            "recovered_delivering": all_delivering,
        }


# ----------------------------------------------------------------------
# Tie-free trace equality: the full stack, ECMP on vs off
# ----------------------------------------------------------------------


def _tiefree_trace(ecmp: bool) -> List[Tuple[object, object]]:
    """Secured ST delivery trace over a tie-free lossy WAN, one seed."""
    system = DashSystem(seed=77)
    network = system.add_internet("wan0", trusted=False, ecmp=ecmp)
    system.add_node("a", network_names=["wan0"])
    system.add_node("b", network_names=["wan0"])
    network.add_router("r1")
    network.add_router("r2")
    network.add_link("a", "r1", bandwidth=2.5e5, propagation_delay=1e-3)
    network.add_link("r1", "r2", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.08)
    network.add_link("r2", "b", bandwidth=2.5e5, propagation_delay=1e-3)
    params = _secured_params()
    session = system.connect("a", "b", desired=params, acceptable=params,
                             port="trace")
    system.run(until=system.now + 2.0)
    rms = session.established.result()
    assert rms.plan.encrypt and rms.plan.mac
    trace: List[Tuple[object, object]] = []
    rms.port.set_handler(
        lambda message: trace.append((bytes(message.payload), system.now))
    )
    for index in range(80):
        rms.send(bytes([index % 251]) * 120)
        if index % 8 == 7:
            system.run(until=system.now + 0.05)
    system.run(until=system.now + 3.0)
    trace.append((rms.stats.messages_sent, rms.stats.messages_delivered))
    return trace


# ----------------------------------------------------------------------


def run_experiment(seed: int = SEED):
    arms = {}
    for name, ecmp in (("ecmp", True), ("single", False)):
        arm = _MeshArm(seed, ecmp=ecmp)
        arms[name] = {
            "arm": arm,
            "throughput": arm.throughput_leg(),
            "rkom": arm.rkom_leg(),
        }
    flap = arms["ecmp"]["arm"].flap_leg()
    trace_on = _tiefree_trace(ecmp=True)
    trace_off = _tiefree_trace(ecmp=False)
    ecmp_tp = arms["ecmp"]["throughput"]
    single_tp = arms["single"]["throughput"]
    result = {
        "hosts": len(arms["ecmp"]["arm"].mesh.hosts),
        "routers": len(arms["ecmp"]["arm"].mesh.routers),
        "streams": len(arms["ecmp"]["arm"].pairs),
        "ecmp_bytes_per_sec": ecmp_tp["bytes_per_sec"],
        "single_bytes_per_sec": single_tp["bytes_per_sec"],
        "ecmp_speedup":
            ecmp_tp["bytes_per_sec"] / single_tp["bytes_per_sec"],
        "jain_ecmp": ecmp_tp["jain_uplinks"],
        "jain_single": single_tp["jain_uplinks"],
        "jain_trunks_ecmp": ecmp_tp["jain_trunks"],
        "jain_trunks_single": single_tp["jain_trunks"],
        "ecmp_rkom_calls_per_sec": arms["ecmp"]["rkom"]["calls_per_sec"],
        "single_rkom_calls_per_sec": arms["single"]["rkom"]["calls_per_sec"],
        "rkom_calls": arms["ecmp"]["rkom"]["calls"],
        "rkom_completed": arms["ecmp"]["rkom"]["completed"],
        "flap": flap,
        "tiefree_trace_identical": trace_on == trace_off,
        "trace_deliveries": len(trace_on) - 1,
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    flap = result["flap"]
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "hosts": result["hosts"],
        "routers": result["routers"],
        "streams": result["streams"],
        "ecmp_bytes_per_sec": round(result["ecmp_bytes_per_sec"], 1),
        "single_bytes_per_sec": round(result["single_bytes_per_sec"], 1),
        "ecmp_speedup": round(result["ecmp_speedup"], 3),
        "jain_ecmp": round(result["jain_ecmp"], 3),
        "jain_single": round(result["jain_single"], 3),
        "ecmp_rkom_calls_per_sec":
            round(result["ecmp_rkom_calls_per_sec"], 1),
        "single_rkom_calls_per_sec":
            round(result["single_rkom_calls_per_sec"], 1),
        "flap_streams": flap["streams"],
        "flap_pinned_through": flap["pinned_through"],
        "flap_failed_match_pinned": flap["failed_match_pinned"],
        "flap_survivors_delivering": flap["survivors_delivering"],
        "flap_survivors": flap["survivors"],
        "flap_rerouted_avoid_edge": flap["rerouted_avoid_edge"],
        "flap_full_invalidations": flap["full_invalidations"],
        "flap_dag_prunes": flap["dag_prunes"],
        "flap_recovered_delivering": flap["recovered_delivering"],
        "tiefree_trace_identical": result["tiefree_trace_identical"],
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e23.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result):
    throughput = Table(
        "E23: secured full-stack transport over a "
        f"{SPINES}-spine/{LEAVES}-leaf fabric "
        f"({result['streams']} streams, saturated core)",
        ["arm", "payload B/s (sim)", "RKOM calls/s", "Jain (uplinks)"],
    )
    throughput.add_row(
        "ecmp", round(result["ecmp_bytes_per_sec"]),
        round(result["ecmp_rkom_calls_per_sec"], 1),
        round(result["jain_ecmp"], 3),
    )
    throughput.add_row(
        "single-path", round(result["single_bytes_per_sec"]),
        round(result["single_rkom_calls_per_sec"], 1),
        round(result["jain_single"], 3),
    )
    flap = result["flap"]
    checks = Table(
        "E23: speedup, scoped flap, and tie-free trace equality",
        ["check", "value"],
    )
    checks.add_row("ecmp speedup (delivered bytes/sim-s)",
                   round(result["ecmp_speedup"], 2))
    checks.add_row(
        "flap: failed == pinned-through",
        f"{flap['failed_match_pinned']} "
        f"({flap['pinned_through']}/{flap['streams']} pinned through "
        f"{'->'.join(flap['flapped_edge'])})",
    )
    checks.add_row(
        "flap: unaffected streams kept delivering",
        f"{flap['survivors_delivering']}/{flap['survivors']}",
    )
    checks.add_row("flap: re-pinned flows avoid the dead trunk",
                   flap["rerouted_avoid_edge"])
    checks.add_row(
        "flap: full invalidations / DAG prunes",
        f"{flap['full_invalidations']} / {flap['dag_prunes']}",
    )
    checks.add_row(
        "flap: streams delivering after the trunk healed",
        f"{flap['recovered_delivering']}/{flap['streams']}",
    )
    checks.add_row("tie-free full-stack trace identical (ecmp on vs off)",
                   result["tiefree_trace_identical"])
    checks.add_row("trace deliveries", result["trace_deliveries"])
    return throughput, checks


def test_e23_meshtransport(run_once):
    result = run_once(run_experiment)
    report("e23_meshtransport", *render(result))
    # The tentpole claim: spreading flows across equal-cost trunks
    # delivers >= 1.5x the aggregate secured payload of the single-path
    # engine at the saturated core (simulated-time rates: exact).
    assert result["ecmp_speedup"] >= 1.5
    # The mechanism: trunk load balance, not some second-order effect.
    assert result["jain_ecmp"] > result["jain_single"]
    # Scoped DAG invalidation: the flap kills exactly the pinned-through
    # streams, never pays a full invalidation, and the siblings absorb
    # the re-established flows.
    flap = result["flap"]
    assert flap["failed_match_pinned"]
    assert 0 < flap["pinned_through"] < flap["streams"]
    assert flap["survivors_delivering"] == flap["survivors"]
    assert flap["rerouted_avoid_edge"]
    assert flap["full_invalidations"] == 0
    assert flap["dag_prunes"] > 0
    assert flap["recovered_delivering"] == flap["streams"]
    # RKOM crossed the same core in both arms.
    assert result["rkom_completed"] == result["rkom_calls"]
    # ECMP without cost ties is a no-op, byte for byte.
    assert result["tiefree_trace_identical"]
    assert result["trace_deliveries"] > 0


run = make_run("e23_meshtransport", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
