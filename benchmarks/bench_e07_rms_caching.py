"""E7 -- Section 4.2: network-RMS caching.

Claim: "The ST caches network RMS's ... motivated by two assumptions:
1) during a given time period a host will tend to communicate repeatedly
with a small set of remote hosts; 2) it is slow and costly to create
network RMS's."  With the cache, repeated short sessions to the same
peer skip the network setup handshake.
"""

from __future__ import annotations

from common import Table, bench_main, best_effort_params, build_lan, make_run, report
from repro.subtransport.config import StConfig

SESSIONS = 15


def run_case(cache_enabled: bool, seed: int = 7):
    config = StConfig(cache_enabled=cache_enabled, multiplexing_enabled=False)
    system = build_lan(seed=seed, st_config=config)
    st = system.nodes["a"].st
    network = system.networks["ether0"]
    params = best_effort_params(capacity=16 * 1024, mms=1400)
    latencies = []
    done = {"n": 0}

    def driver():
        for index in range(SESSIONS):
            start = system.now
            rms = yield st.create_st_rms(
                "b", port=f"short{index}", desired=params, acceptable=params
            )
            latencies.append(system.now - start)
            rms.send(b"one shot payload")
            yield 0.01
            rms.close()
            yield 0.02
            done["n"] += 1

    system.context.spawn(driver())
    system.run(until=system.now + 30.0)
    assert done["n"] == SESSIONS
    return {
        "cache": cache_enabled,
        "sessions": SESSIONS,
        "network_setups": network.setup_count,
        "network_rms_created": st.stats.network_rms_created,
        "cache_hits": st.stats.cache_hits,
        "first_ms": latencies[0] * 1e3,
        "mean_rest_ms": 1e3 * sum(latencies[1:]) / (len(latencies) - 1),
    }


def run_experiment():
    return [run_case(False), run_case(True)]


def render(rows) -> Table:
    table = Table(
        f"E7: {SESSIONS} short sessions to one peer, network-RMS cache "
        "off vs on (section 4.2)",
        ["cache", "net setups", "data RMS created", "cache hits",
         "first create (ms)", "mean later create (ms)"],
    )
    for row in rows:
        table.add_row("on" if row["cache"] else "off", row["network_setups"],
                      row["network_rms_created"], row["cache_hits"],
                      row["first_ms"], row["mean_rest_ms"])
    return table


def test_e07_rms_caching(run_once):
    rows = run_once(run_experiment)
    report("e07_rms_caching", render(rows))
    off, on = rows
    # The cache eliminates repeated network-RMS creation...
    assert on["network_rms_created"] == 1
    assert off["network_rms_created"] == SESSIONS
    assert on["cache_hits"] == SESSIONS - 1
    # ...which eliminates setup handshakes on the wire...
    assert on["network_setups"] < off["network_setups"]
    # ...and makes later session establishment faster than the first.
    assert on["mean_rest_ms"] < off["mean_rest_ms"]


run = make_run("e07_rms_caching", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
