#!/usr/bin/env python
"""Run every experiment and print its table, without pytest.

Usage:  python benchmarks/run_all.py [e01 e05 ...]

With no arguments, runs every experiment in order.  The experiment
list is *discovered*, not maintained by hand: every ``bench_e*.py``
module in this directory is an experiment (sorted by filename, so the
``eNN`` tag ordering holds), and each exposes the uniform
``run(seed, out_dir)`` entry point built by ``common.make_run``.  A
new bench is picked up by this runner, ``benchmarks/parallel.py``, and
CI the moment the file lands.  For multi-seed sweeps across worker
processes use ``benchmarks/parallel.py``.
"""

from __future__ import annotations

import glob
import importlib
import os
import sys
import time

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _BENCH_DIR)


def discover_experiments() -> list:
    """Every ``bench_e*.py`` module name in this directory, sorted."""
    return sorted(
        os.path.splitext(os.path.basename(path))[0]
        for path in glob.glob(os.path.join(_BENCH_DIR, "bench_e*.py"))
    )


EXPERIMENTS = discover_experiments()


def main(argv) -> int:
    wanted = [arg.lower() for arg in argv[1:]]
    failures = 0
    for name in EXPERIMENTS:
        tag = name.split("_")[1]  # e01, e02, ...
        if wanted and tag not in wanted:
            continue
        module = importlib.import_module(name)
        started = time.time()
        try:
            # run() persists the .txt table and the .metrics.json
            # snapshot for every experiment, exactly like the pytest
            # benches do.
            module.run(echo=True)
        except Exception as error:  # noqa: BLE001 - report and continue
            print(f"!! {name} failed: {error}")
            failures += 1
            continue
        print(f"[{tag}: {time.time() - started:.1f}s]\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
