#!/usr/bin/env python
"""Run every experiment and print its table, without pytest.

Usage:  python benchmarks/run_all.py [e01 e05 ...]

With no arguments, runs E1 through E18 in order.  Each experiment module
exposes the uniform ``run(seed, out_dir)`` entry point (built by
``common.make_run``); this runner simply chains them, so the output
matches what the pytest benches assert on.  For multi-seed sweeps across
worker processes use ``benchmarks/parallel.py``.
"""

from __future__ import annotations

import importlib
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

EXPERIMENTS = [
    "bench_e01_portability",
    "bench_e02_security_elision",
    "bench_e03_capacity_bandwidth",
    "bench_e04_piggybacking",
    "bench_e05_deadline_scheduling",
    "bench_e06_flow_control",
    "bench_e07_rms_caching",
    "bench_e08_admission",
    "bench_e09_rkom_vs_baselines",
    "bench_e10_fragmentation",
    "bench_e11_congestion",
    "bench_e12_application_mix",
    "bench_e13_fast_ack",
    "bench_e14_mux_rules_ablation",
    "bench_e15_downward_mux",
    "bench_e16_observability",
    "bench_e17_resilience",
    "bench_e18_fastpath",
    "bench_e19_msgpath",
    "bench_e20_batchdispatch",
]


def main(argv) -> int:
    wanted = [arg.lower() for arg in argv[1:]]
    failures = 0
    for name in EXPERIMENTS:
        tag = name.split("_")[1]  # e01, e02, ...
        if wanted and tag not in wanted:
            continue
        module = importlib.import_module(name)
        started = time.time()
        try:
            # run() persists the .txt table and the .metrics.json
            # snapshot for every experiment, exactly like the pytest
            # benches do.
            module.run(echo=True)
        except Exception as error:  # noqa: BLE001 - report and continue
            print(f"!! {name} failed: {error}")
            failures += 1
            continue
        print(f"[{tag}: {time.time() - started:.1f}s]\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
