"""E4 -- Figure 4 / sections 4.2-4.3.1: multiplexing and piggybacking.

Claim: multiplexing several ST RMSs onto one network RMS lets the ST
piggyback messages -- "combined and sent as a single network message,
with a possible reduction in overhead" -- while the deadline rules keep
every message within its ST delay bound.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.subtransport.config import StConfig

STREAMS = 6
MESSAGES_PER_STREAM = 100
SIZE = 64
PERIOD = 0.01


def run_case(piggyback: bool, window: float = 0.02, seed: int = 4):
    config = StConfig(
        piggyback_enabled=piggyback,
        piggyback_window_cap=window,
    )
    system = build_lan(seed=seed, st_config=config)
    params = RmsParams(
        capacity=4096,
        max_message_size=512,
        delay_bound=DelayBound(0.08, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    streams = [
        open_st_rms(system, "a", "b", params=params, port=f"pb{i}")
        for i in range(STREAMS)
    ]
    network = system.networks["ether0"]
    frames_before = network.segment.stats.frames_transmitted
    bytes_before = network.segment.stats.bytes_transmitted

    def producer(rms, offset):
        yield offset  # desynchronize slightly
        for index in range(MESSAGES_PER_STREAM):
            rms.send(bytes([index % 256]) * SIZE)
            yield PERIOD

    for index, rms in enumerate(streams):
        system.context.spawn(producer(rms, index * 0.0005))
    system.run(until=system.now + MESSAGES_PER_STREAM * PERIOD + 2.0)

    st = system.nodes["a"].st
    total_delivered = sum(r.stats.messages_delivered for r in streams)
    total_late = sum(r.stats.messages_late for r in streams)
    delays = [d for r in streams for d in r.stats.delays]
    return {
        "piggyback": piggyback,
        "delivered": total_delivered,
        "late": total_late,
        "frames": network.segment.stats.frames_transmitted - frames_before,
        "wire_bytes": network.segment.stats.bytes_transmitted - bytes_before,
        "components_per_bundle": st.stats.components_per_bundle,
        "mean_delay_ms": 1e3 * sum(delays) / max(len(delays), 1),
    }


def run_experiment():
    return [run_case(False), run_case(True)]


def render(rows) -> Table:
    table = Table(
        "E4: piggybacking small messages from 6 ST RMSs (Figure 4)",
        ["piggyback", "delivered", "late", "frames on wire", "wire bytes",
         "msgs/bundle", "mean delay (ms)"],
    )
    for row in rows:
        table.add_row(
            "on" if row["piggyback"] else "off", row["delivered"],
            row["late"], row["frames"], row["wire_bytes"],
            row["components_per_bundle"], row["mean_delay_ms"],
        )
    return table


def test_e04_piggybacking(run_once):
    rows = run_once(run_experiment)
    report("e04_piggybacking", render(rows))
    off, on = rows
    total = STREAMS * MESSAGES_PER_STREAM
    assert off["delivered"] == on["delivered"] == total
    # Piggybacking bundles messages and cuts frames and wire bytes.
    assert on["components_per_bundle"] > 1.5
    assert on["frames"] < 0.7 * off["frames"]
    assert on["wire_bytes"] < off["wire_bytes"]
    # The deadline rules keep everything within the ST delay bound.
    assert on["late"] == 0
    # Queueing for companions costs some latency, but bounded by the
    # piggyback window.
    assert on["mean_delay_ms"] < off["mean_delay_ms"] + 25.0


run = make_run("e04_piggybacking", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
