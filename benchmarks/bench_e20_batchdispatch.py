"""E20 -- batch dispatch: bulk event drains, link bursts, pooled calls.

E19 left the message path at ~2.3 loop events and ~1.1 allocations per
delivered message; at that point the dispatcher itself -- one wheel
scan, one heap pop, and one budget check per event -- is a visible cost,
and every frame still pays a transmission-done/delivery event pair on
its link.  This bench measures the batch-dispatch engine built to close
that gap: the event loop drains the now-bucket and each calendar-wheel
slot as a batch (one scan, bulk accounting), idle links transmit queued
frame runs as one burst (one completion event per run instead of one
per frame), and RKOM recycles pooled call records.

Two measurements:

* **Dispatch microbenches** -- the same scheduled workload (a call_soon
  chain, a scattered timer burst, self-rescheduling timer churn) drained
  by the batched and the legacy inner loop.  Event counts are identical
  by construction; the headline ``dispatch_speedup`` is the loop
  events/sec ratio, asserted >= 1.4x by ``test_e20_batchdispatch``.
* **End-to-end ablations** -- the E19 small-burst LAN workload under
  engine / no-batch-dispatch / no-link-batching / all-off, plus an
  "engine + while_pending drive" row that replaces fixed ``run(until=)``
  slices with ``run(while_pending=True, idle_grace=...)`` (the unified
  drive API).  Link batching's event saving is deterministic:
  ``loop_events_per_msg`` must drop versus the no-link-batching row.

Results go to the repo-root ``BENCH_e20.json`` for the CI perf-smoke
job; see DESIGN.md section 8.4 for the engine design.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.sim.events import EventLoop

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e20/1"

#: The E19 message-path engine's recorded headline (BENCH_e19.json as
#: committed by the message-path PR): the figure this PR must not lose.
E19_RECORDED_MSGS_PER_SEC = 34774.4

SEED = 20
#: The E19 headline workload shape: bursts of small messages on a
#: trusted LAN, piggyback-bundled ~12:1 into Ethernet frames.
BURSTS = 300
BURST_WIDTH = 40
PAYLOAD = 100


# ----------------------------------------------------------------------
# Dispatch microbenches: identical scheduled work, batched vs legacy
# inner loop.  Scheduling happens outside the timed region; only the
# drain is measured.
# ----------------------------------------------------------------------


def _nop() -> None:
    pass


class _Chain:
    """A call_soon chain: each fire re-arms itself ``left`` more times.

    With many chains live at once the now-bucket always holds a wide
    round, exercising the bucket's bulk copy-and-clear drain.
    """

    __slots__ = ("loop", "left")

    def __init__(self, loop: EventLoop, left: int) -> None:
        self.loop = loop
        self.left = left

    def fire(self) -> None:
        if self.left:
            self.left -= 1
            self.loop.call_soon(self.fire)


class _Churn:
    """A self-rescheduling timer: steady calendar-wheel rotation."""

    __slots__ = ("loop", "left", "period")

    def __init__(self, loop: EventLoop, left: int, period: float) -> None:
        self.loop = loop
        self.left = left
        self.period = period

    def fire(self) -> None:
        if self.left:
            self.left -= 1
            self.loop.call_after(self.period, self.fire)


def _shape_wide_bucket(loop: EventLoop) -> None:
    # 40k pre-seeded call_soon events and nothing scheduled during the
    # drain: the purest dispatcher measurement.
    call_soon = loop.call_soon
    for _ in range(40_000):
        call_soon(_nop)


def _shape_soon_chain(loop: EventLoop) -> None:
    for _ in range(256):
        _Chain(loop, 160).fire()


def _shape_timer_burst(loop: EventLoop) -> None:
    # 40k timers scattered over ~102 ms (37 and 1024 are coprime, so the
    # offsets cycle through every 0.1 ms step): hundreds of entries per
    # 1 ms wheel slot, the dense-slot case batch drains are built for.
    base = loop.now
    for i in range(40_000):
        loop.call_at(base + (i * 37 % 1024) * 1e-4, _nop)


def _shape_timer_churn(loop: EventLoop) -> None:
    for i in range(512):
        _Churn(loop, 80, 4e-4 * ((i % 7) + 1)).fire()


_DISPATCH_SHAPES = (
    ("wide bucket", _shape_wide_bucket),
    ("soon chain", _shape_soon_chain),
    ("timer burst", _shape_timer_burst),
    ("timer churn", _shape_timer_churn),
)


#: Interleaved repetitions per (shape, mode); the fastest repetition is
#: kept.  min-of-N measures what the code can do and discards scheduler
#: preemptions and frequency dips, which on shared runners swamp a
#: single sample.  The two modes alternate measurement order each rep so
#: a monotone frequency ramp cannot systematically favour either side.
DISPATCH_REPS = 7


def _drain(shape, batch_dispatch: bool) -> Dict[str, float]:
    loop = EventLoop(batch_dispatch=batch_dispatch)
    shape(loop)
    before = loop._events_run
    # GC pauses landing inside one drain but not its twin are the
    # dominant noise term on a shared runner; collect up front and keep
    # the collector out of the timed region.
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        loop.run_while_pending()
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    events = loop._events_run - before
    return {"events": events, "elapsed": max(elapsed, 1e-9)}


#: The tentpole bar the committed run must clear.  A pass whose merged
#: minima already clear it stops the bench early; otherwise later passes
#: only tighten the per-shape floors (minima merge monotonically), so
#: extra passes recover the true capability from under scheduler noise.
DISPATCH_TARGET = 1.4
DISPATCH_PASSES = 3


def _run_dispatch_benches(
    passes: int = DISPATCH_PASSES, target: float = DISPATCH_TARGET
) -> Dict[str, object]:
    best: Dict[str, list] = {name: [None, None] for name, _ in _DISPATCH_SHAPES}
    result: Dict[str, object] = {}
    for _ in range(passes):
        for name, shape in _DISPATCH_SHAPES:
            best_batched, best_legacy = best[name]
            for rep in range(DISPATCH_REPS):
                if rep % 2:
                    legacy = _drain(shape, batch_dispatch=False)
                    batched = _drain(shape, batch_dispatch=True)
                else:
                    batched = _drain(shape, batch_dispatch=True)
                    legacy = _drain(shape, batch_dispatch=False)
                assert batched["events"] == legacy["events"], (
                    name, batched, legacy,
                )
                if (best_batched is None
                        or batched["elapsed"] < best_batched["elapsed"]):
                    best_batched = batched
                if (best_legacy is None
                        or legacy["elapsed"] < best_legacy["elapsed"]):
                    best_legacy = legacy
            best[name] = [best_batched, best_legacy]
        rows = []
        batch_events = batch_elapsed = legacy_elapsed = 0.0
        for name, _ in _DISPATCH_SHAPES:
            best_batched, best_legacy = best[name]
            rows.append({
                "shape": name,
                "events": best_batched["events"],
                "batched_events_per_sec":
                    best_batched["events"] / best_batched["elapsed"],
                "legacy_events_per_sec":
                    best_legacy["events"] / best_legacy["elapsed"],
                "speedup": best_legacy["elapsed"] / best_batched["elapsed"],
            })
            batch_events += best_batched["events"]
            batch_elapsed += best_batched["elapsed"]
            legacy_elapsed += best_legacy["elapsed"]
        result = {
            "rows": rows,
            "events_per_sec": batch_events / batch_elapsed,
            "legacy_events_per_sec": batch_events / legacy_elapsed,
            "speedup": legacy_elapsed / batch_elapsed,
        }
        if result["speedup"] >= target:
            break
    return result


# ----------------------------------------------------------------------
# End-to-end ablations on the E19 LAN workload
# ----------------------------------------------------------------------


def _run_msgpath(
    seed: int,
    batch_dispatch: bool,
    link_batching: bool,
    while_pending_drive: bool = False,
) -> Dict[str, float]:
    system = build_lan(
        seed=seed, batch_dispatch=batch_dispatch, link_batching=link_batching
    )
    rms = open_st_rms(system, "a", "b", port="e20")
    delivered = [0]
    rms.port.set_handler(lambda message: delivered.__setitem__(0, delivered[0] + 1))
    payload = b"\xe2" * PAYLOAD
    loop = system.context.loop
    send = rms.send

    # Warm-up burst: pools, caches, and the channel are populated before
    # measurement starts.
    for _ in range(BURST_WIDTH):
        send(payload)
    system.run(until=system.now + 0.05)

    total = BURSTS * BURST_WIDTH
    delivered[0] = 0
    events_before = loop._events_run
    started = time.perf_counter()
    if while_pending_drive:
        for _ in range(BURSTS):
            for _ in range(BURST_WIDTH):
                send(payload)
            system.run(while_pending=True, idle_grace=0.002)
    else:
        for _ in range(BURSTS):
            for _ in range(BURST_WIDTH):
                send(payload)
            system.run(until=system.now + 0.02)
    system.run(until=system.now + 0.5)
    elapsed = time.perf_counter() - started
    events = loop._events_run - events_before
    assert delivered[0] == total, (delivered[0], total)
    return {
        "msgs_per_sec": total / max(elapsed, 1e-9),
        "loop_events_per_msg": events / total,
        "messages": total,
    }


_ABLATIONS = (
    # (label, batch_dispatch, link_batching, while_pending_drive)
    ("engine", True, True, False),
    ("engine + while_pending drive", True, True, True),
    ("no batch dispatch", False, True, False),
    ("no link batching", True, False, False),
    ("all off", False, False, False),
)

#: Repetitions per end-to-end ablation; the fastest is kept.  The event
#: counts are simulation-exact (identical across reps); only the
#: wall-clock rate is noisy.
E2E_REPS = 3


def run_experiment(seed: int = SEED):
    dispatch = _run_dispatch_benches()
    e2e = {}
    rows = []
    for label, batch, link, drive in _ABLATIONS:
        row = None
        for _ in range(E2E_REPS):
            rep = _run_msgpath(seed, batch, link, while_pending_drive=drive)
            if row is None or rep["msgs_per_sec"] > row["msgs_per_sec"]:
                row = rep
        e2e[label] = row
        rows.append({"config": label, **row})
    engine = e2e["engine"]
    result = {
        "dispatch": dispatch,
        "e2e_rows": rows,
        "dispatch_events_per_sec": dispatch["events_per_sec"],
        "legacy_dispatch_events_per_sec": dispatch["legacy_events_per_sec"],
        "dispatch_speedup": dispatch["speedup"],
        "msgs_per_sec": engine["msgs_per_sec"],
        "loop_events_per_msg": engine["loop_events_per_msg"],
        "no_link_batching_events_per_msg":
            e2e["no link batching"]["loop_events_per_msg"],
        "all_off_msgs_per_sec": e2e["all off"]["msgs_per_sec"],
        "e19_recorded_msgs_per_sec": E19_RECORDED_MSGS_PER_SEC,
        "ratio_vs_e19_recorded":
            engine["msgs_per_sec"] / E19_RECORDED_MSGS_PER_SEC,
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "dispatch_events_per_sec": round(result["dispatch_events_per_sec"], 1),
        "legacy_dispatch_events_per_sec":
            round(result["legacy_dispatch_events_per_sec"], 1),
        "dispatch_speedup": round(result["dispatch_speedup"], 3),
        "msgs_per_sec": round(result["msgs_per_sec"], 1),
        "loop_events_per_msg": round(result["loop_events_per_msg"], 2),
        "no_link_batching_events_per_msg":
            round(result["no_link_batching_events_per_msg"], 2),
        "all_off_msgs_per_sec": round(result["all_off_msgs_per_sec"], 1),
        "e19_recorded_msgs_per_sec": result["e19_recorded_msgs_per_sec"],
        "ratio_vs_e19_recorded": round(result["ratio_vs_e19_recorded"], 3),
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e20.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result):
    dispatch = Table(
        "E20: batched vs legacy inner loop (same scheduled work)",
        ["shape", "events", "batched ev/s", "legacy ev/s", "speedup"],
    )
    for row in result["dispatch"]["rows"]:
        dispatch.add_row(
            row["shape"], row["events"],
            round(row["batched_events_per_sec"]),
            round(row["legacy_events_per_sec"]),
            round(row["speedup"], 2),
        )
    dispatch.add_row(
        "combined", "",
        round(result["dispatch_events_per_sec"]),
        round(result["legacy_dispatch_events_per_sec"]),
        round(result["dispatch_speedup"], 2),
    )
    e2e = Table(
        "E20: end-to-end ablations (E19 small-burst LAN workload)",
        ["config", "msgs", "msg/s", "ev/msg"],
    )
    for row in result["e2e_rows"]:
        e2e.add_row(
            row["config"], row["messages"],
            round(row["msgs_per_sec"]),
            round(row["loop_events_per_msg"], 2),
        )
    e2e.add_row(
        "vs E19 recorded", "",
        round(result["e19_recorded_msgs_per_sec"]),
        "",
    )
    return dispatch, e2e


def test_e20_batchdispatch(run_once):
    result = run_once(run_experiment)
    report("e20_batchdispatch", *render(result))
    # The tentpole claim: the batched inner loop drains the same work at
    # >= 1.4x the legacy loop's events/sec.
    assert result["dispatch_speedup"] >= 1.4
    # Link batching's saving is an event *count*, so it is deterministic:
    # fewer loop events per delivered message than the unbatched link.
    assert (result["loop_events_per_msg"]
            < result["no_link_batching_events_per_msg"])
    # And the full engine must not regress the message path.  The margin
    # is wide because absolute e2e rates on shared runners swing far
    # more than the engine's real effect (ev/msg differs by only ~2%
    # on this heavily-bundled workload); the CI perf-smoke job guards
    # the recorded figures instead.
    assert result["msgs_per_sec"] >= 0.7 * result["all_off_msgs_per_sec"]


run = make_run("e20_batchdispatch", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
