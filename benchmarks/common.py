"""Shared machinery for the experiment benches.

Every bench builds small simulated systems, runs a workload, and renders
the series its paper claim predicts as a table.  Tables are printed (run
pytest with ``-s`` to see them) and appended to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import time
from typing import Any, Callable, Dict, Optional

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.metrics.report import Table
from repro.obs.export import flight_recorder, write_metrics_json
from repro.subtransport.config import StConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = [
    "Table",
    "bench_main",
    "best_effort_params",
    "build_lan",
    "build_wan",
    "make_run",
    "open_st_rms",
    "report",
]


def report(
    experiment: str,
    *tables: Table,
    extra: Optional[Dict[str, Any]] = None,
    obs: Optional[Any] = None,
    echo: bool = True,
    out_dir: Optional[str] = None,
) -> str:
    """Persist bench output under benchmarks/results/ (or ``out_dir``).

    Writes ``<experiment>.txt`` (the rendered tables, plus the flight
    recorder when an enabled observability facade is passed) and
    ``<experiment>.metrics.json`` (the machine-readable snapshot:
    tables, registry metrics, span summary, and ``extra`` metadata).
    """
    parts = [str(table) for table in tables]
    if obs is not None and obs.enabled:
        parts.append(flight_recorder(obs))
    text = "\n\n".join(parts)
    if echo:
        print("\n" + text)
    results_dir = out_dir or RESULTS_DIR
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, f"{experiment}.txt"), "w") as handle:
        handle.write(text + "\n")
    write_metrics_json(
        os.path.join(results_dir, f"{experiment}.metrics.json"),
        obs=obs,
        experiment=experiment,
        tables=tables,
        extra=extra,
    )
    return text


def make_run(
    experiment: str,
    run_experiment: Callable[..., Any],
    render: Callable[[Any], Any],
) -> Callable[..., Dict[str, Any]]:
    """Build the uniform ``run(seed, out_dir) -> dict`` bench entry point.

    Every ``bench_e*`` module exposes one of these: it runs the
    experiment, persists the rendered tables plus the machine-readable
    ``.metrics.json`` snapshot (to ``out_dir`` or the default results
    directory), and returns a JSON-ready summary dict.  ``seed`` is
    forwarded to ``run_experiment`` only when its signature takes one;
    passing ``seed=None`` always reproduces the committed default run.
    """

    def run(
        seed: Optional[int] = None,
        out_dir: Optional[str] = None,
        echo: bool = False,
    ) -> Dict[str, Any]:
        kwargs = {}
        if seed is not None:
            if "seed" in inspect.signature(run_experiment).parameters:
                kwargs["seed"] = seed
        started = time.time()
        result = run_experiment(**kwargs)
        rendered = render(result)
        elapsed = time.time() - started
        tables = rendered if isinstance(rendered, tuple) else (rendered,)
        obs = result.get("obs") if isinstance(result, dict) else None
        extra: Dict[str, Any] = {"elapsed_s": elapsed}
        if seed is not None:
            extra["seed"] = seed
        report(experiment, *tables, extra=extra, obs=obs, echo=echo,
               out_dir=out_dir)
        return {
            "experiment": experiment,
            "seed": seed,
            "elapsed_s": elapsed,
            "tables": [table.to_payload() for table in tables],
        }

    run.experiment = experiment
    return run


def bench_main(run: Callable[..., Dict[str, Any]], argv=None) -> int:
    """Shared CLI for the bench modules: ``python bench_eNN_x.py [...]``."""
    parser = argparse.ArgumentParser(
        description=f"Run the {getattr(run, 'experiment', 'bench')} experiment"
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's baked-in seeds")
    parser.add_argument("--out-dir", default=None,
                        help="write results here instead of benchmarks/results/")
    parser.add_argument("--json", action="store_true",
                        help="print the summary dict as JSON instead of tables")
    args = parser.parse_args(argv)
    summary = run(seed=args.seed, out_dir=args.out_dir, echo=not args.json)
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
    return 0


def build_lan(
    seed: int = 0,
    st_config: Optional[StConfig] = None,
    nodes=("a", "b"),
    cpu_policy: str = "edf",
    observe: bool = False,
    batch_dispatch: bool = True,
    **net_kwargs,
) -> DashSystem:
    """A DASH system on one Ethernet segment.

    ``batch_dispatch`` reaches the event loop; ``link_batching`` (via
    ``net_kwargs``) reaches the Ethernet segment -- together they are the
    E20 ablation knobs.
    """
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    system = DashSystem(
        seed=seed, st_config=st_config, cpu_policy=cpu_policy,
        observe=observe, batch_dispatch=batch_dispatch,
    )
    system.add_ethernet(**defaults)
    for name in nodes:
        system.add_node(name)
    return system


def build_wan(
    seed: int = 0,
    propagation: float = 0.01,
    trunk_bandwidth: float = 1.25e5,
    access_bandwidth: float = 2.5e5,
    trunk_buffer: int = 16 * 1024,
    senders=("a",),
    receiver: str = "z",
    st_config: Optional[StConfig] = None,
    observe: bool = False,
    batch_dispatch: bool = True,
    **net_kwargs,
) -> DashSystem:
    """A DASH system on a dumbbell internetwork.

    ``senders`` each get an access link to gateway g1; the g1-g2 trunk is
    the shared bottleneck; ``receiver`` hangs off g2.
    """
    defaults = dict(trusted=True)
    defaults.update(net_kwargs)
    system = DashSystem(
        seed=seed, st_config=st_config, observe=observe,
        batch_dispatch=batch_dispatch,
    )
    internet = system.add_internet(**defaults)
    internet.add_router("g1")
    internet.add_router("g2")
    for name in senders:
        system.add_node(name)
        internet.add_link(name, "g1", bandwidth=access_bandwidth,
                          propagation_delay=0.001)
    system.add_node(receiver)
    internet.add_link("g1", "g2", bandwidth=trunk_bandwidth,
                      propagation_delay=propagation,
                      buffer_bytes=trunk_buffer)
    internet.add_link("g2", receiver, bandwidth=access_bandwidth,
                      propagation_delay=0.001)
    return system


def best_effort_params(
    capacity: int = 32 * 1024,
    mms: int = 4000,
    delay: float = 0.1,
) -> RmsParams:
    return RmsParams(
        capacity=capacity,
        max_message_size=mms,
        delay_bound=DelayBound(delay, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def open_st_rms(system: DashSystem, sender: str, receiver: str,
                params: Optional[RmsParams] = None, port: str = "bench",
                fast_ack: bool = False, extra_time: float = 2.0):
    """Create an ST RMS between two nodes and wait for it."""
    params = params or best_effort_params()
    session = system.connect(
        sender, receiver, desired=params, acceptable=params,
        port=port, fast_ack=fast_ack,
    )
    system.run(until=system.now + extra_time)
    return session.established.result()
