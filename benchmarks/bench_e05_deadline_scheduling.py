"""E5 -- Section 4.1: deadline-based scheduling vs FIFO.

Claim: using RMS deadlines to order both protocol processing (CPU) and
interface transmission queues lets low-delay traffic meet its bounds in
the presence of bulk traffic.  "Compared to systems that use only
priorities (or no information at all), this optimizes usage and makes
real-time communication possible."

Workload: a 20 ms-period low-delay message stream shares a host pair
with a bulk sender that keeps the segment busy.  We compare EDF against
FIFO at the interface and CPU, measuring the low-delay class's late
fraction and delay percentiles.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.metrics.stats import summarize

RT_MESSAGES = 150
RT_PERIOD = 0.02
RT_BOUND = 0.05
BULK_SIZE = 1400
BULK_PERIOD = 0.0007  # ~2 MB/s offered on a 1.25 MB/s segment


def run_policy(policy: str, seed: int = 5):
    system = build_lan(seed=seed, queue_policy=policy, cpu_policy=policy)
    rt_params = RmsParams(
        capacity=8192,
        max_message_size=512,
        delay_bound=DelayBound(RT_BOUND, 1e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    bulk_params = RmsParams(
        capacity=96 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(2.0, 1e-5),  # high-delay class
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    rt_rms = open_st_rms(system, "a", "b", params=rt_params, port="rt")
    bulk_rms = open_st_rms(system, "a", "b", params=bulk_params, port="bulk")

    def rt_producer():
        for index in range(RT_MESSAGES):
            rt_rms.send(bytes([index % 256]) * 160)
            yield RT_PERIOD

    def bulk_producer():
        while True:
            bulk_rms.send(b"\xAA" * BULK_SIZE)
            yield BULK_PERIOD

    system.context.spawn(rt_producer())
    bulk = system.context.spawn(bulk_producer())
    system.run(until=system.now + RT_MESSAGES * RT_PERIOD + 1.0)
    bulk.stop()
    system.run(until=system.now + 1.0)

    delays = summarize(rt_rms.stats.delays).scaled(1e3)
    delivered = rt_rms.stats.messages_delivered
    return {
        "policy": policy,
        "delivered": delivered,
        "late": rt_rms.stats.messages_late,
        "late_fraction": rt_rms.stats.messages_late / max(delivered, 1),
        "p50_ms": delays.p50,
        "p95_ms": delays.p95,
        "max_ms": delays.maximum,
        "bulk_delivered": bulk_rms.stats.messages_delivered,
    }


def run_experiment():
    return [run_policy("fifo"), run_policy("edf")]


def render(rows) -> Table:
    table = Table(
        "E5: low-delay class under bulk load, FIFO vs EDF (section 4.1); "
        f"bound = {RT_BOUND * 1e3:.0f} ms",
        ["policy", "delivered", "late", "late frac", "p50 (ms)", "p95 (ms)",
         "max (ms)", "bulk msgs"],
    )
    for row in rows:
        table.add_row(row["policy"], row["delivered"], row["late"],
                      row["late_fraction"], row["p50_ms"], row["p95_ms"],
                      row["max_ms"], row["bulk_delivered"])
    return table


def test_e05_deadline_scheduling(run_once):
    rows = run_once(run_experiment)
    report("e05_deadline_scheduling", render(rows))
    fifo, edf = rows
    # EDF meets the real-time bound; FIFO leaves the class behind bulk.
    assert edf["late_fraction"] < 0.02
    assert fifo["late_fraction"] > 5 * max(edf["late_fraction"], 0.01)
    assert edf["p95_ms"] < fifo["p95_ms"]
    # The bulk class still makes progress under EDF (no starvation).
    assert edf["bulk_delivered"] > 0.5 * fifo["bulk_delivered"]


run = make_run("e05_deadline_scheduling", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
