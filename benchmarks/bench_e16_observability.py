"""E16 -- Observability overhead and telemetry export.

Claim: the observability layer is free when disabled and cheap when
enabled.  The simulator is deterministic and instrumentation consumes no
simulated time, so goodput of the E3 capacity workload must agree within
3% between observability off and on (in practice: exactly).  Wall-clock
cost is reported for the record but not asserted -- it depends on the
machine running the bench.

The enabled run also exercises the full export path: the registry
snapshot, span summary, and flight recorder land in
``benchmarks/results/e16_observability.metrics.json``, which the test
re-reads and validates as JSON.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from bench_e03_capacity_bandwidth import run_capacity
from common import RESULTS_DIR, Table, bench_main, make_run, report

CAPACITY = 8_000  # bytes; one point of the E3 sweep


def run_experiment():
    started = time.perf_counter()
    off = run_capacity(CAPACITY, observe=False)
    wall_off = time.perf_counter() - started

    started = time.perf_counter()
    on = run_capacity(CAPACITY, observe=True)
    wall_on = time.perf_counter() - started

    obs = on["system"].obs
    return {
        "off_kBps": off["measured_kBps"],
        "on_kBps": on["measured_kBps"],
        "wall_off_s": wall_off,
        "wall_on_s": wall_on,
        "traces": sum(1 for _ in obs.spans.traces()),
        "events": len(obs.spans),
        "obs": obs,
    }


def render(result) -> Table:
    table = Table(
        "E16: observability overhead (E3 workload, capacity 8 kB)",
        ["mode", "goodput (kB/s)", "wall clock (s)", "traces", "events"],
    )
    table.add_row("off", result["off_kBps"], result["wall_off_s"], 0, 0)
    table.add_row(
        "on", result["on_kBps"], result["wall_on_s"],
        result["traces"], result["events"],
    )
    return table


def test_e16_observability(run_once):
    result = run_once(run_experiment)
    report(
        "e16_observability",
        render(result),
        obs=result["obs"],
        extra={
            "wall_clock_ratio": result["wall_on_s"] / max(result["wall_off_s"], 1e-9)
        },
    )
    # Disabled observability must not change what the simulation does:
    # goodput off vs on agrees within 3% (deterministic seed -> exact).
    assert result["off_kBps"] == pytest.approx(result["on_kBps"], rel=0.03)
    # The enabled run recorded spans for the workload's messages.
    assert result["traces"] > 0
    assert result["events"] > 0
    # The exported snapshot is valid, machine-readable JSON.
    path = os.path.join(RESULTS_DIR, "e16_observability.metrics.json")
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["schema"] == 1
    assert "rms_messages_delivered" in payload["metrics"]
    assert payload["spans"]["events"] == result["events"]


run = make_run("e16_observability", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
