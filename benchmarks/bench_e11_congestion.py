"""E11 -- Sections 4.4 and 5: congestion control, RMS vs TCP + quench.

Claim: "The capacity parameter of an RMS prevents overrunning buffers in
[the network] ...  In contrast, the flow control of TCP does not protect
gateway buffers; ICMP source quench messages provide an ad hoc and often
ineffective solution."  Four senders share one slow trunk through a
gateway with a small buffer.  Under the RMS stack, deterministic
admission turns excess demand away and admitted streams see no gateway
drops; under TCP-like senders with source quench, everyone is admitted
and the gateway sheds load by dropping packets that must be retransmitted.
"""

from __future__ import annotations

from common import Table, bench_main, build_wan, make_run, report
from repro.baselines.datagram import DatagramService
from repro.baselines.tcp import TcpConfig, TcpLikeConnection
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import AdmissionError, NegotiationError
from repro.transport.flowcontrol import RateBasedEnforcer

SENDERS = 4
MESSAGES = 120
SIZE = 400
TRUNK_BW = 40_000.0  # bytes/second
TRUNK_BUFFER = 6 * 1024
DURATION = 20.0


def make_wan(seed, quench):
    return build_wan(
        seed=seed,
        senders=tuple(f"s{i}" for i in range(SENDERS)),
        receiver="z",
        trunk_bandwidth=TRUNK_BW,
        trunk_buffer=TRUNK_BUFFER,
        access_bandwidth=2.5e5,
        source_quench=quench,
    )


def run_rms(seed: int = 12):
    system = make_wan(seed, quench=False)
    internet = system.networks["internet0"]
    # Each sender asks for a deterministic stream of ~16 kB/s demand.
    params = RmsParams(
        capacity=1_600,
        max_message_size=SIZE,
        delay_bound=DelayBound(0.25, 5e-5),
        delay_bound_type=DelayBoundType.DETERMINISTIC,
    )
    admitted = []
    rejected = 0
    for index in range(SENDERS):
        st = system.nodes[f"s{index}"].st
        future = st.create_st_rms("z", port="flow", desired=params,
                                  acceptable=params)
        system.run(until=system.now + 1.0)
        if future.done and not future.failed:
            admitted.append(future.result())
        else:
            rejected += 1
            if future.done:
                try:
                    future.result()
                except (AdmissionError, NegotiationError):
                    pass
    start = system.now

    def producer(rms):
        enforcer = RateBasedEnforcer(system.context, rms.params)
        payload = b"\x11" * SIZE
        for _ in range(MESSAGES):
            enforcer.request(SIZE, lambda: rms.send(payload))
            yield rms.params.message_period()

    for rms in admitted:
        system.context.spawn(producer(rms))
    system.run(until=start + DURATION)
    delivered = sum(rms.stats.messages_delivered for rms in admitted)
    sent = sum(rms.stats.messages_sent for rms in admitted)
    return {
        "stack": "RMS (deterministic admission)",
        "flows_admitted": len(admitted),
        "flows_rejected": rejected,
        "gateway_drops": internet.total_gateway_drops(),
        "quenches": internet.quenches_sent,
        "delivered": delivered,
        "delivery_ratio": delivered / max(sent, 1),
        "goodput_kBps": delivered * SIZE / DURATION / 1e3,
    }


def run_tcp(seed: int = 12):
    system = make_wan(seed, quench=True)
    internet = system.networks["internet0"]
    receiver_dgram = DatagramService(
        system.context, system.nodes["z"].host, internet
    )
    connections = []
    for index in range(SENDERS):
        sender_dgram = DatagramService(
            system.context, system.nodes[f"s{index}"].host, internet
        )
        connections.append(
            TcpLikeConnection(
                system.context, sender_dgram, receiver_dgram,
                TcpConfig(mss=SIZE, retransmit_timeout=0.4),
            )
        )
    start = system.now

    def producer(connection):
        for index in range(MESSAGES):
            connection.send(bytes([index % 256]) * SIZE)
            yield 0.01

    for connection in connections:
        system.context.spawn(producer(connection))
    system.run(until=start + DURATION)
    delivered = sum(c.stats.segments_delivered for c in connections)
    sent = sum(c.stats.segments_sent for c in connections)
    retransmissions = sum(c.stats.retransmissions for c in connections)
    return {
        "stack": "TCP-like + source quench",
        "flows_admitted": SENDERS,
        "flows_rejected": 0,
        "gateway_drops": internet.total_gateway_drops(),
        "quenches": internet.quenches_sent,
        "delivered": delivered,
        "delivery_ratio": delivered / max(sent, 1),
        "goodput_kBps": delivered * SIZE / DURATION / 1e3,
        "retransmissions": retransmissions,
    }


def run_experiment():
    return [run_rms(), run_tcp()]


def render(rows) -> Table:
    table = Table(
        f"E11: {SENDERS} senders through a {TRUNK_BW / 1e3:.0f} kB/s trunk "
        f"with {TRUNK_BUFFER}B gateway buffer (section 4.4)",
        ["stack", "admitted", "rejected", "gateway drops", "quenches",
         "delivered", "delivery ratio", "goodput (kB/s)"],
    )
    for row in rows:
        table.add_row(row["stack"], row["flows_admitted"],
                      row["flows_rejected"], row["gateway_drops"],
                      row["quenches"], row["delivered"],
                      row["delivery_ratio"], row["goodput_kBps"])
    return table


def test_e11_congestion(run_once):
    rows = run_once(run_experiment)
    report("e11_congestion", render(rows))
    rms, tcp = rows
    # RMS admission turns away what the trunk cannot carry, and what it
    # admits flows without a single gateway drop.
    assert rms["flows_rejected"] > 0
    assert rms["gateway_drops"] == 0
    assert rms["delivery_ratio"] > 0.999
    # TCP admits everyone; the gateway sheds load by dropping, quenches
    # fly, and delivered/sent reflects wasted retransmissions.
    assert tcp["gateway_drops"] > 0
    assert tcp["quenches"] > 0
    assert tcp["delivery_ratio"] < rms["delivery_ratio"]


run = make_run("e11_congestion", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
