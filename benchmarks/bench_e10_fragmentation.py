"""E10 -- Section 4.3: choosing the ST maximum message size.

Claim: "A maximum message size is chosen with the object of maximizing
potential throughput based on the combination of network RMS error rate
and context switch time."  Small ST messages pay per-message protocol
and context-switch overhead; large ones amplify loss because the ST does
not retransmit fragments -- one corrupted fragment discards the whole
message.  Throughput therefore peaks at an intermediate size.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams

TOTAL_BYTES = 600_000
BIT_ERROR_RATE = 4e-6  # ~4.6% per 1500B frame
SIZES = [250, 1_000, 3_000, 6_000, 12_000]


def run_size(message_size: int, seed: int = 11):
    system = build_lan(
        seed=seed,
        link_checksum=False,  # ST must checksum in software
        bit_error_rate=BIT_ERROR_RATE,
    )
    params = RmsParams(
        capacity=64 * 1024,
        max_message_size=message_size,
        delay_bound=DelayBound(0.5, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    rms = open_st_rms(system, "a", "b", params=params,
                      port=f"frag{message_size}")
    messages = TOTAL_BYTES // message_size
    delivered = {"bytes": 0, "last": None}

    def on_message(message):
        delivered["bytes"] += message.size
        delivered["last"] = system.now

    rms.port.set_handler(on_message)
    start = system.now
    sender_cpu_before = system.nodes["a"].cpu.busy_time
    switches_before = system.nodes["a"].cpu.context_switches

    def producer():
        # Paced by *wire* bytes just below the 1.25 MB/s line rate, so
        # per-message overhead and corruption -- not congestion -- set
        # the goodput.  Each fragment costs a subheader plus framing.
        frag_payload = 1500 - 2 - 22 - 8
        fragments = -(-message_size // frag_payload)
        wire_bytes = message_size + fragments * 50
        pace = wire_bytes / 1.1e6
        for index in range(messages):
            rms.send(bytes([index % 256]) * message_size)
            yield pace

    system.context.spawn(producer())
    system.run(until=system.now + 60.0)
    span = (delivered["last"] or system.now) - start
    st_b = system.nodes["b"].st
    return {
        "size": message_size,
        "sent": messages,
        "goodput_kBps": delivered["bytes"] / max(span, 1e-9) / 1e3,
        "loss_fraction": 1.0 - delivered["bytes"] / TOTAL_BYTES,
        "checksum_drops": st_b.stats.checksum_drops,
        "partials_discarded": st_b.stats.partials_discarded,
        "sender_cpu_ms": (system.nodes["a"].cpu.busy_time - sender_cpu_before)
        * 1e3,
    }


def run_experiment():
    return [run_size(size) for size in SIZES]


def render(rows) -> Table:
    table = Table(
        f"E10: throughput vs ST maximum message size at BER "
        f"{BIT_ERROR_RATE:g} (section 4.3, no fragment retransmission)",
        ["ST msg size (B)", "goodput (kB/s)", "loss frac", "checksum drops",
         "partials discarded", "sender CPU (ms)"],
    )
    for row in rows:
        table.add_row(row["size"], row["goodput_kBps"], row["loss_fraction"],
                      row["checksum_drops"], row["partials_discarded"],
                      row["sender_cpu_ms"])
    return table


def test_e10_fragmentation(run_once):
    rows = run_once(run_experiment)
    report("e10_fragmentation", render(rows))
    by_size = {row["size"]: row for row in rows}
    goodputs = [row["goodput_kBps"] for row in rows]
    best = max(range(len(rows)), key=lambda i: goodputs[i])
    # The optimum is interior: neither the smallest nor the largest size.
    assert 0 < best < len(rows) - 1
    # Small messages burn more sender CPU per byte (per-message costs).
    assert by_size[250]["sender_cpu_ms"] > by_size[3000]["sender_cpu_ms"]
    # Large messages lose more data (loss amplification across fragments).
    assert by_size[12_000]["loss_fraction"] > by_size[1_000]["loss_fraction"]


run = make_run("e10_fragmentation", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
