"""E21 -- secured-channel throughput: the vectorized transform engine.

E19/E20 made the *plain* datapath cheap, which left software security as
the dominant per-byte cost on untrusted media: the scalar XTEA keystream
runs the 32-round loop once per 8-byte block, and the MAC walks the
message again.  This bench measures the provider engine built to close
that gap (``repro.security.providers``): the ``"xtea-ct"`` provider
generates keystream in wide batches -- many counter blocks packed into
64-bit lanes of one big int, the round loop run once per batch -- XORs
it in one big-int operation, and computes the polynomial MAC in a single
pass over a memoryview.

The headline workload is bulk transfer over an *untrusted* Ethernet
with privacy and authentication requested, so every fragment is sealed
and tagged in software -- the configuration section 3.1 says must still
be cheap because only channels that *ask* for security pay for it.  The
claim, asserted by ``test_e21_securedpath``:

* >= 3x secured bytes/sec over the byte-identical scalar oracle
  (``StConfig(security_provider="xtea-ct-ref")``, the in-process
  ablation), with ciphertext and MAC tags equal byte-for-byte;
* the ``"null"`` provider row bounds what the crypto costs end-to-end.

A piggybacked small-message mix is reported (not gated: small messages
amortize little per-call overhead) plus raw transform microbenches.
Results go to the repo-root ``BENCH_e21.json`` for the CI perf-smoke
job; see DESIGN.md section 8.5 for the schema.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.security.providers import resolve_provider
from repro.subtransport.config import StConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e21/1"

SEED = 21
#: Bulk transfer: client messages far above the Ethernet MTU, so each
#: fragments into ~6 frames and the per-byte transforms dominate.
BULK_PAYLOAD = 8000
BULK_BURSTS = 30
BULK_BURST_WIDTH = 4
#: The E19 small-message mix on the same untrusted medium: piggybacked
#: 100-byte messages, where per-call overhead rivals per-byte cost.
SMALL_PAYLOAD = 100
SMALL_BURSTS = 150
SMALL_BURST_WIDTH = 40

#: Transform microbench buffer (one keystream/MAC call per iteration).
MICRO_BYTES = 1 << 16
KEY = bytes(range(16))

PROVIDERS = ("xtea-ct", "xtea-ct-ref", "null")


def _run_workload(
    seed: int,
    provider: str,
    payload_bytes: int,
    bursts: int,
    burst_width: int,
) -> Dict[str, float]:
    """Push secured traffic a->b over an untrusted LAN; return rates."""
    system = build_lan(
        seed=seed,
        st_config=StConfig(security_provider=provider),
        trusted=False,
    )
    params = RmsParams(
        privacy=True,
        authentication=True,
        capacity=64 * 1024,
        max_message_size=BULK_PAYLOAD,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    rms = open_st_rms(system, "a", "b", params=params, port="e21")
    assert rms.plan.encrypt and rms.plan.mac, "medium must force software security"
    delivered = [0, 0]

    def on_message(message):
        delivered[0] += 1
        delivered[1] += len(message.payload)

    rms.port.set_handler(on_message)
    payload = b"\xe2" * payload_bytes
    send = rms.send
    run = system.run

    # Warm-up burst: pools, caches, and the provider's lane constants.
    for _ in range(burst_width):
        send(payload)
    run(until=system.now + 0.1)

    total = bursts * burst_width
    delivered[0] = delivered[1] = 0
    started = time.perf_counter()
    for _ in range(bursts):
        for _ in range(burst_width):
            send(payload)
        run(until=system.now + 0.1)
    run(until=system.now + 1.0)
    elapsed = time.perf_counter() - started
    assert delivered[0] == total, (provider, delivered[0], total)
    return {
        "bytes_per_sec": delivered[1] / max(elapsed, 1e-9),
        "msgs_per_sec": total / max(elapsed, 1e-9),
        "messages": total,
        "payload_bytes": payload_bytes,
    }


def _microbench(provider_name: str) -> Dict[str, float]:
    """Raw transform rates, out of the simulator: one provider instance,
    repeated keystream/MAC calls over a 64 KiB buffer."""
    provider = resolve_provider(provider_name)(KEY)
    buffer = b"\xab" * MICRO_BYTES

    def rate(call) -> float:
        call(0)  # warm caches outside the timed region
        iterations = 0
        started = time.perf_counter()
        while True:
            call(iterations + 1)
            iterations += 1
            elapsed = time.perf_counter() - started
            if elapsed >= 0.15 and iterations >= 3:
                return iterations * MICRO_BYTES / elapsed / 1e6

    return {
        "keystream_mb_per_sec": rate(lambda n: provider.keystream(n, MICRO_BYTES)),
        "mac_mb_per_sec": rate(lambda n: provider.mac(buffer, b"ctx")),
    }


def run_experiment(seed: int = SEED):
    bulk = {
        name: _run_workload(seed, name, BULK_PAYLOAD, BULK_BURSTS, BULK_BURST_WIDTH)
        for name in PROVIDERS
    }
    small = {
        name: _run_workload(
            seed, name, SMALL_PAYLOAD, SMALL_BURSTS, SMALL_BURST_WIDTH
        )
        for name in ("xtea-ct", "xtea-ct-ref")
    }
    micro = {name: _microbench(name) for name in ("xtea-ct", "xtea-ct-ref")}

    fast = bulk["xtea-ct"]
    scalar = bulk["xtea-ct-ref"]
    result = {
        "bulk": bulk,
        "small": small,
        "micro": micro,
        "secured_bytes_per_sec": fast["bytes_per_sec"],
        "scalar_bytes_per_sec": scalar["bytes_per_sec"],
        "speedup_vs_scalar": fast["bytes_per_sec"] / max(scalar["bytes_per_sec"], 1e-9),
        "null_bytes_per_sec": bulk["null"]["bytes_per_sec"],
        "small_mix_speedup": (
            small["xtea-ct"]["msgs_per_sec"]
            / max(small["xtea-ct-ref"]["msgs_per_sec"], 1e-9)
        ),
        "keystream_speedup": (
            micro["xtea-ct"]["keystream_mb_per_sec"]
            / max(micro["xtea-ct-ref"]["keystream_mb_per_sec"], 1e-9)
        ),
        "mac_speedup": (
            micro["xtea-ct"]["mac_mb_per_sec"]
            / max(micro["xtea-ct-ref"]["mac_mb_per_sec"], 1e-9)
        ),
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "secured_bytes_per_sec": round(result["secured_bytes_per_sec"], 1),
        "scalar_bytes_per_sec": round(result["scalar_bytes_per_sec"], 1),
        "speedup_vs_scalar": round(result["speedup_vs_scalar"], 3),
        "null_bytes_per_sec": round(result["null_bytes_per_sec"], 1),
        "small_mix_speedup": round(result["small_mix_speedup"], 3),
        "keystream_mb_per_sec": round(
            result["micro"]["xtea-ct"]["keystream_mb_per_sec"], 2
        ),
        "keystream_speedup": round(result["keystream_speedup"], 3),
        "mac_speedup": round(result["mac_speedup"], 3),
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e21.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result) -> Table:
    table = Table(
        "E21: secured-channel throughput by provider (untrusted LAN)",
        ["workload", "provider", "msgs", "bytes/s", "msg/s", "vs scalar"],
    )
    scalar_bulk = result["bulk"]["xtea-ct-ref"]["bytes_per_sec"]
    for name in PROVIDERS:
        row = result["bulk"][name]
        table.add_row(
            "bulk 8000B", name, row["messages"],
            round(row["bytes_per_sec"]),
            round(row["msgs_per_sec"]),
            round(row["bytes_per_sec"] / max(scalar_bulk, 1e-9), 2),
        )
    for name in ("xtea-ct", "xtea-ct-ref"):
        row = result["small"][name]
        table.add_row(
            "small 100B mix", name, row["messages"],
            round(row["bytes_per_sec"]),
            round(row["msgs_per_sec"]),
            "",
        )
    micro_table = Table(
        "E21: raw transform rates (64 KiB calls)",
        ["provider", "keystream MB/s", "MAC MB/s"],
    )
    for name in ("xtea-ct", "xtea-ct-ref"):
        micro = result["micro"][name]
        micro_table.add_row(
            name,
            round(micro["keystream_mb_per_sec"], 1),
            round(micro["mac_mb_per_sec"], 1),
        )
    return table, micro_table


def test_e21_securedpath(run_once):
    result = run_once(run_experiment)
    report("e21_securedpath", *render(result))
    # The tentpole claim: >= 3x secured end-to-end throughput with the
    # vectorized engine over the byte-identical scalar oracle.
    assert result["speedup_vs_scalar"] >= 3.0
    # Crypto elided must not be slower than crypto present.
    assert result["null_bytes_per_sec"] >= result["secured_bytes_per_sec"] * 0.9
    # The raw keystream engine is where the ratio comes from.
    assert result["keystream_speedup"] >= 3.0
    # Small piggybacked messages must not regress under the engine.
    assert result["small_mix_speedup"] >= 0.9


run = make_run("e21_securedpath", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
