"""E9 -- Sections 1 and 3.3: RKOM and streams vs the classic baselines.

Two claims:

1. RKOM's channel rides low-delay RMSs, so under load its requests get
   deadline-priority queueing that a datagram RPC (no deadlines) cannot
   have -- "the RMS features serve to optimize request/reply
   performance."
2. "Request/reply communication primitives will not be sufficient,
   because they cannot efficiently provide stream-style communication
   ... on high-delay long-distance networks": a closed-loop
   request/reply carrying media packets is RTT-bound, while an RMS
   stream pipelines.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, build_wan, make_run, open_st_rms, report
from repro.apps.rpcload import RpcWorkload
from repro.baselines.datagram import DatagramService
from repro.baselines.rpc import DatagramRpc
from repro.core.params import DelayBound, DelayBoundType, RmsParams


def run_rpc_under_load(kind: str, seed: int = 9):
    """Part 1: RPC latency with a bulk sender congesting the segment."""
    system = build_lan(seed=seed)
    node_a, node_b = system.nodes["a"], system.nodes["b"]
    network = system.networks["ether0"]
    if kind == "rkom":
        service_a = node_a.rkom
        node_b.rkom.register_handler("echo", lambda payload, src: payload)
    else:
        dgram_a = DatagramService(system.context, node_a.host, network)
        dgram_b = DatagramService(system.context, node_b.host, network)
        service_a = DatagramRpc(system.context, dgram_a)
        rpc_b = DatagramRpc(system.context, dgram_b)
        rpc_b.register_handler("echo", lambda payload, src: payload)
    # Warm the path before applying load.
    warm = service_a.call("b", "echo", b"warm")
    system.run(until=system.now + 5.0)
    assert not warm.failed
    # Bulk high-delay traffic from a to b congests the segment.
    bulk_params = RmsParams(
        capacity=96 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(2.0, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    bulk = open_st_rms(system, "a", "b", params=bulk_params, port="bulk")

    def bulk_producer():
        # Bursty bulk: saturating bursts with short gaps, so the
        # deadline-less baseline completes (slowly) rather than starving.
        while True:
            for _ in range(20):
                bulk.send(b"\xAA" * 1400)
            yield 0.035

    bulk_process = system.context.spawn(bulk_producer())
    workload = RpcWorkload(system.context, service_a, "b", clients=1,
                           calls_per_client=40, think_time=0.01,
                           request_bytes=64)
    system.run(until=system.now + 30.0)
    bulk_process.stop()
    rtt = workload.report().rtt.scaled(1e3)
    return {
        "system": "RKOM (deadline RMS)" if kind == "rkom" else
                  "datagram RPC (no deadlines)",
        "completed": workload.report().calls_completed,
        "p50_ms": rtt.p50,
        "p95_ms": rtt.p95,
    }


VOICE_PACKETS = 150
VOICE_PERIOD = 0.02


def run_media_transport(kind: str, seed: int = 10):
    """Part 2: 50 pkt/s voice over a 100 ms-RTT path, stream vs RPC."""
    system = build_wan(seed=seed, propagation=0.05, senders=("a",),
                       receiver="b")
    node_a, node_b = system.nodes["a"], system.nodes["b"]
    delivered = {"n": 0, "last": None}
    start = None
    if kind == "stream":
        params = RmsParams(
            capacity=16 * 1024,
            max_message_size=512,
            delay_bound=DelayBound(0.3, 1e-4),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        rms = open_st_rms(system, "a", "b", params=params, port="voice")

        def on_message(message):
            delivered["n"] += 1
            delivered["last"] = system.now

        rms.port.set_handler(on_message)
        start = system.now

        def producer():
            for index in range(VOICE_PACKETS):
                rms.send(bytes([index % 256]) * 160)
                yield VOICE_PERIOD

        system.context.spawn(producer())
    else:
        node_b.rkom.register_handler("pkt", lambda payload, src: b"")
        start = system.now

        def producer():
            # Closed loop: each packet is a request awaiting its reply,
            # as a request/reply-only kernel would deliver a stream.
            for index in range(VOICE_PACKETS):
                try:
                    yield node_a.rkom.call("b", "pkt", bytes([index % 256]) * 160)
                except Exception:
                    continue
                delivered["n"] += 1
                delivered["last"] = system.now

        system.context.spawn(producer())
    system.run(until=system.now + 60.0)
    span = (delivered["last"] or system.now) - start
    achieved = delivered["n"] / max(span, 1e-9)
    return {
        "transport": "RMS stream" if kind == "stream" else "request/reply",
        "delivered": delivered["n"],
        "achieved_pps": achieved,
        "needed_pps": 1.0 / VOICE_PERIOD,
    }


def run_experiment():
    return (
        [run_rpc_under_load("rkom"), run_rpc_under_load("dgram")],
        [run_media_transport("stream"), run_media_transport("rpc")],
    )


def render(results):
    rpc_rows, media_rows = results
    first = Table(
        "E9a: RPC latency under bulk congestion (section 3.3)",
        ["system", "completed", "p50 (ms)", "p95 (ms)"],
    )
    for row in rpc_rows:
        first.add_row(row["system"], row["completed"], row["p50_ms"],
                      row["p95_ms"])
    second = Table(
        "E9b: 50 pkt/s voice over a ~100 ms-RTT path (section 1)",
        ["transport", "delivered", "achieved pkt/s", "needed pkt/s"],
    )
    for row in media_rows:
        second.add_row(row["transport"], row["delivered"],
                       row["achieved_pps"], row["needed_pps"])
    return first, second


def test_e09_rkom_vs_baselines(run_once):
    rpc_rows, media_rows = run_once(run_experiment)
    first, second = render((rpc_rows, media_rows))
    report("e09_rkom_vs_baselines", first)
    text = str(first) + "\n\n" + str(second)
    print("\n" + str(second))
    import os
    from common import RESULTS_DIR
    with open(os.path.join(RESULTS_DIR, "e09_rkom_vs_baselines.txt"), "w") as f:
        f.write(text + "\n")
    rkom, dgram = rpc_rows
    # Deadline-scheduled RKOM stays fast under congestion; the
    # deadline-less baseline queues behind bulk.
    assert rkom["completed"] == 40
    assert dgram["completed"] >= 30
    assert dgram["p95_ms"] > 0
    assert rkom["p95_ms"] < 0.6 * dgram["p95_ms"]
    stream, rpc = media_rows
    # The stream sustains the media rate; closed-loop request/reply is
    # RTT-bound far below it.
    assert stream["achieved_pps"] > 0.9 * stream["needed_pps"]
    assert rpc["achieved_pps"] < 0.5 * rpc["needed_pps"]


run = make_run("e09_rkom_vs_baselines", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
