"""E2 -- Section 2.5: parameter-driven elision of security mechanisms.

Claim: because RMS parameters tell the ST what the client needs *and*
the network properties tell it what the medium provides, the ST runs
software encryption/MAC/checksum only when strictly necessary.  CPU time
and delay drop on trusted or link-encrypted networks without losing the
requested properties.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams

MESSAGES = 150
SIZE = 1000


def secure_params():
    return RmsParams(
        privacy=True,
        authentication=True,
        capacity=32 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(0.1, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def run_case(label, privacy=True, **net_kwargs):
    system = build_lan(seed=2, **net_kwargs)
    params = secure_params()
    if not privacy:
        params = params.with_(privacy=False, authentication=False)
    rms = open_st_rms(system, "a", "b", params=params, port="secure")
    cpu_before = system.nodes["a"].cpu.busy_time
    start = system.now
    finish = {"at": None}
    count = {"n": 0}

    def on_message(message):
        count["n"] += 1
        if count["n"] == MESSAGES:
            finish["at"] = system.now

    rms.port.set_handler(on_message)

    def producer():
        for index in range(MESSAGES):
            rms.send(bytes([index % 256]) * SIZE)
            yield 0.002

    system.context.spawn(producer())
    system.run(until=system.now + 30.0)
    elapsed = (finish["at"] or system.now) - start
    cpu_used = system.nodes["a"].cpu.busy_time - cpu_before
    return {
        "case": label,
        "plan": rms.plan,
        "delivered": count["n"],
        "sender_cpu_ms": cpu_used * 1e3,
        "mean_delay_ms": rms.stats.mean_delay * 1e3,
        "throughput_kBps": count["n"] * SIZE / max(elapsed, 1e-9) / 1e3,
    }


def run_experiment():
    return [
        run_case("trusted net, privacy requested", trusted=True),
        run_case("link-encryption hw, privacy requested",
                 trusted=False, link_encryption=True),
        run_case("untrusted net, privacy requested", trusted=False),
        run_case("untrusted net, no privacy needed",
                 trusted=False, privacy=False),
    ]


def render(rows) -> Table:
    table = Table(
        "E2: security-mechanism elision by RMS parameters (section 2.5)",
        ["case", "sw encrypt", "sw MAC", "sender CPU (ms)",
         "mean delay (ms)", "throughput (kB/s)"],
    )
    for row in rows:
        table.add_row(
            row["case"], row["plan"].encrypt, row["plan"].mac,
            row["sender_cpu_ms"], row["mean_delay_ms"],
            row["throughput_kBps"],
        )
    return table


def test_e02_security_elision(run_once):
    rows = run_once(run_experiment)
    report("e02_security_elision", render(rows))
    trusted, link_enc, untrusted, no_need = rows
    for row in rows:
        assert row["delivered"] == MESSAGES
    # Only the untrusted+privacy case runs software mechanisms.
    assert untrusted["plan"].encrypt and untrusted["plan"].mac
    assert not trusted["plan"].encrypt and not link_enc["plan"].encrypt
    assert not no_need["plan"].encrypt
    # Elision recovers CPU: software crypto costs measurably more.
    assert untrusted["sender_cpu_ms"] > 1.2 * trusted["sender_cpu_ms"]
    assert untrusted["sender_cpu_ms"] > 1.2 * no_need["sender_cpu_ms"]
    # "If a client does not require privacy, no mechanism is used": the
    # no-privacy case on the untrusted net matches the trusted-net cost.
    assert abs(no_need["sender_cpu_ms"] - trusted["sender_cpu_ms"]) < (
        0.2 * trusted["sender_cpu_ms"] + 1e-6
    )


run = make_run("e02_security_elision", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
