"""E3 -- Section 2.2: the capacity/delay-bound bandwidth identity.

Claim: an RMS with capacity C and worst-case delay D for a maximum-size
message implicitly guarantees about C/D bytes per second -- a client
sending a max-size message every D*M/C seconds never violates the
capacity rule.  We sweep C with fixed D and check measured goodput of a
rate-enforced sender tracks C/D until the medium saturates.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.transport.flowcontrol import RateBasedEnforcer

DELAY = 0.05  # seconds
MESSAGE = 1000  # bytes
DURATION = 4.0


def run_capacity(capacity: int, seed: int = 3, observe: bool = False):
    system = build_lan(seed=seed, observe=observe)
    params = RmsParams(
        capacity=capacity,
        max_message_size=MESSAGE,
        delay_bound=DelayBound(DELAY, 0.0),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    rms = open_st_rms(system, "a", "b", params=params, port=f"cap{capacity}")
    enforcer = RateBasedEnforcer(system.context, rms.params)
    delivered = {"bytes": 0, "last": None}
    start = system.now

    def on_message(message):
        delivered["bytes"] += message.size
        delivered["last"] = system.now

    rms.port.set_handler(on_message)
    payload = b"\x55" * MESSAGE

    def producer():
        while system.now - start < DURATION:
            enforcer.request(MESSAGE, lambda: rms.send(payload))
            yield rms.params.message_period() / 4  # offer faster than allowed
        return None

    system.context.spawn(producer())
    system.run(until=start + DURATION + 2.0)
    span = (delivered["last"] or system.now) - start
    goodput = delivered["bytes"] / max(span, 1e-9)
    return {
        "capacity": rms.params.capacity,
        "predicted_kBps": rms.params.implied_bandwidth() / 1e3,
        "measured_kBps": goodput / 1e3,
        "violations": rms.stats.capacity_violations,
        "system": system,  # for E16's observability overhead probe
    }


def run_experiment():
    return [run_capacity(c) for c in (2_000, 4_000, 8_000, 16_000, 32_000)]


def render(rows) -> Table:
    table = Table(
        "E3: implied bandwidth ~ C/D (section 2.2); D = 50 ms",
        ["capacity (B)", "predicted C/D (kB/s)", "measured (kB/s)",
         "ratio", "capacity violations"],
    )
    for row in rows:
        ratio = row["measured_kBps"] / max(row["predicted_kBps"], 1e-9)
        table.add_row(row["capacity"], row["predicted_kBps"],
                      row["measured_kBps"], ratio, row["violations"])
    return table


def test_e03_capacity_bandwidth(run_once):
    rows = run_once(run_experiment)
    report("e03_capacity_bandwidth", render(rows))
    # Measured goodput tracks C/D within 25% across the sweep, and the
    # rate-enforced client never violates the capacity rule.
    for row in rows:
        assert row["violations"] == 0
        ratio = row["measured_kBps"] / row["predicted_kBps"]
        assert 0.7 < ratio <= 1.1
    # Monotone in capacity.
    measured = [row["measured_kBps"] for row in rows]
    assert measured == sorted(measured)


run = make_run("e03_capacity_bandwidth", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
