"""E19 -- message-path throughput: coalesced timers + cached contexts.

E18 established that the event loop itself runs ~840k events/sec, yet
the message path it measured delivered only ~9.8k msgs/sec -- roughly 85
loop events and 2.36 allocations per delivered client message.  This
bench measures the message-path engine built to close that gap:
per-peer ``TimerGroup`` deadline coalescing, security contexts cached at
negotiation time, the flow-control ``try_admit`` fast path, and the
fused send/deliver datapath (``fast_message``, ``send_data_fast``).

The headline workload is the one the paper's piggybacking argument is
about: sustained bursts of small messages on a trusted LAN, where
bundling -- not a faster scheduler -- is what lifts messages/sec.  The
claim, asserted by ``test_e19_msgpath``:

* >= 2x msgs/sec over the PR 3 message-path baseline (the committed
  ``BENCH_e18.json`` figure of 9,816.4 msgs/sec, embedded below), and
* <= 20 loop events per delivered message (down from ~85),
* with timer events per message reported (TimerGroup loop-timer fires).

An in-process ablation (``StConfig(coalesced_timers=False,
message_fastpath=False)``) runs the same workload with the engine off
and is reported as ``legacy_msgs_per_sec`` / ``speedup_vs_legacy`` --
a same-interpreter, same-machine sanity ratio alongside the recorded
cross-PR baseline.  Results go to the repo-root ``BENCH_e19.json`` for
the CI perf-smoke job; see DESIGN.md's "Performance" section for the
schema.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, Optional

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.subtransport.config import StConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e19/1"

#: The PR 3 message-path baseline: ``msgs_per_sec`` from BENCH_e18.json
#: as committed by the fast-path-engine PR (its LAN end-to-end row, the
#: figure the ISSUE's "85 loop events per message" derives from).
PR3_MSGS_PER_SEC = 9816.4

SEED = 19
#: Sustained piggybacked traffic: bursts of small messages that the
#: piggyback queue bundles ~12:1 into 1500-byte Ethernet frames.
BURSTS = 400
BURST_WIDTH = 40
SMALL_PAYLOAD = 100
#: A no-bundling control row: each message fills most of an MTU, so the
#: path runs one frame per message (the E18 message shape, sustained).
#: Bursts stay narrow enough to fit the 20 ms window at wire speed.
BIG_PAYLOAD = 1400
BIG_BURSTS = 300
BIG_BURST_WIDTH = 10

LEGACY_CONFIG = StConfig(coalesced_timers=False, message_fastpath=False)


def _timer_fires(system) -> int:
    """Loop-timer firings of every TimerGroup in the system (ST per-peer
    groups and the RKOM services' timeout groups)."""
    fires = 0
    for node in system.nodes.values():
        for peer in node.st._peers.values():
            if peer.timers is not None:
                fires += peer.timers.fires
        fires += node.rkom._timers.fires
    return fires


def _run_workload(
    seed: int,
    st_config: Optional[StConfig],
    payload_bytes: int,
    bursts: int,
    burst_width: int,
) -> Dict[str, float]:
    """Push ``bursts * burst_width`` messages a->b; return rates."""
    system = build_lan(seed=seed, st_config=st_config)
    rms = open_st_rms(system, "a", "b", port="e19")
    delivered = [0]
    rms.port.set_handler(lambda message: delivered.__setitem__(0, delivered[0] + 1))
    payload = b"\xe1" * payload_bytes
    loop = system.context.loop
    send = rms.send
    run = system.run

    # One warm-up burst so pools and caches are populated before the
    # allocation measurement starts.
    for _ in range(burst_width):
        send(payload)
    run(until=system.now + 0.05)

    total = bursts * burst_width
    delivered[0] = 0
    events_before = loop._events_run
    timer_before = _timer_fires(system)
    get_blocks = getattr(sys, "getallocatedblocks", lambda: 0)
    blocks_before = get_blocks()
    started = time.perf_counter()
    for _ in range(bursts):
        for _ in range(burst_width):
            send(payload)
        run(until=system.now + 0.02)
    run(until=system.now + 0.5)
    elapsed = time.perf_counter() - started
    blocks_after = get_blocks()
    events = loop._events_run - events_before
    timer_fires = _timer_fires(system) - timer_before
    assert delivered[0] == total, (delivered[0], total)
    return {
        "msgs_per_sec": total / max(elapsed, 1e-9),
        "loop_events_per_msg": events / total,
        "timer_events_per_msg": timer_fires / total,
        "allocs_per_msg": max(0, blocks_after - blocks_before) / total,
        "messages": total,
    }


def run_experiment(seed: int = SEED):
    rows = []
    for name, size, bursts, width in (
        ("small bursts (bundled)", SMALL_PAYLOAD, BURSTS, BURST_WIDTH),
        ("MTU-filling (unbundled)", BIG_PAYLOAD, BIG_BURSTS, BIG_BURST_WIDTH),
    ):
        fast = _run_workload(seed, None, size, bursts, width)
        legacy = _run_workload(seed, LEGACY_CONFIG, size, bursts, width)
        rows.append({
            "workload": name,
            "fast": fast,
            "legacy": legacy,
            "speedup": fast["msgs_per_sec"] / max(legacy["msgs_per_sec"], 1e-9),
        })
    headline = rows[0]
    fast = headline["fast"]
    result = {
        "rows": rows,
        "msgs_per_sec": fast["msgs_per_sec"],
        "legacy_msgs_per_sec": headline["legacy"]["msgs_per_sec"],
        "speedup_vs_legacy": headline["speedup"],
        "pr3_recorded_msgs_per_sec": PR3_MSGS_PER_SEC,
        "speedup_vs_pr3_recorded": fast["msgs_per_sec"] / PR3_MSGS_PER_SEC,
        "loop_events_per_msg": fast["loop_events_per_msg"],
        "timer_events_per_msg": fast["timer_events_per_msg"],
        "allocs_per_msg": fast["allocs_per_msg"],
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "msgs_per_sec": round(result["msgs_per_sec"], 1),
        "legacy_msgs_per_sec": round(result["legacy_msgs_per_sec"], 1),
        "speedup_vs_legacy": round(result["speedup_vs_legacy"], 3),
        "pr3_recorded_msgs_per_sec": result["pr3_recorded_msgs_per_sec"],
        "speedup_vs_pr3_recorded": round(result["speedup_vs_pr3_recorded"], 3),
        "loop_events_per_msg": round(result["loop_events_per_msg"], 2),
        "timer_events_per_msg": round(result["timer_events_per_msg"], 3),
        "allocs_per_msg": round(result["allocs_per_msg"], 2),
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e19.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result) -> Table:
    table = Table(
        "E19: message-path engine vs per-message timers",
        ["workload", "msgs", "engine msg/s", "ablation msg/s", "speedup",
         "ev/msg", "timer-ev/msg", "allocs/msg"],
    )
    for row in result["rows"]:
        fast = row["fast"]
        table.add_row(
            row["workload"], fast["messages"],
            round(fast["msgs_per_sec"]),
            round(row["legacy"]["msgs_per_sec"]),
            round(row["speedup"], 2),
            round(fast["loop_events_per_msg"], 2),
            round(fast["timer_events_per_msg"], 3),
            round(fast["allocs_per_msg"], 2),
        )
    table.add_row(
        "vs PR 3 recorded", "",
        round(result["msgs_per_sec"]),
        round(result["pr3_recorded_msgs_per_sec"]),
        round(result["speedup_vs_pr3_recorded"], 2),
        "", "", "",
    )
    return table


def test_e19_msgpath(run_once):
    result = run_once(run_experiment)
    report("e19_msgpath", render(result))
    # The tentpole claim: >= 2x msgs/sec over the PR 3 message-path
    # baseline, at <= 20 loop events per delivered message.
    assert result["speedup_vs_pr3_recorded"] >= 2.0
    assert result["loop_events_per_msg"] <= 20.0
    assert result["timer_events_per_msg"] >= 0.0
    # The in-process ablation must not be a regression either.
    assert result["speedup_vs_legacy"] >= 1.0


run = make_run("e19_msgpath", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
