"""E17 -- Resilience: supervised goodput under injected faults.

Claim: a supervised session (retry + failover + degradation, PR-2
resilience layer) keeps a periodic workload flowing through scripted and
seeded-random network faults, while an unsupervised session dies at the
first failure.  Both nodes are multi-homed: a fast Ethernet (the
preferred network) and a routed internetwork standing by as the
failover target.

Four runs, one seed:

* ``baseline``     -- supervised, no chaos: the reference goodput;
* ``supervised``   -- chaos on the Ethernet segment (periodic flaps, a
  seeded-random flap process, one receiver pause); the supervisor fails
  the session over to the internetwork and re-queues what the client
  sent during the gap.  Goodput must stay >= 80% of baseline;
* ``unsupervised`` -- same chaos, no policy: the session fails
  terminally and goodput collapses;
* ``supervised2``  -- the supervised run repeated with the same seed;
  delivered bytes must match exactly (determinism).

The supervised run exports its metrics snapshot; the
``rms_failovers_total`` family must be present and nonzero.
"""

from __future__ import annotations

import json
import os

from common import RESULTS_DIR, Table, bench_main, make_run, report

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.dash.system import DashSystem
from repro.errors import CapacityError, RmsFailedError
from repro.netsim.chaos import ChaosSchedule
from repro.resilience import ResiliencePolicy, SessionState

SEED = 17
RECORD = 480  # bytes per record
PERIOD = 0.01  # seconds between records
DURATION = 10.0  # seconds of workload
WARMUP = 2.0
GRACE = 4.0  # post-workload time for recovery queues to flush


def build_system(seed: int, observe: bool) -> DashSystem:
    """Two multi-homed nodes: Ethernet primary, internetwork secondary."""
    system = DashSystem(seed=seed, observe=observe)
    system.add_ethernet(name="lan", trusted=True)
    wan = system.add_internet(name="wan", trusted=True)
    system.add_node("a")
    system.add_node("b")
    wan.add_router("g1")
    wan.add_link("a", "g1", bandwidth=2.5e5, propagation_delay=0.002)
    wan.add_link("g1", "b", bandwidth=2.5e5, propagation_delay=0.002)
    return system


def run_variant(chaos: bool, supervised: bool, seed: int = SEED):
    system = build_system(seed, observe=True)
    params = RmsParams(
        capacity=8192,
        max_message_size=512,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    policy = ResiliencePolicy() if supervised else None
    session = system.connect(
        "a", "b", desired=params, acceptable=params,
        port="e17", resilience=policy, name="e17",
    )
    system.run(until=system.now + WARMUP)
    start = system.now
    delivered = {"bytes": 0, "records": 0}

    def on_message(message):
        delivered["bytes"] += message.size
        delivered["records"] += 1

    session.port.set_handler(on_message)

    schedule = ChaosSchedule(system.context, name="e17")
    if chaos:
        segment = system.networks["lan"].segment
        schedule.flap_periodic(
            segment, first_down=start + 1.0, period=2.5,
            down_time=0.6, count=3,
        )
        schedule.random_flaps(
            segment, mean_uptime=1.5, mean_downtime=0.3,
            until=start + DURATION, start=start + 1.5,
        )
        schedule.pause_host_at(system.nodes["b"].host, start + 6.0, 0.2)

    def feed():
        end = start + DURATION
        while system.now < end:
            try:
                session.send(b"\x55" * RECORD)
            except (RmsFailedError, CapacityError):
                pass
            yield PERIOD

    system.context.spawn(feed(), name="e17:feed")
    system.run(until=start + DURATION + GRACE)
    return {
        "bytes": delivered["bytes"],
        "records": delivered["records"],
        "goodput_kBps": delivered["bytes"] / DURATION / 1e3,
        "state": session.state.value,
        "recoveries": session.stats.recoveries,
        "failovers": session.stats.failovers,
        "queue_drops": session.stats.queue_drops,
        "chaos_events": len(schedule.log),
        "session": session,
        "system": system,
    }


def run_experiment():
    results = {
        "baseline": run_variant(chaos=False, supervised=True),
        "supervised": run_variant(chaos=True, supervised=True),
        "unsupervised": run_variant(chaos=True, supervised=False),
        "supervised2": run_variant(chaos=True, supervised=True),
    }
    # The supervised run's telemetry is what the exporters snapshot.
    results["obs"] = results["supervised"]["system"].obs
    return results


def render(results) -> Table:
    table = Table(
        "E17: goodput under injected faults (480 B / 10 ms for 10 s)",
        ["variant", "records", "goodput (kB/s)", "final state",
         "recoveries", "failovers", "queue drops", "chaos events"],
    )
    for variant, row in results.items():
        if variant == "obs":
            continue
        table.add_row(
            variant, row["records"], row["goodput_kBps"], row["state"],
            row["recoveries"], row["failovers"], row["queue_drops"],
            row["chaos_events"],
        )
    return table


def _failover_total(payload) -> float:
    family = payload["metrics"].get("rms_failovers_total", {})
    return sum(series["value"] for series in family.get("series", []))


def test_e17_resilience(run_once):
    results = run_once(run_experiment)
    baseline = results["baseline"]
    supervised = results["supervised"]
    unsupervised = results["unsupervised"]
    report(
        "e17_resilience",
        render(results),
        obs=supervised["system"].obs,
        extra={
            "recovery_ratio": supervised["bytes"] / max(baseline["bytes"], 1),
            "seed": SEED,
        },
    )
    # Supervision keeps goodput within 80% of the no-fault baseline.
    assert supervised["bytes"] >= 0.8 * baseline["bytes"]
    assert supervised["recoveries"] >= 1
    # Without supervision the first fault is terminal.
    assert unsupervised["state"] == SessionState.FAILED.value
    assert unsupervised["bytes"] < 0.5 * baseline["bytes"]
    # Same seed, same faults, same delivery: the run is deterministic.
    assert results["supervised2"]["bytes"] == supervised["bytes"]
    assert results["supervised2"]["records"] == supervised["records"]
    # The exported snapshot carries the failover metric family.
    path = os.path.join(RESULTS_DIR, "e17_resilience.metrics.json")
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["schema"] == 1
    assert _failover_total(payload) > 0
    assert "chaos_events_total" in payload["metrics"]


run = make_run("e17_resilience", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
