"""E8 -- Section 2.3: the three delay-bound types under offered load.

Claim: deterministic RMSs reserve worst-case resources, so admission
stops early but every admitted stream meets its bound; statistical RMSs
reserve effective bandwidth, admitting more streams with a small,
bounded late fraction; best-effort RMSs are never rejected and their
delays degrade without limit as load grows.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams, StatisticalSpec
from repro.errors import AdmissionError, NegotiationError

OFFERED = 26  # streams offered per type
PACKET = 500
PERIOD = 0.01  # 50 kB/s per stream; segment = 1.25 MB/s
BOUND = 0.05
DURATION = 3.0


def stream_params(bound_type: DelayBoundType) -> RmsParams:
    statistical = None
    if bound_type == DelayBoundType.STATISTICAL:
        statistical = StatisticalSpec(
            average_load=PACKET / PERIOD, burstiness=1.5, delay_probability=0.95
        )
    return RmsParams(
        capacity=3000,
        max_message_size=PACKET,
        delay_bound=DelayBound(BOUND, 1e-6),
        delay_bound_type=bound_type,
        statistical=statistical,
    )


def run_type(bound_type: DelayBoundType, seed: int = 8):
    system = build_lan(seed=seed)
    params = stream_params(bound_type)
    st = system.nodes["a"].st
    admitted = []
    rejected = 0
    for index in range(OFFERED):
        future = st.create_st_rms("b", port=f"{bound_type.name}-{index}",
                                  desired=params, acceptable=params)
        system.run(until=system.now + 0.5)
        if future.done and not future.failed:
            admitted.append(future.result())
        else:
            rejected += 1
            if future.done:
                try:
                    future.result()
                except (AdmissionError, NegotiationError):
                    pass

    def producer(rms, offset):
        yield offset
        while True:
            rms.send(b"\x33" * PACKET)
            yield PERIOD

    rng = system.context.rng.stream("offsets")
    producers = [
        system.context.spawn(producer(rms, rng.uniform(0, PERIOD)))
        for rms in admitted
    ]
    system.run(until=system.now + DURATION)
    for process in producers:
        process.stop()
    system.run(until=system.now + 0.5)

    delivered = sum(rms.stats.messages_delivered for rms in admitted)
    late = sum(rms.stats.messages_late for rms in admitted)
    dropped = sum(rms.stats.messages_dropped for rms in admitted)
    sent = sum(rms.stats.messages_sent for rms in admitted)
    return {
        "type": bound_type.name.lower(),
        "offered": OFFERED,
        "admitted": len(admitted),
        "rejected": rejected,
        "sent": sent,
        "late_fraction": late / max(delivered, 1),
        "loss_fraction": dropped / max(sent, 1),
    }


def run_experiment():
    return [
        run_type(DelayBoundType.DETERMINISTIC),
        run_type(DelayBoundType.STATISTICAL),
        run_type(DelayBoundType.BEST_EFFORT),
    ]


def render(rows) -> Table:
    table = Table(
        f"E8: admission + delivered quality per delay-bound type "
        f"({OFFERED} x 50 kB/s streams offered on a 1.25 MB/s segment, "
        f"bound {BOUND * 1e3:.0f} ms)",
        ["type", "offered", "admitted", "rejected", "late frac", "loss frac"],
    )
    for row in rows:
        table.add_row(row["type"], row["offered"], row["admitted"],
                      row["rejected"], row["late_fraction"],
                      row["loss_fraction"])
    return table


def test_e08_admission(run_once):
    rows = run_once(run_experiment)
    report("e08_admission", render(rows))
    deterministic, statistical, best_effort = rows
    # Best-effort is never rejected (section 2.3).
    assert best_effort["admitted"] == OFFERED
    # Deterministic reserves worst case, so it admits the fewest.
    assert deterministic["admitted"] < statistical["admitted"] <= OFFERED
    # Admitted deterministic streams never miss their bound.
    assert deterministic["late_fraction"] == 0.0
    # Statistical misses stay within the 1-p tolerance (p = 0.95).
    assert statistical["late_fraction"] <= 0.05
    # Best-effort, overcommitted, degrades the most.
    assert best_effort["late_fraction"] >= statistical["late_fraction"]


run = make_run("e08_admission", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
