"""E22 -- scale-out routing: forwarding tables, compiled plans, scoped
invalidation.

Earlier benches kept topologies tiny (a segment, a dumbbell), so routing
cost never showed.  At mesh scale it dominates: the legacy resolver runs
one Dijkstra per (src, dst) pair, clears its *whole* route cache on any
link transition, and re-walks dicts and allocates per-hop lambdas for
every frame it forwards.  The scale-out engine replaces all three: one
full-run Dijkstra per *source* amortized over every destination,
compiled per-pair route plans with cached per-hop deliver callbacks, and
a link->dependents reverse index so a flap invalidates only the routes
that crossed it.

One workload, two arms (``route_engine=`` True / False -- the in-bench
ablation), on a 200+-host router grid:

* **Static leg** -- steady traffic over a fixed topology; routed msgs/s
  and route resolutions per delivered message.
* **Churn leg** -- trunk links flap while traffic continues; every flap
  triggers stream re-establishment and a reachability sweep (the
  management plane's behavior), which under the legacy resolver re-runs
  per-pair Dijkstra for the whole system.  The headline
  ``churn_speedup`` is the engine/legacy routed-msgs/s ratio here.
* **Recovery** -- after the last flap heals, the fraction of pairs
  delivering again (must be 1.0: the grid stays connected).
* **Soak leg** (engine only) -- a long horizon of flap cycles checking
  recovery holds and the engine's caches stay bounded.
* **Static-trace equality** -- a small lossy mesh run with the engine on
  and off under one seed must produce byte-identical delivery traces
  (same payloads at the same simulated times): the engine may not change
  *what* static topologies do, only how fast the host simulates it.

Results go to the repo-root ``BENCH_e22.json`` for the CI perf-smoke
job; see DESIGN.md section 8.7 for the engine design.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Tuple

from common import Table, bench_main, make_run, report
from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import AdmissionError, NegotiationError, RoutingError
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host, MeshSpec, build_grid
from repro.sim.context import SimContext

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON_SCHEMA = "dash-bench-e22/1"

SEED = 22

#: 6x6 router grid, 6 hosts per router: 216 hosts, worst paths ~12 trunks.
GRID_ROWS = 6
GRID_COLS = 6
HOSTS_PER_ROUTER = 6
#: Concurrently established traffic pairs.
PAIRS = 100
#: Reachability probes per host in the management plane's sweep (run
#: after every link transition): every host checks a fixed sample of
#: destinations.  Per-pair resolvers pay one Dijkstra per probe here;
#: the forwarding engine pays one table build per *source* and a dict
#: probe per destination.
PROBES_PER_HOST = 8
#: Messages per pair per traffic round.
MSGS_PER_ROUND = 2
#: Traffic rounds in the static leg.
STATIC_ROUNDS = 8
#: Down/up flap cycles in the churn leg (each runs two traffic rounds).
FLAPS = 6
#: Extra flap cycles in the engine-only soak leg.
SOAK_FLAPS = 12
#: Simulated seconds given to each traffic round / setup wave.
ROUND_TIME = 0.4
PAYLOAD = b"\xe2\x22" * 32  # 64 bytes


def _params() -> RmsParams:
    return RmsParams(
        capacity=32 * 1024,
        max_message_size=512,
        delay_bound=DelayBound(0.5, 1e-4),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


class _MeshRun:
    """One arm of the experiment: a grid mesh plus PAIRS streams."""

    def __init__(self, seed: int, route_engine: bool) -> None:
        self.context = SimContext(seed=seed)
        self.network = InternetNetwork(
            self.context, trusted=True, route_engine=route_engine,
        )
        self.mesh = build_grid(
            self.network, GRID_ROWS, GRID_COLS,
            hosts_per_router=HOSTS_PER_ROUTER,
            spec=MeshSpec(trunk_bandwidth=2.5e6, trunk_delay=5e-4,
                          access_bandwidth=5e6, access_delay=1e-4),
        )
        rng = random.Random(seed * 1009 + 7)
        hosts = list(self.mesh.hosts)
        self.pairs: List[Tuple[str, str]] = []
        seen = set()
        while len(self.pairs) < PAIRS:
            src, dst = rng.sample(hosts, 2)
            if (src, dst) not in seen:
                seen.add((src, dst))
                self.pairs.append((src, dst))
        #: Router-router edges, flappable without partitioning the grid
        #: (every grid trunk lies on a cycle); host access links stay up.
        routers = set(self.mesh.routers)
        self.trunks = sorted(
            (u, v) for (u, v) in self.network._links
            if u in routers and v in routers and u < v
        )
        self.flap_rng = random.Random(seed * 2003 + 11)
        self.probe_pairs: List[Tuple[str, str]] = []
        for src in hosts:
            for dst in rng.sample(hosts, PROBES_PER_HOST):
                if dst != src:
                    self.probe_pairs.append((src, dst))
        self.rms_by_pair: Dict[Tuple[str, str], object] = {}
        self.dead: set = set()
        self.delivered = 0
        self.delivered_by_pair: Dict[Tuple[str, str], int] = {
            pair: 0 for pair in self.pairs
        }
        self.params = _params()

    # -- streams ----------------------------------------------------------

    def _on_delivery(self, pair: Tuple[str, str]):
        def handler(message) -> None:
            self.delivered += 1
            self.delivered_by_pair[pair] += 1
        return handler

    def establish(self) -> None:
        """(Re-)establish every pair without an open stream."""
        futures = []
        for pair in self.pairs:
            rms = self.rms_by_pair.get(pair)
            if rms is not None and rms.is_open and pair not in self.dead:
                continue
            src, dst = pair
            try:
                future = self.network.create_rms(
                    Label(src), Label(dst), self.params, self.params,
                )
            except (RoutingError, AdmissionError, NegotiationError):
                continue
            futures.append((pair, future))
        if futures:
            self.context.run(until=self.context.now + ROUND_TIME)
        for pair, future in futures:
            if future.done and not future.failed:
                rms = future.result()
                self.rms_by_pair[pair] = rms
                self.dead.discard(pair)
                rms.port.set_handler(self._on_delivery(pair))
                rms.on_failure.listen(
                    lambda r, reason, pair=pair: self.dead.add(pair)
                )

    def traffic_round(self) -> None:
        for pair, rms in self.rms_by_pair.items():
            if rms.is_open:
                for _ in range(MSGS_PER_ROUND):
                    rms.send(PAYLOAD)
        self.context.run(until=self.context.now + ROUND_TIME)

    def sweep(self) -> int:
        """The management plane's post-transition reachability scan:
        every host re-validates its sampled destination set."""
        can_reach = self.network.can_reach
        return sum(1 for src, dst in self.probe_pairs if can_reach(src, dst))

    # -- legs -------------------------------------------------------------

    def static_leg(self) -> Dict[str, float]:
        self.establish()
        before = self.delivered
        resolutions = self.network.route_resolutions
        started = time.perf_counter()
        for _ in range(STATIC_ROUNDS):
            self.traffic_round()
        elapsed = max(time.perf_counter() - started, 1e-9)
        delivered = self.delivered - before
        return {
            "delivered": delivered,
            "msgs_per_sec": delivered / elapsed,
            "resolutions_per_msg":
                (self.network.route_resolutions - resolutions)
                / max(delivered, 1),
        }

    def flap_cycle(self) -> None:
        u, v = self.trunks[self.flap_rng.randrange(len(self.trunks))]
        self.network.link(u, v).set_down()
        self.network.link(v, u).set_down()
        self.sweep()
        self.establish()
        self.traffic_round()
        self.network.link(u, v).set_up()
        self.network.link(v, u).set_up()
        self.sweep()
        self.establish()
        self.traffic_round()

    def churn_leg(self, flaps: int = FLAPS) -> Dict[str, float]:
        before = self.delivered
        resolutions = self.network.route_resolutions
        started = time.perf_counter()
        for _ in range(flaps):
            self.flap_cycle()
        elapsed = max(time.perf_counter() - started, 1e-9)
        delivered = self.delivered - before
        return {
            "delivered": delivered,
            "msgs_per_sec": delivered / elapsed,
            "resolutions_per_msg":
                (self.network.route_resolutions - resolutions)
                / max(delivered, 1),
        }

    def recovery_ratio(self) -> float:
        """Fraction of pairs delivering again after churn heals."""
        self.establish()
        marks = dict(self.delivered_by_pair)
        for pair, rms in self.rms_by_pair.items():
            if rms.is_open:
                rms.send(PAYLOAD)
        self.context.run(until=self.context.now + ROUND_TIME)
        recovered = sum(
            1 for pair in self.pairs
            if self.delivered_by_pair[pair] > marks[pair]
        )
        return recovered / len(self.pairs)


#: Repetitions of the (short) static leg; the fastest is kept.  The
#: simulated work is identical across reps -- only the wall-clock rate
#: is noisy, and at ~0.1 s per rep a single sample swings +-15% on a
#: shared runner.  The two arms alternate measurement order each rep so
#: warm-up and a monotone frequency ramp cannot systematically favour
#: either side.  The churn leg is long enough to run once.
STATIC_REPS = 6


def _run_arms(seed: int) -> Dict[str, Dict[str, object]]:
    arms = {
        "engine": _MeshRun(seed, route_engine=True),
        "legacy": _MeshRun(seed, route_engine=False),
    }
    static = {"engine": None, "legacy": None}
    for rep in range(STATIC_REPS):
        order = ("engine", "legacy") if rep % 2 == 0 else ("legacy", "engine")
        for name in order:
            sample = arms[name].static_leg()
            if (static[name] is None
                    or sample["msgs_per_sec"] > static[name]["msgs_per_sec"]):
                static[name] = sample
    result = {}
    for name, run in arms.items():
        churn = run.churn_leg()
        recovery = run.recovery_ratio()
        result[name] = {
            "run": run,
            "static": static[name],
            "churn": churn,
            "recovery_ratio": recovery,
            "hosts": len(run.mesh.hosts),
            "routers": len(run.mesh.routers),
        }
    return result


def _soak(run: _MeshRun) -> Dict[str, float]:
    """Long-horizon churn on the engine arm: recovery must hold and the
    engine's caches must stay bounded by the live working set."""
    before = run.delivered
    started = time.perf_counter()
    for _ in range(SOAK_FLAPS):
        run.flap_cycle()
    elapsed = max(time.perf_counter() - started, 1e-9)
    recovery = run.recovery_ratio()
    engine = run.network._engine
    return {
        "flaps": SOAK_FLAPS,
        "delivered": run.delivered - before,
        "msgs_per_sec": (run.delivered - before) / elapsed,
        "recovery_ratio": recovery,
        "cached_tables": len(engine._tables),
        "cached_plans": len(engine._plans),
    }


# ----------------------------------------------------------------------
# Static-trace equality: engine on vs off, one seed, lossy links
# ----------------------------------------------------------------------


def _lossy_trace(route_engine: bool) -> List[Tuple[str, int, float]]:
    """Delivery trace of a fixed-seed lossy diamond mesh."""
    context = SimContext(seed=7)
    network = InternetNetwork(context, trusted=True, route_engine=route_engine)
    for name in ("a", "b"):
        network.attach(Host(context, name))
    for name in ("r1", "r2", "r3"):
        network.add_router(name)
    network.add_link("a", "r1", bandwidth=2.5e5, propagation_delay=1e-3)
    network.add_link("r1", "r2", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.12)
    network.add_link("r2", "r3", bandwidth=1.25e5, propagation_delay=2e-3,
                     frame_loss_rate=0.12)
    network.add_link("r1", "r3", bandwidth=6e4, propagation_delay=9e-3)
    network.add_link("r3", "b", bandwidth=2.5e5, propagation_delay=1e-3)
    params = _params()
    future = network.create_rms(Label("a"), Label("b"), params, params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    trace: List[Tuple[str, int, float]] = []
    rms.port.set_handler(
        lambda message: trace.append(
            ("deliver", message.payload[0], context.now)
        )
    )
    for index in range(120):
        rms.send(bytes([index % 256]) * 48)
        if index % 8 == 7:
            context.run(until=context.now + 0.05)
    context.run(until=context.now + 3.0)
    trace.append(("sent", rms.stats.messages_sent, 0.0))
    trace.append(("delivered", rms.stats.messages_delivered, 0.0))
    return trace


# ----------------------------------------------------------------------


def run_experiment(seed: int = SEED):
    arms = _run_arms(seed)
    engine_arm = arms["engine"]
    legacy_arm = arms["legacy"]
    soak = _soak(engine_arm["run"])
    trace_on = _lossy_trace(route_engine=True)
    trace_off = _lossy_trace(route_engine=False)
    result = {
        "hosts": engine_arm["hosts"],
        "routers": engine_arm["routers"],
        "pairs": PAIRS,
        "static_msgs_per_sec": engine_arm["static"]["msgs_per_sec"],
        "churn_msgs_per_sec": engine_arm["churn"]["msgs_per_sec"],
        "ablation_static_msgs_per_sec": legacy_arm["static"]["msgs_per_sec"],
        "ablation_churn_msgs_per_sec": legacy_arm["churn"]["msgs_per_sec"],
        "static_speedup":
            engine_arm["static"]["msgs_per_sec"]
            / legacy_arm["static"]["msgs_per_sec"],
        "churn_speedup":
            engine_arm["churn"]["msgs_per_sec"]
            / legacy_arm["churn"]["msgs_per_sec"],
        "resolutions_per_msg":
            engine_arm["churn"]["resolutions_per_msg"],
        "ablation_resolutions_per_msg":
            legacy_arm["churn"]["resolutions_per_msg"],
        "churn_recovery_ratio": engine_arm["recovery_ratio"],
        "ablation_churn_recovery_ratio": legacy_arm["recovery_ratio"],
        "churn_delivered": engine_arm["churn"]["delivered"],
        "static_delivered": engine_arm["static"]["delivered"],
        "soak": soak,
        "static_trace_identical": trace_on == trace_off,
        "trace_deliveries": sum(1 for kind, _, _ in trace_on
                                if kind == "deliver"),
        "seed": seed,
    }
    _write_bench_json(result)
    return result


def _write_bench_json(result) -> None:
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "hosts": result["hosts"],
        "routers": result["routers"],
        "pairs": result["pairs"],
        "static_msgs_per_sec": round(result["static_msgs_per_sec"], 1),
        "churn_msgs_per_sec": round(result["churn_msgs_per_sec"], 1),
        "ablation_static_msgs_per_sec":
            round(result["ablation_static_msgs_per_sec"], 1),
        "ablation_churn_msgs_per_sec":
            round(result["ablation_churn_msgs_per_sec"], 1),
        "static_speedup": round(result["static_speedup"], 3),
        "churn_speedup": round(result["churn_speedup"], 3),
        "resolutions_per_msg": round(result["resolutions_per_msg"], 4),
        "ablation_resolutions_per_msg":
            round(result["ablation_resolutions_per_msg"], 4),
        "churn_recovery_ratio": round(result["churn_recovery_ratio"], 3),
        "soak_recovery_ratio": round(result["soak"]["recovery_ratio"], 3),
        "soak_flaps": result["soak"]["flaps"],
        "soak_cached_tables": result["soak"]["cached_tables"],
        "soak_cached_plans": result["soak"]["cached_plans"],
        "static_trace_identical": result["static_trace_identical"],
        "seed": result["seed"],
    }
    with open(os.path.join(REPO_ROOT, "BENCH_e22.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def render(result):
    legs = Table(
        "E22: scale-out routing on a "
        f"{result['routers']}-router / {result['hosts']}-host grid "
        f"({result['pairs']} pairs)",
        ["leg", "engine msg/s", "legacy msg/s", "speedup", "resolutions/msg"],
    )
    legs.add_row(
        "static", round(result["static_msgs_per_sec"]),
        round(result["ablation_static_msgs_per_sec"]),
        round(result["static_speedup"], 2), "",
    )
    legs.add_row(
        "churn", round(result["churn_msgs_per_sec"]),
        round(result["ablation_churn_msgs_per_sec"]),
        round(result["churn_speedup"], 2),
        f"{result['resolutions_per_msg']:.3f} vs "
        f"{result['ablation_resolutions_per_msg']:.3f}",
    )
    checks = Table(
        "E22: recovery, soak, and static-trace equality",
        ["check", "value"],
    )
    checks.add_row("churn recovery ratio (engine)",
                   round(result["churn_recovery_ratio"], 3))
    checks.add_row("churn recovery ratio (legacy)",
                   round(result["ablation_churn_recovery_ratio"], 3))
    soak = result["soak"]
    checks.add_row(
        "soak",
        f"{soak['flaps']} flaps, {soak['delivered']} msgs, "
        f"recovery {soak['recovery_ratio']:.3f}",
    )
    checks.add_row(
        "engine caches after soak",
        f"{soak['cached_tables']} tables / {soak['cached_plans']} plans",
    )
    checks.add_row("static lossy trace identical (engine on vs off)",
                   result["static_trace_identical"])
    checks.add_row("trace deliveries", result["trace_deliveries"])
    return legs, checks


def test_e22_scaleout(run_once):
    result = run_once(run_experiment)
    report("e22_scaleout", *render(result))
    # The tentpole claim: under churn the scale-out engine routes the
    # same mesh workload at least 2x the per-pair-Dijkstra baseline
    # (the committed BENCH_e22.json run clears 3x; the in-test floor is
    # wider for shared runners).
    assert result["churn_speedup"] >= 2.0
    # One Dijkstra per source amortized over destinations: the engine
    # must resolve strictly fewer searches per delivered message.
    assert (result["resolutions_per_msg"]
            < result["ablation_resolutions_per_msg"])
    # Every pair recovers once the last flap heals (the grid never
    # partitions), and recovery must survive the long soak.
    assert result["churn_recovery_ratio"] == 1.0
    assert result["soak"]["recovery_ratio"] == 1.0
    # The engine may not change what a static topology *does* -- only
    # how fast the host simulates it.
    assert result["static_trace_identical"]
    assert result["trace_deliveries"] > 0


run = make_run("e22_scaleout", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
