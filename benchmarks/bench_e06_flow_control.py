"""E6 -- Figure 5 / section 4.4: factored flow-control options.

Claim: RMS capacity enforcement, receiver flow control, and sender flow
control protect different buffer groups and are independently optional.
"Based on the values of RMS parameters it can be determined what flow
control mechanisms are needed, and unnecessary mechanisms can be
avoided."

Scenario A (fast receiver): capacity enforcement alone suffices; adding
receiver/sender flow control buys nothing.
Scenario B (slow receiver): without receiver flow control the receive
buffer overruns; with it, delivery is lossless.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, report
from repro.transport.flowcontrol import FlowControlMode
from repro.transport.stream import StreamConfig

MESSAGES = 60
SIZE = 1000
RECEIVE_BUFFER = 8 * 1024

CONFIGS = [
    ("none", FlowControlMode.NONE, None),
    ("capacity only", FlowControlMode.CAPACITY_ONLY, "ack"),
    ("capacity+receiver", FlowControlMode.CAPACITY_AND_RECEIVER, "ack"),
    ("end-to-end", FlowControlMode.END_TO_END, "ack"),
]


def run_case(label, mode, capacity_mode, consume_rate, seed=6):
    system = build_lan(seed=seed)
    config = StreamConfig(
        reliable=False,  # show raw drops rather than masking via retransmit
        capacity_mode=capacity_mode,
        flow_control=mode,
        receive_buffer=RECEIVE_BUFFER,
        data_capacity=16 * 1024,
        sender_port_limit=8,
    )
    handle = system.connect("a", "b", kind="stream", config=config)
    system.run(until=system.now + 2.0)
    session = handle.established.result()
    consumed = []
    finish = {"at": None}
    start = system.now

    def consumer():
        while len(consumed) < MESSAGES:
            message = yield session.receive()
            consumed.append(message)
            if consume_rate is not None:
                yield 1.0 / consume_rate
        finish["at"] = system.now

    system.context.spawn(consumer())

    def producer():
        for index in range(MESSAGES):
            accepted = session.send(bytes([index % 256]) * SIZE)
            if not accepted.done:
                yield accepted

    system.context.spawn(producer())
    horizon = 40.0
    system.run(until=system.now + horizon)
    elapsed = (finish["at"] or system.now) - start
    return {
        "config": label,
        "consumer": "slow" if consume_rate else "fast",
        "delivered": session.stats.messages_delivered,
        "consumed": len(consumed),
        "overflow_drops": session.stats.receiver_overflow_drops,
        "goodput_kBps": len(consumed) * SIZE / max(elapsed, 1e-9) / 1e3,
    }


def run_experiment():
    rows = []
    for label, mode, capacity_mode in CONFIGS:
        rows.append(run_case(label, mode, capacity_mode, consume_rate=None))
    for label, mode, capacity_mode in CONFIGS:
        rows.append(run_case(label, mode, capacity_mode, consume_rate=25.0))
    return rows


def render(rows) -> Table:
    table = Table(
        "E6: Figure-5 flow-control options x receiver speed "
        f"(buffer {RECEIVE_BUFFER}B, unreliable stream)",
        ["config", "consumer", "delivered", "consumed", "overflow drops",
         "goodput (kB/s)"],
    )
    for row in rows:
        table.add_row(row["config"], row["consumer"], row["delivered"],
                      row["consumed"], row["overflow_drops"],
                      row["goodput_kBps"])
    return table


def test_e06_flow_control(run_once):
    rows = run_once(run_experiment)
    report("e06_flow_control", render(rows))
    fast = {row["config"]: row for row in rows if row["consumer"] == "fast"}
    slow = {row["config"]: row for row in rows if row["consumer"] == "slow"}
    # Fast receiver: every configuration is lossless; the mechanisms
    # beyond capacity enforcement are unnecessary, not harmful.
    for row in fast.values():
        assert row["overflow_drops"] == 0
        assert row["consumed"] == MESSAGES
    # Slow receiver without receiver flow control overruns group-(3)
    # buffers; the receiver-protected configurations stay lossless.
    assert slow["none"]["overflow_drops"] > 0
    assert slow["capacity only"]["overflow_drops"] > 0
    assert slow["capacity+receiver"]["overflow_drops"] == 0
    assert slow["end-to-end"]["overflow_drops"] == 0
    assert slow["capacity+receiver"]["consumed"] == MESSAGES
    assert slow["end-to-end"]["consumed"] == MESSAGES


run = make_run("e06_flow_control", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
