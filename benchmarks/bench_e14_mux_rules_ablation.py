"""E14 -- Section 4.2: what the multiplexing rules protect.

Ablation: with ``enforce_mux_rules`` off, the ST packs a tight-deadline
voice stream onto whatever network RMS exists -- here one created for a
bulk stream with a loose delay bound and already-committed capacity.
The aggregate outstanding bytes then exceed the network RMS capacity:
per section 4.4, "if they fail to [honor the capacity], the provider's
guarantees are voided; messages may be delivered late or discarded."
With the rules on, the ST creates a suitable second network RMS, the
capacity clause holds for both, and the voice bound is met with margin.
"""

from __future__ import annotations

from common import Table, bench_main, build_lan, make_run, open_st_rms, report
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.subtransport.config import StConfig

VOICE_PACKETS = 150
VOICE_PERIOD = 0.02
VOICE_BOUND = 0.05


def run_case(enforce: bool, seed: int = 15):
    config = StConfig(enforce_mux_rules=enforce)
    system = build_lan(seed=seed, st_config=config)
    # First, a bulk stream with a loose bound creates the network RMS.
    bulk_params = RmsParams(
        capacity=48 * 1024,
        max_message_size=4000,
        delay_bound=DelayBound(1.0, 1e-5),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    bulk = open_st_rms(system, "a", "b", params=bulk_params, port="bulk")
    # Then a voice stream with a tight bound asks for transport.
    voice_params = RmsParams(
        capacity=8 * 1024,
        max_message_size=512,
        delay_bound=DelayBound(VOICE_BOUND, 1e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    voice = open_st_rms(system, "a", "b", params=voice_params, port="voice")
    shares_binding = voice.binding is bulk.binding

    def bulk_producer():
        while True:
            bulk.send(b"\xAA" * 3000)
            yield 0.0025  # ~1.2 MB/s offered: keeps the segment busy

    def voice_producer():
        for index in range(VOICE_PACKETS):
            voice.send(bytes([index % 256]) * 160)
            yield VOICE_PERIOD

    bulk_process = system.context.spawn(bulk_producer())
    system.context.spawn(voice_producer())
    system.run(until=system.now + VOICE_PACKETS * VOICE_PERIOD + 1.0)
    bulk_process.stop()
    system.run(until=system.now + 1.0)
    delivered = voice.stats.messages_delivered
    voice_net = voice.binding.network_rms if voice.binding else None
    return {
        "rules": enforce,
        "shares_network_rms": shares_binding,
        "net_rms_created": system.nodes["a"].st.stats.network_rms_created,
        "voice_delivered": delivered,
        "voice_late_frac": voice.stats.messages_late / max(delivered, 1),
        "voice_p95_ms": 1e3 * (sorted(voice.stats.delays)[
            int(0.95 * (len(voice.stats.delays) - 1))
        ] if voice.stats.delays else 0.0),
        "net_capacity_violations": (
            voice_net.stats.capacity_violations if voice_net else 0
        ),
    }


def run_experiment():
    return [run_case(True), run_case(False)]


def render(rows) -> Table:
    table = Table(
        "E14: multiplexing-rule ablation -- voice onto a bulk network RMS "
        "(section 4.2)",
        ["rules enforced", "shares net RMS", "net RMS created",
         "voice delivered", "voice p95 (ms)", "voice late frac",
         "net capacity violations"],
    )
    for row in rows:
        table.add_row("yes" if row["rules"] else "no",
                      row["shares_network_rms"], row["net_rms_created"],
                      row["voice_delivered"], row["voice_p95_ms"],
                      row["voice_late_frac"],
                      row["net_capacity_violations"])
    return table


def test_e14_mux_rules_ablation(run_once):
    rows = run_once(run_experiment)
    report("e14_mux_rules_ablation", render(rows))
    enforced, ablated = rows
    # With rules on, the capacity rule forces a second network RMS; both
    # streams stay within their negotiated capacities and the voice
    # bound holds.
    assert not enforced["shares_network_rms"]
    assert enforced["net_rms_created"] == 2
    assert enforced["voice_late_frac"] < 0.02
    assert enforced["net_capacity_violations"] == 0
    # Ablated: voice rides the bulk network RMS and the aggregate
    # violates its capacity thousands of times -- every violation is a
    # message for which the provider's guarantees are void (4.4).
    assert ablated["shares_network_rms"]
    assert ablated["net_rms_created"] == 1
    assert ablated["net_capacity_violations"] > 100


run = make_run("e14_mux_rules_ablation", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
