"""Benchmark-suite configuration.

The benches are experiments, not micro-benchmarks: each runs one
simulation per measurement.  ``run_once`` wraps pytest-benchmark's
pedantic mode so every experiment executes exactly once per session.
"""

from __future__ import annotations

import sys
import os

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
