"""E15 -- Section 4.2's road not taken: downward multiplexing.

The paper excludes striping one ST RMS over several network RMSs
"because the expected gain may not outweigh the additional ST protocol
complexity."  This bench measures both sides of that sentence on a
two-path internetwork: the gain (aggregate throughput across disjoint
paths) and the complexity cost (resequencing work, which grows sharply
when the paths are unequal).
"""

from __future__ import annotations

from common import Table, bench_main, make_run, report
from repro.core.message import Label
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.netsim.internet import InternetNetwork
from repro.netsim.topology import Host
from repro.sim.context import SimContext
from repro.subtransport.downmux import DownwardMux

MESSAGES = 120
SIZE = 400
PATH_BW = 5e4  # bytes/second per path


def build(seed, slow_factor=1.0):
    context = SimContext(seed=seed)
    network = InternetNetwork(context, trusted=True)
    network.attach(Host(context, "a"))
    network.attach(Host(context, "z"))
    network.add_router("g1")
    network.add_router("g2")
    network.add_link("a", "g1", bandwidth=PATH_BW, propagation_delay=0.002)
    network.add_link("g1", "z", bandwidth=PATH_BW, propagation_delay=0.002)
    network.add_link("a", "g2", bandwidth=PATH_BW / slow_factor,
                     propagation_delay=0.002 * slow_factor)
    network.add_link("g2", "z", bandwidth=PATH_BW / slow_factor,
                     propagation_delay=0.002 * slow_factor)
    return context, network


def make_path(context, network, via):
    params = RmsParams(
        capacity=8192,
        max_message_size=512,
        delay_bound=DelayBound(0.5, 1e-3),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    future = network.create_rms(Label("a"), Label("z"), params, params)
    context.run(until=context.now + 2.0)
    rms = future.result()
    rms.route = ["a", via, "z"]
    return rms


def run_case(label, paths_via, slow_factor=1.0, seed=16):
    context, network = build(seed, slow_factor=slow_factor)
    paths = [make_path(context, network, via) for via in paths_via]
    done = {"bytes": 0, "last": None}

    def record(size):
        done["bytes"] += size
        done["last"] = context.now

    if len(paths) == 1:
        rms = paths[0]
        rms.port.set_handler(lambda m: record(m.size))
        send = rms.send
        resequenced = 0
        stream = None
    else:
        stream = DownwardMux(context, paths)
        stream.port.set_handler(lambda payload: record(len(payload)))
        send = stream.send
    start = context.now

    def producer():
        for index in range(MESSAGES):
            send(bytes([index % 256]) * SIZE)
            yield SIZE / (2.2 * PATH_BW)  # offer ~2.2x one path's rate

    context.spawn(producer())
    context.run(until=context.now + 30.0)
    span = (done["last"] or context.now) - start
    return {
        "case": label,
        "delivered_B": done["bytes"],
        "goodput_kBps": done["bytes"] / max(span, 1e-9) / 1e3,
        "resequenced": stream.stats.resequenced if stream else 0,
        "reseq_depth": stream.stats.max_resequence_depth if stream else 0,
    }


def run_experiment():
    return [
        run_case("single path", ["g1"]),
        run_case("striped, equal paths", ["g1", "g2"]),
        run_case("striped, 4x-unequal paths", ["g1", "g2"], slow_factor=4.0),
    ]


def render(rows) -> Table:
    table = Table(
        "E15: downward multiplexing -- the gain and the complexity "
        "(section 4.2, excluded from DASH; offered ~2.2x one path)",
        ["case", "goodput (kB/s)", "resequenced msgs", "max reseq depth"],
    )
    for row in rows:
        table.add_row(row["case"], row["goodput_kBps"], row["resequenced"],
                      row["reseq_depth"])
    return table


def test_e15_downward_mux(run_once):
    rows = run_once(run_experiment)
    report("e15_downward_mux", render(rows))
    single, equal, unequal = rows
    # The gain is real: two equal paths nearly double goodput.
    assert equal["goodput_kBps"] > 1.6 * single["goodput_kBps"]
    # The complexity is real too: with unequal paths the receiver must
    # resequence, and the gain shrinks -- the paper's trade-off.
    assert unequal["resequenced"] > 0
    assert unequal["goodput_kBps"] < equal["goodput_kBps"]


run = make_run("e15_downward_mux", run_experiment, render)


if __name__ == "__main__":
    raise SystemExit(bench_main(run))
