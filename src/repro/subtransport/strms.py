"""ST-level Real-Time Message Streams (sections 3.2 and 3.4).

An :class:`StRms` is the RMS the subtransport layer provides to its
clients (transport protocols and kernel services).  Its delay bound
covers ST send processing, piggyback queueing, the underlying network
RMS, and ST receive processing.  Sending hands the message to the
sender's subtransport layer; delivery happens on a port of the receiving
host.

The class-level registry maps ST RMS ids to objects so the receiving
subtransport layer can resolve ids arriving in bundle subheaders -- the
in-process analogue of both ends agreeing on a stream id during
establishment.
"""

from __future__ import annotations

import weakref
from typing import ClassVar, Optional, TYPE_CHECKING

from repro.core.message import Label, Message
from repro.core.params import RmsParams
from repro.core.rms import Rms, RmsLevel
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port
from repro.subtransport.security import SecurityPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.subtransport.mux import MuxBinding
    from repro.subtransport.st import SubtransportLayer

__all__ = ["StRms"]


class StRms(Rms):
    """A subtransport-level RMS."""

    level = RmsLevel.SUBTRANSPORT

    registry: ClassVar["weakref.WeakValueDictionary[int, StRms]"] = (
        weakref.WeakValueDictionary()
    )

    def __init__(
        self,
        context: SimContext,
        params: RmsParams,
        sender: Label,
        receiver: Label,
        sender_st: "SubtransportLayer",
        plan: SecurityPlan,
        session_key: bytes,
        fast_ack: bool = False,
        receiver_port: Optional[Port] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            context, params, sender, receiver, name=name, receiver_port=receiver_port
        )
        self.sender_st = sender_st
        self.plan = plan
        self.session_key = session_key
        self.fast_ack = fast_ack
        self.binding: Optional["MuxBinding"] = None
        self.next_seq = 0
        #: Fired with the acknowledged sequence number when the receiving
        #: ST's fast-acknowledgement service reports delivery (3.2).
        self.on_fast_ack: Signal = Signal(context.loop)
        self.fragments_sent = 0
        self.messages_fragmented = 0
        StRms.registry[self.rms_id] = self

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def _transmit(self, message: Message) -> None:
        self.sender_st._st_send(self, message)

    def close(self) -> None:
        """Tear the stream down via the owning subtransport layer."""
        self.sender_st.close_st_rms(self)
