"""ST-level Real-Time Message Streams (sections 3.2 and 3.4).

An :class:`StRms` is the RMS the subtransport layer provides to its
clients (transport protocols and kernel services).  Its delay bound
covers ST send processing, piggyback queueing, the underlying network
RMS, and ST receive processing.  Sending hands the message to the
sender's subtransport layer; delivery happens on a port of the receiving
host.

The class-level registry maps ST RMS ids to objects so the receiving
subtransport layer can resolve ids arriving in bundle subheaders -- the
in-process analogue of both ends agreeing on a stream id during
establishment.
"""

from __future__ import annotations

import weakref
from typing import ClassVar, Dict, Optional, TYPE_CHECKING, Union

from repro.core.message import Label, Message, fast_message
from repro.core.params import RmsParams
from repro.core.rms import Rms, RmsLevel, RmsState
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port
from repro.subtransport.security import SecurityContext, SecurityPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.subtransport.mux import MuxBinding
    from repro.subtransport.st import SubtransportLayer

__all__ = ["StRms"]


class StRms(Rms):
    """A subtransport-level RMS."""

    level = RmsLevel.SUBTRANSPORT

    registry: ClassVar["weakref.WeakValueDictionary[int, StRms]"] = (
        weakref.WeakValueDictionary()
    )

    def __init__(
        self,
        context: SimContext,
        params: RmsParams,
        sender: Label,
        receiver: Label,
        sender_st: "SubtransportLayer",
        plan: SecurityPlan,
        session_key: bytes,
        fast_ack: bool = False,
        receiver_port: Optional[Port] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            context, params, sender, receiver, name=name, receiver_port=receiver_port
        )
        self.sender_st = sender_st
        self.plan = plan
        self.session_key = session_key
        self.fast_ack = fast_ack
        self.binding: Optional["MuxBinding"] = None
        self.next_seq = 0
        #: Per-stream security state, built once at negotiation time:
        #: the negotiated provider instance (``plan.provider`` names it,
        #: ``plan.factory`` builds it), MAC context prefix, and wire
        #: flags.  Both ends of an in-process stream share this one
        #: object, so sender and receiver always run the same transform
        #: engine; ``security.protect`` is ``None`` on parameter-elided
        #: channels.
        self.security = SecurityContext(plan, session_key, sender, self.rms_id)
        # Hot-path caches: CPU stage names and per-size derived floats.
        # The float caches memoize the *same* functions the legacy path
        # calls per message, so cached values are bit-identical.
        self._send_stage_name = f"st/send:{self.rms_id}"
        self._recv_stage_name = f"st/recv:{self.rms_id}"
        self._send_cost_cache: Dict[int, float] = {}
        self._slack_cache: Dict[int, float] = {}
        #: (binding, largest bundle-able component) -- recomputed when
        #: the stream is rebound to a different network RMS.
        self._max_component_cache: Optional[tuple] = None
        #: Fired with the acknowledged sequence number when the receiving
        #: ST's fast-acknowledgement service reports delivery (3.2).
        self.on_fast_ack: Signal = Signal(context.loop)
        self.fragments_sent = 0
        self.messages_fragmented = 0
        StRms.registry[self.rms_id] = self

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def send(
        self,
        payload: Union[bytes, Message],
        deadline: Optional[float] = None,
    ) -> Message:
        """Send one message; takes the trimmed path when the ST allows it.

        The fast branch performs exactly the bookkeeping of
        :meth:`Rms.send` -- same stats, stamps, and deadline derivation
        -- and defers every unusual case (closed stream, oversize
        payload, observability on) to the base implementation.
        """
        context = self.context
        if (
            not self.sender_st._fast
            or context.obs.enabled
            or self.state is not RmsState.OPEN
        ):
            return super().send(payload, deadline)
        if isinstance(payload, Message):
            message = payload
        else:
            message = fast_message(payload, self.sender, self.receiver)
        params = self.params
        size = len(message.payload)
        if size > params.max_message_size:
            return super().send(message, deadline)
        now = context.now
        message.send_time = now
        bound = params.delay_bound
        if deadline is not None:
            message.deadline = deadline
        elif not bound.is_unbounded:
            message.deadline = now + bound.bound_for(size)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        self.outstanding_bytes += size
        if self.outstanding_bytes > params.capacity:
            stats.capacity_violations += 1
        tracer = context.tracer
        if tracer.enabled:
            tracer.record(
                "rms", "send", rms=self.name, id=message.message_id, size=size
            )
        self.sender_st._st_send_fast(self, message, size, now)
        return message

    def _transmit(self, message: Message) -> None:
        self.sender_st._st_send(self, message)

    def close(self) -> None:
        """Tear the stream down via the owning subtransport layer."""
        self.sender_st.close_st_rms(self)
