"""Wire formats of the subtransport layer.

ST client messages travel inside network RMS messages as *bundles*: a
count followed by length-prefixed components, each with a subheader
carrying the ST RMS id, sequence number, flags, a send timestamp (for
delay accounting) and, for fragments, reassembly fields.  Keeping the
encoding in real bytes makes overhead accounting honest -- piggybacking
amortizes the per-network-message overhead (frame + headers) across
components, while each component still pays its subheader.

Control-channel messages are JSON objects prefixed with a one-byte
format tag; their payloads are small and infrequent, so encoding
elegance matters less than debuggability.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.errors import TransportError

__all__ = [
    "BundleEntry",
    "encode_bundle",
    "encode_single",
    "decode_bundle",
    "decode_bundle_flat",
    "encode_control",
    "decode_control",
    "control_mac_material",
    "SUBHEADER_BYTES",
    "FRAG_HEADER_BYTES",
    "FLAG_FRAGMENT",
    "FLAG_ENCRYPTED",
    "FLAG_MAC",
    "FLAG_CHECKSUM",
]

#: Per-component subheader: st_rms_id(4) seq(4) flags(2) length(4) ts(8).
SUBHEADER_BYTES = 22
_SUBHEADER = struct.Struct(">IIHId")

#: Fragment prefix inside the component body: offset(4) total(4).
FRAG_HEADER_BYTES = 8
_FRAG_HEADER = struct.Struct(">II")

_BUNDLE_COUNT = struct.Struct(">H")

FLAG_FRAGMENT = 0x0001
FLAG_ENCRYPTED = 0x0002
FLAG_MAC = 0x0004
FLAG_CHECKSUM = 0x0008


@dataclass
class BundleEntry:
    """One ST client message (or fragment) inside a bundle."""

    st_rms_id: int
    seq: int
    flags: int
    #: Component bytes.  May be a ``memoryview`` slice of the original
    #: client payload (send side) or of the received bundle (receive
    #: side) -- the zero-copy fast path.  Materialized to ``bytes`` only
    #: where a security transform runs or at client delivery.
    payload: Union[bytes, memoryview]
    send_time: float
    frag_offset: int = 0
    frag_total: int = 0  # total original-message bytes, 0 if not a fragment
    #: Observability span id.  In-process metadata only -- never encoded
    #: (the receiving ST rejoins traces via the tracer's wire side table,
    #: keyed by ``(st_rms_id, seq)``), so wire accounting is unchanged.
    trace_id: Optional[int] = None

    @property
    def is_fragment(self) -> bool:
        return bool(self.flags & FLAG_FRAGMENT)

    @property
    def encoded_size(self) -> int:
        size = SUBHEADER_BYTES + len(self.payload)
        if self.is_fragment:
            size += FRAG_HEADER_BYTES
        return size


def encode_bundle(entries: List[BundleEntry]) -> bytes:
    """Serialize components into one network-message payload."""
    if not entries:
        raise TransportError("cannot encode an empty bundle")
    if len(entries) > 0xFFFF:
        raise TransportError(f"bundle too large: {len(entries)} components")
    parts = [_BUNDLE_COUNT.pack(len(entries))]
    for entry in entries:
        body = entry.payload
        # The fragment prefix is appended as its own part instead of
        # being concatenated onto the body: ``bytes.join`` accepts
        # memoryviews, so a fragment slice of the client payload crosses
        # the encoder without an intermediate copy.
        if entry.flags & FLAG_FRAGMENT:
            parts.append(
                _SUBHEADER.pack(
                    entry.st_rms_id, entry.seq, entry.flags,
                    len(body) + FRAG_HEADER_BYTES, entry.send_time,
                )
            )
            parts.append(_FRAG_HEADER.pack(entry.frag_offset, entry.frag_total))
        else:
            parts.append(
                _SUBHEADER.pack(
                    entry.st_rms_id, entry.seq, entry.flags, len(body),
                    entry.send_time,
                )
            )
        parts.append(body)
    return b"".join(parts)


#: Precomputed count header of the dominant one-component bundle.
_SINGLE_COUNT = _BUNDLE_COUNT.pack(1)


def encode_single(entry: BundleEntry) -> bytes:
    """``encode_bundle([entry])``, specialized for one non-fragment
    component (the dominant case once a message overflows or bypasses
    the piggyback queue).  Produces bit-identical bytes."""
    if entry.flags & FLAG_FRAGMENT:
        return encode_bundle([entry])
    body = entry.payload
    return b"".join((
        _SINGLE_COUNT,
        _SUBHEADER.pack(
            entry.st_rms_id, entry.seq, entry.flags, len(body),
            entry.send_time,
        ),
        body,
    ))


def decode_bundle_flat(
    data: bytes,
) -> List[tuple]:
    """:func:`decode_bundle` without the :class:`BundleEntry` objects.

    Returns ``(st_rms_id, seq, flags, payload, send_time, frag_offset,
    frag_total)`` tuples (payloads are zero-copy memoryviews), with the
    same validation and the same exceptions.  The ST hot path iterates
    these directly and rebuilds a :class:`BundleEntry` only for the rare
    component that needs the legacy (flagged/fragment) machinery.
    """
    total = len(data)
    if total < _BUNDLE_COUNT.size:
        raise TransportError("bundle truncated: no count")
    (count,) = _BUNDLE_COUNT.unpack_from(data, 0)
    view = memoryview(data)
    offset = _BUNDLE_COUNT.size
    entries: List[tuple] = []
    append = entries.append
    unpack_subheader = _SUBHEADER.unpack_from
    for _ in range(count):
        if offset + SUBHEADER_BYTES > total:
            raise TransportError("bundle truncated: bad subheader")
        st_rms_id, seq, flags, length, send_time = unpack_subheader(data, offset)
        offset += SUBHEADER_BYTES
        if offset + length > total:
            raise TransportError("bundle truncated: bad component length")
        body = view[offset : offset + length]
        offset += length
        frag_offset = 0
        frag_total = 0
        if flags & FLAG_FRAGMENT:
            if len(body) < FRAG_HEADER_BYTES:
                raise TransportError("fragment truncated")
            frag_offset, frag_total = _FRAG_HEADER.unpack_from(body, 0)
            body = body[FRAG_HEADER_BYTES:]
        append((st_rms_id, seq, flags, body, send_time, frag_offset, frag_total))
    if offset != total:
        raise TransportError("bundle has trailing garbage")
    return entries


def decode_bundle(data: bytes) -> List[BundleEntry]:
    """Parse a bundle payload; raises :class:`TransportError` if mangled.

    Component payloads are returned as ``memoryview`` slices of ``data``
    (zero-copy); callers that retain a payload past the lifetime of the
    network message must materialize it with ``bytes()``.
    """
    total = len(data)
    if total < _BUNDLE_COUNT.size:
        raise TransportError("bundle truncated: no count")
    (count,) = _BUNDLE_COUNT.unpack_from(data, 0)
    view = memoryview(data)
    offset = _BUNDLE_COUNT.size
    entries: List[BundleEntry] = []
    for _ in range(count):
        if offset + SUBHEADER_BYTES > total:
            raise TransportError("bundle truncated: bad subheader")
        st_rms_id, seq, flags, length, send_time = _SUBHEADER.unpack_from(data, offset)
        offset += SUBHEADER_BYTES
        if offset + length > total:
            raise TransportError("bundle truncated: bad component length")
        body = view[offset : offset + length]
        offset += length
        frag_offset = 0
        frag_total = 0
        if flags & FLAG_FRAGMENT:
            if len(body) < FRAG_HEADER_BYTES:
                raise TransportError("fragment truncated")
            frag_offset, frag_total = _FRAG_HEADER.unpack_from(body, 0)
            body = body[FRAG_HEADER_BYTES:]
        entries.append(
            BundleEntry(
                st_rms_id=st_rms_id,
                seq=seq,
                flags=flags,
                payload=body,
                send_time=send_time,
                frag_offset=frag_offset,
                frag_total=frag_total,
            )
        )
    if offset != len(data):
        raise TransportError("bundle has trailing garbage")
    return entries


_CONTROL_TAG = b"\x01"


def encode_control(fields: Dict[str, Any], mac: Optional[bytes] = None) -> bytes:
    """Serialize a control message; an optional MAC tag is appended."""
    body = _CONTROL_TAG + json.dumps(fields, separators=(",", ":")).encode("utf-8")
    if mac is not None:
        return body + b"\x02" + mac
    return body


def decode_control(data: bytes) -> Dict[str, Any]:
    """Parse a control message; the MAC (if any) lands under ``"_mac"``."""
    if not data.startswith(_CONTROL_TAG):
        raise TransportError("not a control message")
    body = data[1:]
    mac: Optional[bytes] = None
    # The MAC is a fixed 8 bytes after a 0x02 separator; JSON bodies never
    # contain raw control characters, so a positional check is unambiguous.
    if len(body) >= 9 and body[-9:-8] == b"\x02":
        mac = body[-8:]
        body = body[:-9]
    try:
        fields = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"mangled control message: {error}") from error
    if mac is not None:
        fields["_mac"] = mac.hex()
    return fields


def control_mac_material(fields: Dict[str, Any]) -> bytes:
    """Canonical bytes a control-message MAC covers."""
    clean = {key: value for key, value in fields.items() if key != "_mac"}
    return json.dumps(clean, separators=(",", ":"), sort_keys=True).encode("utf-8")
