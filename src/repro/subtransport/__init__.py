"""The DASH subtransport layer (sections 3.2 and 4)."""

from repro.subtransport.config import StConfig
from repro.subtransport.downmux import DownmuxStats, DownwardMux
from repro.subtransport.mux import MuxBinding, mux_violation
from repro.subtransport.piggyback import PiggybackQueue
from repro.subtransport.security import SecurityPlan, plan_security
from repro.subtransport.st import StStats, SubtransportLayer
from repro.subtransport.strms import StRms
from repro.subtransport.wire import (
    BundleEntry,
    decode_bundle,
    decode_control,
    encode_bundle,
    encode_control,
)

__all__ = [
    "BundleEntry",
    "DownmuxStats",
    "DownwardMux",
    "MuxBinding",
    "PiggybackQueue",
    "SecurityPlan",
    "StConfig",
    "StRms",
    "StStats",
    "SubtransportLayer",
    "decode_bundle",
    "decode_control",
    "encode_bundle",
    "encode_control",
    "mux_violation",
    "plan_security",
]
