"""Downward multiplexing: one ST RMS striped over several network RMSs.

Section 4.2 of the paper considers and *excludes* this from the DASH
design: "It would also be possible to downwards-multiplex an ST RMS
across several network RMS's.  If there were multiple network paths
between the hosts, this technique could be used to increase capacity
beyond that available in a single network RMS.  However, this has not
been included in the DASH design because the expected gain may not
outweigh the additional ST protocol complexity."

This module implements the excluded design as an optional extension so
the trade-off can be measured (bench E15): a :class:`DownwardMux` wraps
N already-established network RMSs between the same host pair, stripes
messages across them by least-outstanding-bytes, and resequences at the
receiver — exactly the "additional ST protocol complexity" the paper
worried about (sequence numbers, a resequencing buffer, and head-of-line
stalls when one path lags).

With ECMP enabled on the underlying internetwork the "multiple network
paths" premise holds *within one network*: each constituent network RMS
carries its own flow key (``NetworkRms.flow_key``, assigned per (src,
dst) at creation), so the N stripes of a downward mux are pinned to
distinct equal-cost trunks by the routing engine's flow hash — real
path diversity, not N queues on the same bottleneck.  The
:attr:`DownwardMux.path_flows` view exposes the (flow key, route) per
stripe for benches asserting that spread.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.message import Message
from repro.errors import MessageTooLargeError, ParameterError, TransportError
from repro.netsim.network import NetworkRms
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port

__all__ = ["DownwardMux", "DownmuxStats"]

_SEQ_HEADER = struct.Struct(">I")


@dataclass
class DownmuxStats:
    """Counters for one downward-multiplexed stream."""

    messages_sent: int = 0
    messages_delivered: int = 0
    resequenced: int = 0  # arrived out of order, held for reordering
    max_resequence_depth: int = 0
    per_path_sent: Dict[int, int] = field(default_factory=dict)


class DownwardMux:
    """Stripe one message stream across several network RMSs.

    All paths must share sender and receiver hosts.  The aggregate
    capacity is the sum of path capacities; the maximum message size is
    the smallest path's (minus the sequence header) — striping does not
    fragment.  Delivery is in send order: a resequencing buffer holds
    overtaking messages until their predecessors arrive.
    """

    def __init__(self, context: SimContext, paths: List[NetworkRms],
                 name: str = "downmux") -> None:
        if len(paths) < 2:
            raise ParameterError("downward multiplexing needs >= 2 paths")
        first = paths[0]
        for path in paths[1:]:
            if (path.sender.host != first.sender.host
                    or path.receiver.host != first.receiver.host):
                raise ParameterError(
                    "all downmux paths must join the same host pair"
                )
        self.context = context
        self.paths = list(paths)
        self.name = name
        self.capacity = sum(path.params.capacity for path in paths)
        self.max_message_size = (
            min(path.params.max_message_size for path in paths)
            - _SEQ_HEADER.size
        )
        self.stats = DownmuxStats()
        self.port = Port(context.loop, name=f"{name}.rx")
        self.on_failure: Signal = Signal(context.loop)
        self._next_seq = 0
        self._expected = 0
        self._resequence: Dict[int, bytes] = {}
        self._failed: Optional[str] = None
        for path in paths:
            path.port.set_handler(self._arrived)
            path.on_failure.listen(self._path_failed)

    # -- sender side ------------------------------------------------------

    def send(self, payload: bytes) -> None:
        """Send one message over the least-loaded path."""
        if self._failed:
            raise TransportError(f"{self.name} failed: {self._failed}")
        if len(payload) > self.max_message_size:
            raise MessageTooLargeError(
                f"{len(payload)}B exceeds the striped maximum "
                f"{self.max_message_size}B"
            )
        seq = self._next_seq
        self._next_seq += 1
        path = min(self.paths, key=lambda p: p.outstanding_bytes)
        framed = _SEQ_HEADER.pack(seq) + payload
        path.send(Message(framed, source=path.sender, target=path.receiver))
        self.stats.messages_sent += 1
        self.stats.per_path_sent[path.rms_id] = (
            self.stats.per_path_sent.get(path.rms_id, 0) + 1
        )

    # -- receiver side ------------------------------------------------------

    def _arrived(self, message: Message) -> None:
        data = message.payload
        if len(data) < _SEQ_HEADER.size:
            return
        (seq,) = _SEQ_HEADER.unpack_from(data, 0)
        payload = data[_SEQ_HEADER.size:]
        if seq < self._expected or seq in self._resequence:
            return  # duplicate
        if seq != self._expected:
            self.stats.resequenced += 1
            self._resequence[seq] = payload
            self.stats.max_resequence_depth = max(
                self.stats.max_resequence_depth, len(self._resequence)
            )
            return
        self._deliver(payload)
        while self._expected in self._resequence:
            self._deliver(self._resequence.pop(self._expected))

    def _deliver(self, payload: bytes) -> None:
        self._expected += 1
        self.stats.messages_delivered += 1
        self.port.deliver(payload)

    def _path_failed(self, rms: NetworkRms, reason: str) -> None:
        # A conservative policy: losing any stripe fails the stream (in-
        # order delivery cannot be maintained without retransmission).
        if self._failed:
            return
        self._failed = f"path {rms.name} failed: {reason}"
        self.on_failure.fire(self, self._failed)

    @property
    def resequence_depth(self) -> int:
        return len(self._resequence)

    @property
    def path_flows(self) -> List[tuple]:
        """(flow key, route) per stripe, in path order.

        Under ECMP distinct flow keys hash to (usually) distinct
        equal-cost routes, so this is the place to check a mux's
        stripes actually diverge across the fabric.
        """
        return [(path.flow_key, list(path.route)) for path in self.paths]

    def __repr__(self) -> str:
        return (
            f"<DownwardMux {self.name} paths={len(self.paths)} "
            f"sent={self.stats.messages_sent}>"
        )
