"""The subtransport layer (paper sections 3.2, 4.2, 4.3).

One :class:`SubtransportLayer` runs on each host.  "All upper-level
network communication in DASH passes through the ST.  The basic
functions of the ST are to provide security, to do deadline-based
message queueing, to multiplex ST RMS's onto network RMS's, and to
arrange for 'fast acknowledgement' of messages sent on ST RMS's."

Per active peer host the ST keeps

- a *control channel*: two low-capacity, low-delay network RMSs, one per
  direction, carrying a request/reply protocol for authentication and
  ST RMS establishment ("The first ST RMS creation request to a given
  peer triggers the creation of the ST control channel to that peer");
- a set of *data network RMSs*, cached and multiplexed (section 4.2),
  each with a piggybacking queue (section 4.3.1).

The ST also fragments/reassembles when the ST maximum message size
exceeds the network's ("It does not retransmit fragments; if a message
is incomplete when a fragment of the next message arrives, the partial
message is discarded", section 4.3).
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.message import Label, Message, fast_message
from repro.core.negotiation import CapabilityTable, PerformanceLimits, negotiate
from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    RmsRequest,
    StatisticalSpec,
)
from repro.core.rms import RmsState
from repro.errors import (
    AdmissionError,
    AuthenticationError,
    NegotiationError,
    RmsError,
    TransportError,
)
from repro.netsim.network import Network, NetworkRms
from repro.netsim.topology import Host
from repro.security.checksum import crc32
from repro.security.keys import KeyRegistry
# The control channel keeps the legacy CBC-MAC envelope; the *data* path
# runs whatever provider the channel negotiated (see SecurityContext).
from repro.security.mac import MAC_BYTES, compute_mac, verify_mac
from repro.sim.context import SimContext
from repro.sim.events import TimerGroup
from repro.sim.process import Future
from repro.subtransport.config import StConfig
from repro.subtransport.mux import MuxBinding
from repro.subtransport.piggyback import PiggybackQueue
from repro.subtransport.security import SecurityPlan, plan_security
from repro.subtransport.strms import StRms
from repro.subtransport.wire import (
    BundleEntry,
    FLAG_CHECKSUM,
    FLAG_ENCRYPTED,
    FLAG_FRAGMENT,
    FLAG_MAC,
    FRAG_HEADER_BYTES,
    SUBHEADER_BYTES,
    control_mac_material,
    decode_bundle,
    decode_bundle_flat,
    decode_control,
    encode_control,
    encode_single,
)

__all__ = ["SubtransportLayer", "StStats"]

CONTROL_PORT = "st-ctl"
DATA_PORT = "st-data"

_CHECKSUM_BYTES = 4
_BUNDLE_COUNT_BYTES = 2


@dataclass
class StStats:
    """Counters for one subtransport layer."""

    st_rms_created: int = 0
    network_rms_created: int = 0
    cache_hits: int = 0
    mux_joins: int = 0  # ST RMSs placed on an already-active network RMS
    bundles_sent: int = 0
    components_sent: int = 0
    bundles_received: int = 0
    components_received: int = 0
    garbled_bundles: int = 0
    checksum_drops: int = 0
    auth_drops: int = 0
    orphan_components: int = 0
    fragments_sent: int = 0
    fragments_received: int = 0
    partials_discarded: int = 0
    fast_acks_sent: int = 0
    auth_handshakes: int = 0
    control_messages: int = 0

    @property
    def components_per_bundle(self) -> float:
        if self.bundles_sent == 0:
            return 0.0
        return self.components_sent / self.bundles_sent


@dataclass
class _PendingRequest:
    """An outstanding control request with retransmission state."""

    future: Future
    fields: Dict[str, Any]
    attempts: int = 0
    timer: Any = None


@dataclass
class _RxStream:
    """Receive-side state for one incoming ST RMS."""

    st_rms: StRms
    fast_ack: bool = False
    sender_host: str = ""
    partial: bytearray = field(default_factory=bytearray)
    partial_expected: int = 0  # total bytes of the message being reassembled
    partial_offset: int = 0  # next expected fragment offset
    partial_deadline_time: float = 0.0
    partial_send_time: float = 0.0
    partial_trace: Optional[int] = None  # span of the message being reassembled
    #: Monotonic floor on receive-stage CPU deadlines: without it, a
    #: smaller (hence earlier-deadline) later message could overtake its
    #: predecessor in the EDF CPU queue, violating in-sequence delivery.
    last_cpu_deadline: float = 0.0
    #: Receiving host CPU, resolved lazily on the fast path.
    cpu: Any = None
    #: Per-size memo of the delay bound (-1.0 marks unbounded) and the
    #: receive-stage CPU cost -- both computed by the same functions the
    #: legacy path calls per message, so values are bit-identical.
    bound_cache: Dict[int, float] = field(default_factory=dict)
    cost_cache: Dict[int, float] = field(default_factory=dict)


class _PeerState:
    """Everything the ST knows about one remote host."""

    def __init__(self, host_name: str, network: Network) -> None:
        self.host_name = host_name
        self.network = network
        self.control_out: Optional[NetworkRms] = None
        self.control_in: Optional[NetworkRms] = None
        self.control_out_state = "none"  # none | creating | ready
        self.authenticated = False
        self.auth_in_progress = False
        self.ready_waiters: List[Future] = []
        self.outbox: List[Message] = []
        self.pending_replies: Dict[int, "_PendingRequest"] = {}
        self.auth_timer = None
        self.auth_attempts = 0
        self.req_ids = itertools.count(1)
        self.initiator_nonce: Optional[int] = None
        self.bindings: List[MuxBinding] = []
        self.cached: List[MuxBinding] = []
        self.queues: Dict[int, PiggybackQueue] = {}  # binding net rms id -> queue
        #: One coalesced deadline heap for every protocol timer aimed at
        #: this peer (piggyback flushes, control retransmissions, auth
        #: retries); ``None`` when StConfig.coalesced_timers is off.
        self.timers: Optional[TimerGroup] = None

    @property
    def ready(self) -> bool:
        return self.control_out_state == "ready" and self.authenticated


class SubtransportLayer:
    """The ST instance of one host."""

    def __init__(
        self,
        context: SimContext,
        host: Host,
        networks: List[Network],
        key_registry: Optional[KeyRegistry] = None,
        config: Optional[StConfig] = None,
    ) -> None:
        if not networks:
            raise TransportError("subtransport layer needs at least one network")
        self.context = context
        self.host = host
        self.networks = list(networks)
        self.keys = key_registry or KeyRegistry()
        self.config = config or StConfig()
        self.stats = StStats()
        # Hot-path switches and constants, resolved once.
        self._fast = self.config.message_fastpath
        self._coalesce = self.config.coalesced_timers
        self._window_cap = self.config.piggyback_window_cap
        self._peers: Dict[str, _PeerState] = {}
        self._network_preference: Dict[str, str] = {}
        self._rx: Dict[int, _RxStream] = {}
        if not self.keys.is_registered(host.name):
            self.keys.register_host(host.name)
        for network in self.networks:
            network.listen_incoming(host.name, self._incoming_network_rms)

    # ------------------------------------------------------------------
    # Peer and network selection
    # ------------------------------------------------------------------

    def network_for(self, peer_host: str) -> Network:
        """The preferred usable network shared with ``peer_host``.

        Candidates are the configured networks both hosts attach to, in
        configuration order.  Among candidates that can currently reach
        the peer (:meth:`Network.can_reach`), an explicit per-peer
        preference -- set by the resilience layer on failover -- wins,
        then configuration order.  When no candidate is usable the first
        candidate is returned, so establishment on a dead network still
        fails through the normal setup-timeout path.
        """
        candidates = [
            network
            for network in self.networks
            if self.host.name in network.hosts and peer_host in network.hosts
        ]
        if not candidates:
            raise TransportError(
                f"no common network between {self.host.name} and {peer_host}"
            )
        preferred = self._network_preference.get(peer_host)
        if preferred is not None:
            for network in candidates:
                if network.name == preferred and network.can_reach(
                    self.host.name, peer_host
                ):
                    return network
        for network in candidates:
            if network.can_reach(self.host.name, peer_host):
                return network
        return candidates[0]

    def set_network_preference(
        self, peer_host: str, network_name: Optional[str]
    ) -> None:
        """Prefer one attached network for a peer (resilience failover)."""
        if network_name is None:
            self._network_preference.pop(peer_host, None)
            return
        if network_name not in {network.name for network in self.networks}:
            raise TransportError(
                f"{self.host.name} is not attached to network {network_name!r}"
            )
        self._network_preference[peer_host] = network_name

    def _peer(self, peer_host: str) -> _PeerState:
        peer = self._peers.get(peer_host)
        if peer is None:
            peer = _PeerState(peer_host, self.network_for(peer_host))
            if self._coalesce:
                peer.timers = TimerGroup(self.context.loop)
            self._peers[peer_host] = peer
        else:
            self._maybe_retarget(peer)
        return peer

    def _peer_timers(self, peer: _PeerState):
        """Where this peer's protocol timers go: its TimerGroup when
        coalescing, else the loop (identical firing semantics)."""
        timers = peer.timers
        return timers if timers is not None else self.context.loop

    def _maybe_retarget(self, peer: _PeerState) -> None:
        """Re-point a peer at a usable network after its old one died.

        Only legal while no control channel exists or is being created:
        a live channel pins the peer to its network, and a failed one
        resets ``control_out_state`` to "none" first -- which is exactly
        what lets the next request migrate.  Authentication state is
        network-specific (trust differs per network), so it resets too.
        """
        if peer.control_out_state != "none":
            return
        target = self.network_for(peer.host_name)
        if target is peer.network:
            return
        self.context.tracer.record(
            "st", "retarget", host=self.host.name, peer=peer.host_name,
            frm=peer.network.name, to=target.name,
        )
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "st_peer_retargets", host=self.host.name, network=target.name
            ).inc()
        # Cached bindings on another network are useless to the new one;
        # live bindings were already failed by the network itself.
        for binding in list(peer.cached):
            if binding.network_rms.network is not target:
                peer.cached.remove(binding)
                peer.queues.pop(binding.network_rms.rms_id, None)
                binding.network_rms.close()
        peer.network = target
        peer.authenticated = False
        peer.auth_in_progress = False
        peer.control_in = None
        if peer.auth_timer is not None:
            peer.auth_timer.cancel()
            peer.auth_timer = None

    def _session_key(self, peer_host: str) -> bytes:
        if not self.keys.is_registered(peer_host):
            self.keys.register_host(peer_host)
        return self.keys.pairwise_key(self.host.name, peer_host)

    # ------------------------------------------------------------------
    # Public API: ST RMS lifecycle
    # ------------------------------------------------------------------

    def st_capability_table(self, peer_host: str) -> CapabilityTable:
        """What the ST can offer toward ``peer_host`` (ST-level 3.1 info).

        Network limits are widened by the ST's mechanisms: software
        security makes every security combination available, and
        fragmentation multiplies the maximum message size.  Delay bounds
        gain the ST processing allowances.
        """
        network = self.network_for(peer_host)
        base = network.capability_table(self.host.name, peer_host)
        probe = RmsParams()  # plain combination always supported
        limits = base.limits_for(probe)
        if limits is None:  # pragma: no cover - networks always offer plain
            raise NegotiationError(f"network {network.name} offers no service")
        st_limits = PerformanceLimits(
            best_delay=DelayBound(
                limits.best_delay.a
                + self.config.send_stage_allowance
                + self.config.recv_stage_allowance,
                limits.best_delay.b,
            ),
            max_capacity=limits.max_capacity,
            max_message_size=limits.max_message_size
            * self.config.max_message_multiple,
            floor_bit_error_rate=limits.floor_bit_error_rate,
            strongest_type=limits.strongest_type,
        )
        table = CapabilityTable()
        for authentication in (False, True):
            for privacy in (False, True):
                table.set_limits(False, authentication, privacy, st_limits)
        return table

    def create_st_rms(
        self,
        peer_host: str,
        port: str = "default",
        desired: Optional[RmsParams] = None,
        acceptable: Optional[RmsParams] = None,
        fast_ack: bool = False,
        request: Optional[RmsRequest] = None,
    ) -> Future:
        """Create an ST RMS from this host to a port on ``peer_host``.

        Parameters may be given either as an :class:`RmsRequest` or as
        the legacy ``desired``/``acceptable`` pair (not both).  Returns
        a future resolving to the :class:`StRms`.  The first request to
        a peer triggers control-channel creation and authentication;
        later requests reuse the channel and, when the multiplexing
        rules allow, an existing or cached network RMS.
        """
        request = RmsRequest.of(desired=desired, acceptable=acceptable,
                                request=request)
        desired = request.desired
        acceptable = request.floor
        result = Future(self.context.loop)
        process = self.context.spawn(
            self._create_flow(peer_host, port, desired, acceptable, fast_ack),
            name=f"st-create:{self.host.name}->{peer_host}",
        )
        process.finished.add_done_callback(lambda f: _pipe(f, result))
        return result

    def _create_flow(self, peer_host, port, desired, acceptable, fast_ack):
        peer = self._peer(peer_host)
        yield self.ensure_control(peer_host)
        actual = negotiate(desired, acceptable, self.st_capability_table(peer_host))
        plan = plan_security(
            actual, peer.network, self.config.security_provider
        )
        receiver_host = peer.network.hosts[peer_host]
        st_rms = StRms(
            self.context,
            actual,
            sender=Label(self.host.name, port),
            receiver=Label(peer_host, port),
            sender_st=self,
            plan=plan,
            session_key=self._session_key(peer_host),
            fast_ack=fast_ack and self.config.fast_ack_enabled,
            receiver_port=receiver_host.bind_port(port),
            name=f"st:{self.host.name}->{peer_host}:{port}",
        )
        reply = yield self._control_request(
            peer,
            {
                "op": "st_create",
                "st_id": st_rms.rms_id,
                "port": port,
                "fast_ack": st_rms.fast_ack,
                "capacity": actual.capacity,
            },
        )
        if reply.get("op") != "st_accept":
            st_rms.fail("peer rejected ST RMS creation")
            raise NegotiationError(
                f"{peer_host} rejected ST RMS: {reply.get('reason', 'unknown')}"
            )
        binding = yield from self._assign_binding(peer, actual)
        binding.attach(st_rms)
        st_rms.on_failure.listen(lambda rms, reason: self._st_failed(peer, rms))
        self.stats.st_rms_created += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter("st_rms_created", host=self.host.name).inc()
        self.context.tracer.record(
            "st", "st_rms_open", st=st_rms.name, net=binding.network_rms.name
        )
        return st_rms

    def close_st_rms(self, st_rms: StRms) -> None:
        """Tear one ST RMS down, possibly caching its network RMS."""
        if st_rms.state is not RmsState.OPEN:
            return
        peer = self._peer(st_rms.receiver.host)
        self._send_control(peer, {"op": "st_close", "st_id": st_rms.rms_id})
        self._detach(peer, st_rms)
        st_rms.delete()

    def _detach(self, peer: _PeerState, st_rms: StRms) -> None:
        binding = st_rms.binding
        if binding is None:
            return
        binding.detach(st_rms)
        if not binding.is_idle or binding not in peer.bindings:
            return
        peer.bindings.remove(binding)
        queue = peer.queues.get(binding.network_rms.rms_id)
        if queue is not None:
            queue.flush("forced")
        if (
            self.config.cache_enabled
            and len(peer.cached) < self.config.cache_size_per_peer
            and binding.network_rms.is_open
        ):
            peer.cached.append(binding)
        else:
            peer.queues.pop(binding.network_rms.rms_id, None)
            peer.network.delete_rms(binding.network_rms)

    def _st_failed(self, peer: _PeerState, st_rms: StRms) -> None:
        self._detach(peer, st_rms)

    def close_peer(self, peer_host: str) -> None:
        """Tear down all state toward one peer, leaving zero live timers.

        Every pending control request fails, its retransmission timer is
        cancelled (and, with coalesced timers, dropped from the peer's
        group eagerly), queued components are flushed, and the control
        and cached network RMSs are closed.
        """
        peer = self._peers.pop(peer_host, None)
        if peer is None:
            return
        if peer.auth_timer is not None:
            peer.auth_timer.cancel()
            peer.auth_timer = None
        peer.auth_in_progress = False
        pending, peer.pending_replies = peer.pending_replies, {}
        error = TransportError(f"peer {peer_host} closed")
        for request in pending.values():
            if request.timer is not None:
                request.timer.cancel()
                request.timer = None
            if not request.future.done:
                request.future.set_exception(error)
        self._fail_waiters(peer, error)
        for binding in list(peer.bindings) + list(peer.cached):
            queue = peer.queues.pop(binding.network_rms.rms_id, None)
            if queue is not None:
                queue.flush("forced")
            for st_rms in list(binding.st_rms.values()):
                binding.detach(st_rms)
                st_rms.delete()
            if binding.network_rms.is_open:
                peer.network.delete_rms(binding.network_rms)
        peer.bindings.clear()
        peer.cached.clear()
        if peer.control_out is not None and peer.control_out.is_open:
            peer.network.delete_rms(peer.control_out)
        peer.control_out = None
        peer.control_out_state = "none"
        if peer.timers is not None:
            peer.timers.cancel_all()

    # ------------------------------------------------------------------
    # Control channel (section 3.2)
    # ------------------------------------------------------------------

    def ensure_control(self, peer_host: str) -> Future:
        """A future resolving once the authenticated control channel is up."""
        peer = self._peer(peer_host)
        future = Future(self.context.loop)
        if peer.ready:
            future.set_result(None)
            return future
        peer.ready_waiters.append(future)
        self._ensure_control_out(peer)
        return future

    def _control_params(self) -> RmsParams:
        return RmsParams(
            capacity=self.config.control_capacity,
            max_message_size=min(512, self.config.control_capacity),
            delay_bound=DelayBound(self.config.control_delay_bound, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    def _ensure_control_out(self, peer: _PeerState) -> None:
        if peer.control_out_state != "none":
            return
        self._maybe_retarget(peer)
        peer.control_out_state = "creating"
        params = self._control_params()
        acceptable = params.with_(
            delay_bound=DelayBound(self.config.control_delay_bound * 4, 1e-5)
        )
        future = peer.network.create_rms(
            Label(self.host.name, CONTROL_PORT),
            Label(peer.host_name, CONTROL_PORT),
            params,
            acceptable,
        )
        future.add_done_callback(lambda f: self._control_out_done(peer, f))

    def _control_out_done(self, peer: _PeerState, future: Future) -> None:
        if future.failed:
            peer.control_out_state = "none"
            self._fail_waiters(peer, TransportError("control channel setup failed"))
            return
        peer.control_out = future.result()
        peer.control_out.on_failure.listen(
            lambda rms, reason: self._control_failed(peer, reason)
        )
        peer.control_out_state = "ready"
        for message in peer.outbox:
            self._control_transmit(peer, message)
        peer.outbox.clear()
        self._start_authentication(peer)

    def _control_failed(self, peer: _PeerState, reason: str) -> None:
        peer.control_out = None
        peer.control_out_state = "none"
        peer.authenticated = False
        self._fail_waiters(peer, TransportError(f"control channel failed: {reason}"))

    def _fail_waiters(self, peer: _PeerState, error: Exception) -> None:
        waiters, peer.ready_waiters = peer.ready_waiters, []
        for waiter in waiters:
            waiter.set_exception(error)

    def _start_authentication(self, peer: _PeerState) -> None:
        trusted = peer.network.properties.trusted and self.config.trust_optimization
        if trusted:
            peer.authenticated = True
            self._resolve_waiters(peer)
            return
        if peer.auth_in_progress or peer.authenticated:
            return
        peer.auth_in_progress = True
        self.stats.auth_handshakes += 1
        nonce = self.context.rng.stream(f"auth:{self.host.name}").getrandbits(48)
        peer.initiator_nonce = nonce
        peer.auth_attempts = 0
        self._send_control(
            peer, {"op": "auth1", "from": self.host.name, "na": nonce}
        )
        peer.auth_timer = self._peer_timers(peer).call_after(
            self.config.auth_retry_timeout, self._auth_timeout, peer
        )

    def _auth_timeout(self, peer: _PeerState) -> None:
        peer.auth_timer = None
        if peer.authenticated or not peer.auth_in_progress:
            return
        peer.auth_attempts += 1
        if peer.auth_attempts > self.config.auth_max_retries:
            peer.auth_in_progress = False
            self._fail_waiters(
                peer,
                AuthenticationError(
                    f"authentication with {peer.host_name} timed out"
                ),
            )
            return
        self._send_control(
            peer,
            {"op": "auth1", "from": self.host.name, "na": peer.initiator_nonce},
        )
        peer.auth_timer = self._peer_timers(peer).call_after(
            self.config.auth_retry_timeout * (2 ** peer.auth_attempts),
            self._auth_timeout,
            peer,
        )

    def _resolve_waiters(self, peer: _PeerState) -> None:
        waiters, peer.ready_waiters = peer.ready_waiters, []
        for waiter in waiters:
            waiter.set_result(None)

    # -- control send/receive machinery ---------------------------------

    def _send_control(self, peer: _PeerState, fields: Dict[str, Any]) -> None:
        key = self._session_key(peer.host_name)
        mac = compute_mac(key, control_mac_material(fields))
        message = Message(
            encode_control(fields, mac=mac),
            source=Label(self.host.name, CONTROL_PORT),
            target=Label(peer.host_name, CONTROL_PORT),
        )
        self.stats.control_messages += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "st_control_messages", host=self.host.name
            ).inc()
        if peer.control_out_state == "ready" and peer.control_out is not None:
            self._control_transmit(peer, message)
        else:
            peer.outbox.append(message)
            self._ensure_control_out(peer)

    def _control_transmit(self, peer: _PeerState, message: Message) -> None:
        deadline = self.context.now + self.config.control_delay_bound
        peer.control_out.send(message, deadline=deadline)

    def _control_request(self, peer: _PeerState, fields: Dict[str, Any]) -> Future:
        req_id = next(peer.req_ids)
        fields = dict(fields)
        fields["req"] = req_id
        pending = _PendingRequest(future=Future(self.context.loop), fields=fields)
        peer.pending_replies[req_id] = pending
        self._send_control(peer, fields)
        pending.timer = self._peer_timers(peer).call_after(
            self.config.control_retry_timeout, self._request_timeout, peer, req_id
        )
        return pending.future

    def _request_timeout(self, peer: _PeerState, req_id: int) -> None:
        pending = peer.pending_replies.get(req_id)
        if pending is None:
            return
        pending.attempts += 1
        if pending.attempts > self.config.control_max_retries:
            peer.pending_replies.pop(req_id, None)
            pending.future.set_exception(
                TransportError(
                    f"control request to {peer.host_name} timed out"
                )
            )
            return
        self._send_control(peer, pending.fields)
        pending.timer = self._peer_timers(peer).call_after(
            self.config.control_retry_timeout * (2 ** pending.attempts),
            self._request_timeout,
            peer,
            req_id,
        )

    def _incoming_network_rms(self, rms: NetworkRms) -> None:
        if rms.receiver.host != self.host.name:
            return
        if rms.receiver.port == CONTROL_PORT:
            peer = self._peer(rms.sender.host)
            peer.control_in = rms
            rms.port.set_handler(
                lambda message, p=peer: self._control_arrived(p, message)
            )
        elif rms.receiver.port == DATA_PORT:
            rms.port.set_handler(
                lambda message, r=rms: self._data_arrived(r, message)
            )

    def _control_arrived(self, peer: _PeerState, message: Message) -> None:
        try:
            fields = decode_control(message.payload)
        except TransportError:
            self.stats.garbled_bundles += 1
            return
        key = self._session_key(peer.host_name)
        mac_hex = fields.get("_mac")
        if mac_hex is None or not verify_mac(
            key, control_mac_material(fields), bytes.fromhex(mac_hex)
        ):
            self.stats.auth_drops += 1
            return
        op = fields.get("op")
        if op == "auth1":
            self._handle_auth1(peer, fields)
        elif op == "auth2":
            self._handle_auth2(peer, fields)
        elif op == "auth3":
            self._handle_auth3(peer, fields)
        elif op == "st_create":
            self._handle_st_create(peer, fields)
        elif op in ("st_accept", "st_reject"):
            pending = peer.pending_replies.pop(fields.get("req", -1), None)
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                pending.future.set_result(fields)
        elif op == "st_close":
            self._rx.pop(fields.get("st_id", -1), None)
        elif op == "fast_ack":
            st_rms = StRms.registry.get(fields.get("st_id", -1))
            if st_rms is not None:
                st_rms.on_fast_ack.fire(fields.get("seq", -1))

    # -- authentication handshake (challenge/response on the channel) ----

    def _handle_auth1(self, peer: _PeerState, fields: Dict[str, Any]) -> None:
        nb = self.context.rng.stream(f"auth:{self.host.name}").getrandbits(48)
        self._send_control(
            peer,
            {"op": "auth2", "from": self.host.name, "na": fields["na"], "nb": nb},
        )

    def _handle_auth2(self, peer: _PeerState, fields: Dict[str, Any]) -> None:
        if peer.initiator_nonce is None or fields.get("na") != peer.initiator_nonce:
            self.stats.auth_drops += 1
            return
        self._send_control(
            peer, {"op": "auth3", "from": self.host.name, "nb": fields["nb"]}
        )
        peer.authenticated = True
        peer.auth_in_progress = False
        if peer.auth_timer is not None:
            peer.auth_timer.cancel()
            peer.auth_timer = None
        self._resolve_waiters(peer)

    def _handle_auth3(self, peer: _PeerState, fields: Dict[str, Any]) -> None:
        # The MAC on the envelope already proves key possession; seeing
        # our nonce back completes mutual authentication.
        peer.authenticated = True
        self._resolve_waiters(peer)

    # -- ST RMS establishment, receiver side ------------------------------

    def _handle_st_create(self, peer: _PeerState, fields: Dict[str, Any]) -> None:
        st_id = fields.get("st_id", -1)
        st_rms = StRms.registry.get(st_id)
        if st_rms is None:
            self._send_control(
                peer,
                {
                    "op": "st_reject",
                    "req": fields.get("req"),
                    "reason": "unknown st_id",
                },
            )
            return
        self._rx[st_id] = _RxStream(
            st_rms=st_rms,
            fast_ack=bool(fields.get("fast_ack")),
            sender_host=peer.host_name,
        )
        self._send_control(peer, {"op": "st_accept", "req": fields.get("req")})

    # ------------------------------------------------------------------
    # Data path: multiplexing, piggybacking, fragmentation, security
    # ------------------------------------------------------------------

    def _assign_binding(self, peer: _PeerState, st_params: RmsParams):
        """Generator yielding a binding that can carry the new ST RMS."""
        enforce = self.config.enforce_mux_rules
        obs = self.context.obs
        if self.config.multiplexing_enabled:
            for binding in peer.bindings:
                if binding.can_accept(st_params, enforce) is None:
                    self.stats.mux_joins += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "st_mux_joins", host=self.host.name
                        ).inc()
                    return binding
        if self.config.cache_enabled:
            for binding in list(peer.cached):
                if binding.can_accept(st_params, enforce) is None:
                    peer.cached.remove(binding)
                    peer.bindings.append(binding)
                    self.stats.cache_hits += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "st_cache_hits", host=self.host.name
                        ).inc()
                    return binding
        desired, acceptable = self._network_params_for(peer, st_params)
        source = Label(self.host.name, DATA_PORT)
        target = Label(peer.host_name, DATA_PORT)
        try:
            future = peer.network.create_rms(source, target, desired, acceptable)
        except AdmissionError:
            # The headroom-inflated request did not fit; retry with the
            # exact acceptable parameters before giving up.
            future = peer.network.create_rms(
                source, target, acceptable, acceptable
            )
        network_rms = yield future
        binding = MuxBinding(network_rms)
        queue = PiggybackQueue(
            self.context,
            max_bundle_payload=network_rms.params.max_message_size,
            flush_fn=(
                self._make_fast_flusher(binding)
                if self._fast
                else self._make_flusher(binding)
            ),
            ordering_floor=binding.ordering_floor,
            enabled=self.config.piggyback_enabled,
            timer_group=peer.timers,
            fast=self._fast,
        )
        binding.queue = queue
        if self._fast:
            network_rms.fast_path = True
        peer.queues[network_rms.rms_id] = queue
        peer.bindings.append(binding)
        network_rms.on_failure.listen(
            lambda rms, reason, b=binding, p=peer: self._network_rms_failed(
                p, b, reason
            )
        )
        self.stats.network_rms_created += 1
        if obs.enabled:
            obs.metrics.counter(
                "st_network_rms_created", host=self.host.name
            ).inc()
        return binding

    def _network_rms_failed(
        self, peer: _PeerState, binding: MuxBinding, reason: str
    ) -> None:
        for st_rms in list(binding.st_rms.values()):
            st_rms.fail(f"network RMS failed: {reason}")
        if binding in peer.bindings:
            peer.bindings.remove(binding)
        if binding in peer.cached:
            peer.cached.remove(binding)
        peer.queues.pop(binding.network_rms.rms_id, None)

    def _network_params_for(self, peer: _PeerState, st_params: RmsParams):
        """Derive the network RMS request for a new binding (section 4.2)."""
        plan = plan_security(
            st_params, peer.network, self.config.security_provider
        )
        mtu = peer.network.properties.mtu
        guaranteed = st_params.delay_bound_type != DelayBoundType.BEST_EFFORT
        if guaranteed:
            # Reserved resources scale with capacity and tighten with the
            # delay bound, so guaranteed streams ask lean: modest
            # capacity headroom for multiplexing, and the loosest legal
            # bound (the budget) to minimize the worst-case reservation.
            capacity = st_params.capacity * 2
        else:
            capacity = max(self.config.default_network_capacity, st_params.capacity)
        allowances = (
            self.config.send_stage_allowance + self.config.recv_stage_allowance
        )
        if st_params.delay_bound.is_unbounded:
            desired_bound = DelayBound.unbounded()
            acceptable_bound = DelayBound.unbounded()
        else:
            budget = max(st_params.delay_bound.a - allowances, 1e-6)
            if guaranteed:
                desired_bound = DelayBound(budget, st_params.delay_bound.b)
            else:
                # Leave half the remaining slack as piggybacking window.
                desired_bound = DelayBound(budget * 0.5, st_params.delay_bound.b)
            acceptable_bound = DelayBound(budget, st_params.delay_bound.b)
        statistical = None
        if st_params.delay_bound_type == DelayBoundType.STATISTICAL:
            spec = st_params.statistical
            statistical = StatisticalSpec(
                average_load=spec.average_load * 2,
                burstiness=spec.burstiness,
                delay_probability=spec.delay_probability,
            )
        desired = RmsParams(
            reliability=False,
            authentication=plan.network_authentication,
            privacy=plan.network_privacy,
            capacity=capacity,
            max_message_size=mtu,
            delay_bound=desired_bound,
            delay_bound_type=st_params.delay_bound_type,
            statistical=statistical,
            bit_error_rate=max(
                st_params.bit_error_rate, peer.network.medium_bit_error_rate
            ),
        )
        if st_params.delay_bound_type == DelayBoundType.STATISTICAL:
            acceptable_stat = st_params.statistical
        else:
            acceptable_stat = None
        acceptable = desired.with_(
            capacity=st_params.capacity,
            delay_bound=acceptable_bound,
            statistical=acceptable_stat,
        )
        return desired, acceptable

    def _make_flusher(self, binding: MuxBinding):
        def flush(payload: bytes, deadline: float, st_ids: List[int], count: int):
            message = Message(
                payload,
                source=Label(self.host.name, DATA_PORT),
                target=Label(binding.network_rms.receiver.host, DATA_PORT),
            )
            binding.network_rms.send(message, deadline=deadline)
            binding.record_deadline(st_ids, deadline)
            binding.bundles_sent += 1
            binding.components_sent += count
            self.stats.bundles_sent += 1
            self.stats.components_sent += count
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter("st_bundles_sent", host=self.host.name).inc()
                obs.metrics.counter(
                    "st_components_sent", host=self.host.name
                ).inc(count)

        return flush

    def _make_fast_flusher(self, binding: MuxBinding):
        """Like :meth:`_make_flusher` with the per-flush lookups hoisted:
        labels, network RMS, deadline table, and stats are captured once
        and the network send goes through :meth:`Rms.send_fast`."""
        source = Label(self.host.name, DATA_PORT)
        network_rms = binding.network_rms
        target = Label(network_rms.receiver.host, DATA_PORT)
        last_deadline = binding.last_network_deadline
        stats = self.stats
        context = self.context

        def flush(payload: bytes, deadline: float, st_ids: List[int], count: int):
            obs = context.obs
            if obs.enabled:
                message = Message(payload, source=source, target=target)
                network_rms.send_fast(message, len(payload), deadline)
            else:
                message = fast_message(payload, source, target)
                network_rms.send_data_fast(message, len(payload), deadline)
            for st_id in st_ids:
                last_deadline[st_id] = deadline
            binding.bundles_sent += 1
            binding.components_sent += count
            stats.bundles_sent += 1
            stats.components_sent += count
            if obs.enabled:
                obs.metrics.counter("st_bundles_sent", host=self.host.name).inc()
                obs.metrics.counter(
                    "st_components_sent", host=self.host.name
                ).inc(count)

        return flush

    # -- send path ----------------------------------------------------------

    def _st_send(self, st_rms: StRms, message: Message) -> None:
        """Entry point from :meth:`StRms._transmit`."""
        binding = st_rms.binding
        if binding is None:
            raise RmsError(f"{st_rms.name} has no network binding yet")
        arrival = self.context.now
        plan = st_rms.plan
        stage_deadline = arrival + self.config.send_stage_allowance
        self.host.cpu.submit_protocol_stage(
            f"st/send:{st_rms.rms_id}",
            message.size,
            stage_deadline,
            lambda: self._send_stage_done(st_rms, message, arrival),
            checksum=plan.checksum,
            encrypt=plan.encrypt,
            mac=plan.mac,
            trace_id=message.trace_id,
        )

    def _st_send_fast(
        self, st_rms: StRms, message: Message, size: int, arrival: float
    ) -> None:
        """Hot-path entry from :meth:`StRms.send`: precomputed size, no
        closures, stage cost memoized per message size.

        The cost memo calls the same :meth:`CpuCostModel.protocol_cost`
        the legacy path calls per message, so stage times (and therefore
        every downstream simulated timestamp) are bit-identical.
        """
        if st_rms.binding is None:
            raise RmsError(f"{st_rms.name} has no network binding yet")
        cpu = self.host.cpu
        cost = st_rms._send_cost_cache.get(size)
        if cost is None:
            plan = st_rms.plan
            cost = cpu.costs.protocol_cost(
                size, checksum=plan.checksum, encrypt=plan.encrypt, mac=plan.mac
            )
            st_rms._send_cost_cache[size] = cost
        cpu.submit_fast(
            st_rms._send_stage_name,
            cost,
            arrival + self.config.send_stage_allowance,
            self._send_stage_done_fast,
            (st_rms, message, size, arrival),
            owner="st",
            trace_id=message.trace_id,
        )

    def _send_stage_done_fast(
        self, st_rms: StRms, message: Message, size: int, arrival: float
    ) -> None:
        binding = st_rms.binding
        if binding is None or not binding.network_rms.is_open:
            st_rms._drop(message, "binding lost")
            return
        security = st_rms.security
        slack = st_rms._slack_cache.get(size)
        if slack is None:
            # arrival=0.0 turns _max_transmission_deadline into the pure
            # per-size slack; adding it back reproduces the same float.
            slack = self._max_transmission_deadline(
                st_rms, binding.network_rms.params, size, 0.0
            )
            st_rms._slack_cache[size] = slack
        max_deadline = arrival + slack
        window_close = arrival + self._window_cap
        flush_by = window_close if window_close < max_deadline else max_deadline
        cached = st_rms._max_component_cache
        if cached is None or cached[0] is not binding:
            st_rms._max_component_cache = cached = (
                binding,
                binding.network_rms.params.max_message_size
                - _BUNDLE_COUNT_BYTES
                - SUBHEADER_BYTES
                - security.overhead,
            )
        max_component = cached[1]
        if size > max_component:
            queue = binding.queue
            self._send_fragments(
                st_rms, binding, queue, message, max_component, max_deadline,
                arrival,
            )
            return
        seq = st_rms.next_seq
        st_rms.next_seq = seq + 1
        protect = security.protect
        if protect is None:
            data = message.payload
            flags = 0
        else:
            data = protect(seq, message.payload)
            flags = security.flags
        obs = self.context.obs
        if obs.enabled:
            if message.trace_id is not None:
                obs.spans.stash((st_rms.rms_id, seq), message.trace_id)
            obs.spans.event(
                message.trace_id, "st", "enqueue",
                st=st_rms.name, queued=binding.queue is not None,
            )
        entry = BundleEntry(
            st_rms_id=st_rms.rms_id,
            seq=seq,
            flags=flags,
            payload=data,
            send_time=arrival,
            trace_id=message.trace_id,
        )
        queue = binding.queue
        if queue is not None:
            queue.submit_fast(
                entry, SUBHEADER_BYTES + len(data), max_deadline, flush_by
            )
        else:
            self._emit_tx(entry)
            self._make_flusher(binding)(
                _encode_single(entry), max_deadline, [st_rms.rms_id], 1
            )

    def _send_stage_done(
        self, st_rms: StRms, message: Message, arrival: float
    ) -> None:
        binding = st_rms.binding
        if binding is None or not binding.network_rms.is_open:
            st_rms._drop(message, "binding lost")
            return
        peer = self._peer(st_rms.receiver.host)
        queue = peer.queues.get(binding.network_rms.rms_id)
        net_params = binding.network_rms.params
        max_deadline = self._max_transmission_deadline(
            st_rms, net_params, message.size, arrival
        )
        flush_by = min(
            max_deadline, arrival + self.config.piggyback_window_cap
        )
        overhead = self._security_overhead(st_rms.plan)
        max_component = (
            net_params.max_message_size
            - _BUNDLE_COUNT_BYTES
            - SUBHEADER_BYTES
            - overhead
        )
        if message.size <= max_component:
            entry = self._make_entry(
                st_rms, message.payload, 0, arrival, trace_id=message.trace_id
            )
            obs = self.context.obs
            if obs.enabled:
                obs.spans.event(
                    message.trace_id, "st", "enqueue",
                    st=st_rms.name, queued=queue is not None,
                )
            if queue is not None:
                queue.submit(entry, max_deadline, flush_by=flush_by)
            else:
                self._emit_tx(entry)
                self._make_flusher(binding)(
                    _encode_single(entry), max_deadline, [st_rms.rms_id], 1
                )
        else:
            self._send_fragments(
                st_rms, binding, queue, message, max_component, max_deadline, arrival
            )

    def _security_overhead(self, plan: SecurityPlan) -> int:
        overhead = 0
        if plan.mac:
            overhead += MAC_BYTES
        if plan.checksum:
            overhead += _CHECKSUM_BYTES
        return overhead

    def _max_transmission_deadline(
        self, st_rms: StRms, net_params: RmsParams, size: int, arrival: float
    ) -> float:
        """Arrival time plus the ST-minus-network delay slack (4.3.1)."""
        st_bound = st_rms.params.delay_bound
        if st_bound.is_unbounded or net_params.delay_bound.is_unbounded:
            # Best-effort traffic has no bound; give it a generous
            # scheduling deadline so bounded traffic outranks it.
            return arrival + 1.0
        slack = st_bound.bound_for(size) - net_params.delay_bound.bound_for(size)
        slack -= (
            self.config.send_stage_allowance + self.config.recv_stage_allowance
        )
        return arrival + max(slack, 0.0)

    def _emit_tx(self, entry: BundleEntry) -> None:
        """Span event for a component shipped outside a piggyback queue."""
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(
                entry.trace_id, "net", "tx",
                st_rms=entry.st_rms_id, seq=entry.seq, bundled=1,
            )

    def _make_entry(
        self,
        st_rms: StRms,
        chunk: bytes,
        base_flags: int,
        arrival: float,
        frag_offset: int = 0,
        frag_total: int = 0,
        trace_id: Optional[int] = None,
    ) -> BundleEntry:
        """Apply the security plan to one component and wrap it."""
        seq = st_rms.take_seq()
        obs = self.context.obs
        if obs.enabled and trace_id is not None:
            # Correlate the in-flight component with its span so the
            # receiving ST can rejoin the trace (no wire-format change).
            obs.spans.stash((st_rms.rms_id, seq), trace_id)
        # The context's protect runs the provider this channel
        # negotiated, so the legacy and fast datapaths emit identical
        # wire bytes whichever engine is configured.
        security = st_rms.security
        protect = security.protect
        if protect is None:
            flags = base_flags
            data = chunk
        else:
            flags = base_flags | security.flags
            data = protect(seq, chunk)
        return BundleEntry(
            st_rms_id=st_rms.rms_id,
            seq=seq,
            flags=flags,
            payload=data,
            send_time=arrival,
            frag_offset=frag_offset,
            frag_total=frag_total,
            trace_id=trace_id,
        )

    def _send_fragments(
        self,
        st_rms: StRms,
        binding: MuxBinding,
        queue: Optional[PiggybackQueue],
        message: Message,
        max_component: int,
        max_deadline: float,
        arrival: float,
    ) -> None:
        """Fragment a large client message (section 4.3).

        Fragments are never piggybacked; the queue is flushed first so
        per-stream ordering survives the direct sends.
        """
        if queue is not None:
            queue.flush("forced")
        chunk_size = max_component - FRAG_HEADER_BYTES
        if chunk_size <= 0:
            raise TransportError(
                "network maximum message size too small for fragments"
            )
        total = message.size
        flusher = self._make_flusher(binding)
        st_rms.messages_fragmented += 1
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(
                message.trace_id, "st", "enqueue",
                st=st_rms.name, fragmented=True, total=total,
            )
        # One view over the client payload; each fragment is a zero-copy
        # slice of it all the way through encode_bundle's join.
        payload_view = memoryview(message.payload)
        offset = 0
        while offset < total:
            chunk = payload_view[offset : offset + chunk_size]
            entry = self._make_entry(
                st_rms,
                chunk,
                FLAG_FRAGMENT,
                arrival,
                frag_offset=offset,
                frag_total=total,
                trace_id=message.trace_id,
            )
            deadline = max(max_deadline, binding.ordering_floor([st_rms.rms_id]))
            self._emit_tx(entry)
            flusher(_encode_single(entry), deadline, [st_rms.rms_id], 1)
            self.stats.fragments_sent += 1
            st_rms.fragments_sent += 1
            if obs.enabled:
                obs.metrics.counter(
                    "st_fragments_sent", host=self.host.name
                ).inc()
            offset += len(chunk)

    # -- receive path ----------------------------------------------------------

    def _data_arrived(self, network_rms: NetworkRms, message: Message) -> None:
        if self._fast and not self.context.obs.enabled:
            # Flat decode: the same wire validation, no per-component
            # BundleEntry objects on the hot path.
            try:
                flat = decode_bundle_flat(message.payload)
            except TransportError:
                self.stats.garbled_bundles += 1
                return
            self.stats.bundles_received += 1
            rx_map = self._rx
            for fields in flat:
                rx = rx_map.get(fields[0])
                if rx is None:
                    self.stats.orphan_components += 1
                    continue
                self._receive_fields_fast(rx, fields)
            return
        try:
            entries = decode_bundle(message.payload)
        except TransportError:
            self.stats.garbled_bundles += 1
            return
        self.stats.bundles_received += 1
        for entry in entries:
            self._receive_entry(entry)

    def _receive_fields_fast(self, rx: _RxStream, fields: tuple) -> None:
        """Hot-path component receive: one attribute test replaces the
        per-flag security branches; fragments and anything unusual
        (flags on a security-elided stream, failed verification) fall
        back to the legacy path -- rebuilding the BundleEntry it wants --
        for identical accounting."""
        st_rms_id, seq, flags, payload, send_time, frag_offset, frag_total = fields
        st_rms = rx.st_rms
        if flags:
            unprotect = st_rms.security.unprotect
            if flags & FLAG_FRAGMENT or unprotect is None:
                self._receive_entry(BundleEntry(
                    st_rms_id=st_rms_id, seq=seq, flags=flags,
                    payload=payload, send_time=send_time,
                    frag_offset=frag_offset, frag_total=frag_total,
                ))
                return
            data, _ = unprotect(flags, seq, payload)
            if data is None:
                # Legacy-exact drop accounting.
                self._receive_entry(BundleEntry(
                    st_rms_id=st_rms_id, seq=seq, flags=flags,
                    payload=payload, send_time=send_time,
                    frag_offset=frag_offset, frag_total=frag_total,
                ))
                return
        else:
            data = payload
        self.stats.components_received += 1
        self._deliver_after_cpu_fast(rx, data, len(data), send_time, None)

    def _receive_entry(self, entry: BundleEntry) -> None:
        obs = self.context.obs
        if obs.enabled:
            # Decoded entries lost their span on the wire; rejoin it from
            # the tracer's side table.
            entry.trace_id = obs.spans.claim((entry.st_rms_id, entry.seq))
            obs.spans.event(
                entry.trace_id, "net", "rx",
                st_rms=entry.st_rms_id, seq=entry.seq, host=self.host.name,
            )
        rx = self._rx.get(entry.st_rms_id)
        if rx is None:
            self.stats.orphan_components += 1
            if obs.enabled:
                obs.metrics.counter(
                    "st_orphan_components", host=self.host.name
                ).inc()
            return
        st_rms = rx.st_rms
        security = st_rms.security
        data = entry.payload
        if (
            entry.flags & (FLAG_CHECKSUM | FLAG_MAC | FLAG_ENCRYPTED)
            and type(data) is not bytes
        ):
            # Security transforms concatenate and compare; materialize
            # the decoded view once.  The plain (security-elided) path
            # below stays zero-copy.
            data = bytes(data)
        if entry.flags & FLAG_CHECKSUM:
            if len(data) < _CHECKSUM_BYTES:
                self.stats.checksum_drops += 1
                return
            body, tag = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
            if struct.pack(">I", crc32(body)) != tag:
                self.stats.checksum_drops += 1
                st_rms._drop(_phantom(body, entry.trace_id), "checksum failure")
                return
            data = body
        if entry.flags & FLAG_MAC:
            if len(data) < MAC_BYTES:
                self.stats.auth_drops += 1
                return
            body, tag = data[:-MAC_BYTES], data[-MAC_BYTES:]
            if not security.mac_ok(entry.seq, body, tag):
                self.stats.auth_drops += 1
                st_rms._drop(_phantom(body, entry.trace_id), "authentication failure")
                return
            data = body
        if entry.flags & FLAG_ENCRYPTED:
            data = security.transform(entry.seq, data)
        self.stats.components_received += 1
        if entry.is_fragment:
            self._receive_fragment(rx, entry, data)
        else:
            self._deliver_after_cpu(rx, data, entry.send_time, entry.trace_id)

    def _receive_fragment(
        self, rx: _RxStream, entry: BundleEntry, data: bytes
    ) -> None:
        self.stats.fragments_received += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "st_fragments_received", host=self.host.name
            ).inc()
        if entry.frag_offset == 0:
            if rx.partial_expected and len(rx.partial) < rx.partial_expected:
                # A fragment of the next message arrived while a message
                # was incomplete: discard the partial (section 4.3).
                self.stats.partials_discarded += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "st_partials_discarded", host=self.host.name
                    ).inc()
                rx.st_rms._drop(
                    _phantom(bytes(rx.partial), rx.partial_trace),
                    "partial discarded",
                )
            rx.partial = bytearray()
            rx.partial_expected = entry.frag_total
            rx.partial_offset = 0
            rx.partial_send_time = entry.send_time
            rx.partial_trace = entry.trace_id
        if entry.frag_offset != rx.partial_offset or rx.partial_expected == 0:
            # A gap (lost fragment): the message can never complete.
            # Leave the partial to be discarded on the next first-fragment.
            rx.partial_offset = -1
            return
        rx.partial.extend(data)
        rx.partial_offset += len(data)
        if len(rx.partial) >= rx.partial_expected:
            payload = bytes(rx.partial)
            rx.partial = bytearray()
            rx.partial_expected = 0
            rx.partial_offset = 0
            self._deliver_after_cpu(
                rx, payload, rx.partial_send_time, rx.partial_trace
            )

    def _deliver_after_cpu(
        self,
        rx: _RxStream,
        payload: bytes,
        send_time: float,
        trace_id: Optional[int] = None,
    ) -> None:
        st_rms = rx.st_rms
        receiver_host = st_rms.receiver.host
        network = self._peer(rx.sender_host).network
        host = network.hosts.get(receiver_host)
        if host is None:  # pragma: no cover - receiver always attached
            return
        bound = st_rms.params.delay_bound
        deadline = (
            send_time + bound.bound_for(len(payload))
            if not bound.is_unbounded
            else self.context.now + self.config.recv_stage_allowance
        )
        # In-sequence delivery (basic property 2): CPU-stage deadlines on
        # one stream never decrease, so stable EDF keeps stream order.
        deadline = max(deadline, rx.last_cpu_deadline)
        rx.last_cpu_deadline = deadline
        plan = st_rms.plan
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(
                trace_id, "st", "rx", st=st_rms.name, size=len(payload)
            )
        host.cpu.submit_protocol_stage(
            f"st/recv:{st_rms.rms_id}",
            len(payload),
            deadline,
            lambda: self._final_deliver(rx, payload, send_time, trace_id),
            checksum=plan.checksum,
            encrypt=plan.encrypt,
            mac=plan.mac,
            trace_id=trace_id,
        )

    def _deliver_after_cpu_fast(
        self,
        rx: _RxStream,
        payload: bytes,
        size: int,
        send_time: float,
        trace_id: Optional[int],
    ) -> None:
        st_rms = rx.st_rms
        cpu = rx.cpu
        if cpu is None:
            network = self._peer(rx.sender_host).network
            host = network.hosts.get(st_rms.receiver.host)
            if host is None:  # pragma: no cover - receiver always attached
                return
            cpu = rx.cpu = host.cpu
        bound = rx.bound_cache.get(size)
        if bound is None:
            delay_bound = st_rms.params.delay_bound
            bound = (
                delay_bound.bound_for(size)
                if not delay_bound.is_unbounded
                else -1.0
            )
            rx.bound_cache[size] = bound
        if bound >= 0.0:
            deadline = send_time + bound
        else:
            deadline = self.context.now + self.config.recv_stage_allowance
        last = rx.last_cpu_deadline
        if deadline < last:
            deadline = last
        else:
            rx.last_cpu_deadline = deadline
        cost = rx.cost_cache.get(size)
        if cost is None:
            plan = st_rms.plan
            cost = cpu.costs.protocol_cost(
                size, checksum=plan.checksum, encrypt=plan.encrypt, mac=plan.mac
            )
            rx.cost_cache[size] = cost
        cpu.submit_fast(
            st_rms._recv_stage_name,
            cost,
            deadline,
            self._final_deliver_fast,
            (rx, payload, size, send_time, trace_id),
            owner="st",
            trace_id=trace_id,
        )

    def _final_deliver_fast(
        self,
        rx: _RxStream,
        payload: bytes,
        size: int,
        send_time: float,
        trace_id: Optional[int],
    ) -> None:
        st_rms = rx.st_rms
        if st_rms.state is not RmsState.OPEN:
            return
        if type(payload) is not bytes:
            # Client-delivery boundary: hand applications real bytes, not
            # a view pinned to the network message's buffer.
            payload = bytes(payload)
        message = fast_message(
            payload, st_rms.sender, st_rms.receiver,
            send_time=send_time, trace_id=trace_id,
        )
        st_rms.deliver_fast(message, size)
        if rx.fast_ack:
            peer = self._peer(rx.sender_host)
            self._send_control(
                peer,
                {
                    "op": "fast_ack",
                    "st_id": st_rms.rms_id,
                    "seq": st_rms.stats.messages_delivered,
                },
            )
            self.stats.fast_acks_sent += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter(
                    "st_fast_acks_sent", host=self.host.name
                ).inc()
                obs.spans.event(
                    trace_id, "st", "ack",
                    st=st_rms.name, seq=st_rms.stats.messages_delivered,
                )

    def _final_deliver(
        self,
        rx: _RxStream,
        payload: bytes,
        send_time: float,
        trace_id: Optional[int] = None,
    ) -> None:
        st_rms = rx.st_rms
        if st_rms.state is not RmsState.OPEN:
            return
        if type(payload) is not bytes:
            # Client-delivery boundary: hand applications real bytes, not
            # a view pinned to the network message's buffer.
            payload = bytes(payload)
        message = Message(
            payload, source=st_rms.sender, target=st_rms.receiver
        )
        message.send_time = send_time
        message.trace_id = trace_id
        st_rms._deliver(message)
        if rx.fast_ack:
            peer = self._peer(rx.sender_host)
            self._send_control(
                peer,
                {
                    "op": "fast_ack",
                    "st_id": st_rms.rms_id,
                    "seq": st_rms.stats.messages_delivered,
                },
            )
            self.stats.fast_acks_sent += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter(
                    "st_fast_acks_sent", host=self.host.name
                ).inc()
                obs.spans.event(
                    trace_id, "st", "ack",
                    st=st_rms.name, seq=st_rms.stats.messages_delivered,
                )

    def __repr__(self) -> str:
        return (
            f"<SubtransportLayer host={self.host.name} peers={len(self._peers)} "
            f"rx={len(self._rx)}>"
        )


def _pipe(source: Future, sink: Future) -> None:
    """Copy one future's outcome into another."""
    if source.failed:
        try:
            source.result()
        except BaseException as error:  # noqa: BLE001
            sink.set_exception(error)
    else:
        sink.set_result(source.result())


def _encode_single(entry: BundleEntry) -> bytes:
    return encode_single(entry)


def _phantom(payload: bytes, trace_id: Optional[int] = None) -> Message:
    """A placeholder message for drop accounting of undecodable data."""
    return Message(payload, trace_id=trace_id)
