"""Upward multiplexing of ST RMSs onto network RMSs (section 4.2).

"Among the rules that govern RMS multiplexing are:

- a deterministic or statistical ST RMS cannot be multiplexed onto a
  best-effort network RMS [...];
- the delay bound parameters of the ST RMS's must be at least those of
  the network RMS; the difference is a potential queueing delay during
  which the ST can attempt to piggyback additional messages;
- the capacity of the network RMS must be at least the sum of the
  capacities of the ST RMS's;
- the maximum message size of the ST RMS's may exceed that of the
  network RMS (this requires fragmentation and reassembly by the ST)."

Downward multiplexing (one ST RMS across several network RMSs) is
deliberately absent, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.params import DelayBoundType, RmsParams
from repro.netsim.network import NetworkRms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.subtransport.strms import StRms

__all__ = ["mux_violation", "MuxBinding"]


def mux_violation(
    st_params: RmsParams,
    network_params: RmsParams,
    existing_capacity: int,
    existing_load: float = 0.0,
) -> Optional[str]:
    """The section-4.2 legality check.

    Returns ``None`` when an ST RMS with ``st_params`` may be multiplexed
    onto a network RMS with ``network_params`` already carrying ST RMSs
    of total capacity ``existing_capacity`` (and, for statistical
    streams, total average load ``existing_load``); otherwise a
    human-readable reason.
    """
    if st_params.delay_bound_type in (
        DelayBoundType.DETERMINISTIC,
        DelayBoundType.STATISTICAL,
    ):
        if network_params.delay_bound_type == DelayBoundType.BEST_EFFORT:
            return (
                f"{st_params.delay_bound_type.name} ST RMS cannot ride a "
                f"best-effort network RMS"
            )
    # Delay rule: ST bound must be at least the network bound.
    if not st_params.delay_bound.is_unbounded:
        if network_params.delay_bound.a > st_params.delay_bound.a:
            return (
                f"network delay bound {network_params.delay_bound} exceeds "
                f"ST bound {st_params.delay_bound}"
            )
        if network_params.delay_bound.b > st_params.delay_bound.b:
            return "network per-byte delay exceeds the ST per-byte bound"
    # Capacity rule: sum of ST capacities within the network capacity.
    if existing_capacity + st_params.capacity > network_params.capacity:
        return (
            f"capacity sum {existing_capacity + st_params.capacity} exceeds "
            f"network RMS capacity {network_params.capacity}"
        )
    # Statistical extension: aggregate offered load must fit the spec the
    # network RMS was admitted with.
    if (
        st_params.delay_bound_type == DelayBoundType.STATISTICAL
        and st_params.statistical is not None
        and network_params.statistical is not None
    ):
        total = existing_load + st_params.statistical.average_load
        if total > network_params.statistical.average_load:
            return (
                f"aggregate statistical load {total:.0f}B/s exceeds the "
                f"network RMS spec {network_params.statistical.average_load:.0f}B/s"
            )
    # Security rule: properties the ST expects the *medium* to provide
    # must actually be present on the network RMS.
    if st_params.privacy and not network_params.privacy:
        # Only a violation when no software encryption compensates; the
        # caller checks the security plan first, so reaching here with a
        # privacy mismatch means the plan relies on the network.
        pass
    return None


class MuxBinding:
    """One network RMS plus the ST RMSs multiplexed onto it."""

    def __init__(self, network_rms: NetworkRms) -> None:
        self.network_rms = network_rms
        self.st_rms: Dict[int, "StRms"] = {}
        #: The piggyback queue feeding this binding's network RMS, set by
        #: the ST at creation (saves two dict hops on the send path).
        self.queue = None
        #: Last transmission deadline handed to the network per ST RMS
        #: (the *minimum transmission deadline* rule of section 4.3.1).
        self.last_network_deadline: Dict[int, float] = {}
        self.bundles_sent = 0
        self.components_sent = 0

    @property
    def assigned_capacity(self) -> int:
        return sum(st.params.capacity for st in self.st_rms.values())

    @property
    def assigned_load(self) -> float:
        total = 0.0
        for st in self.st_rms.values():
            if st.params.statistical is not None:
                total += st.params.statistical.average_load
        return total

    @property
    def is_idle(self) -> bool:
        return not self.st_rms

    def can_accept(self, st_params: RmsParams, enforce: bool = True) -> Optional[str]:
        """Why this binding cannot take another ST RMS (None = it can)."""
        if not self.network_rms.is_open:
            return "network RMS is not open"
        if not enforce:
            return None
        return mux_violation(
            st_params,
            self.network_rms.params,
            self.assigned_capacity,
            self.assigned_load,
        )

    def attach(self, st_rms: "StRms") -> None:
        self.st_rms[st_rms.rms_id] = st_rms
        st_rms.binding = self

    def detach(self, st_rms: "StRms") -> None:
        self.st_rms.pop(st_rms.rms_id, None)
        self.last_network_deadline.pop(st_rms.rms_id, None)
        if st_rms.binding is self:
            st_rms.binding = None

    def ordering_floor(self, st_ids: List[int]) -> float:
        """Smallest legal network deadline for a bundle of these ST RMSs."""
        floor = 0.0
        for st_id in st_ids:
            floor = max(floor, self.last_network_deadline.get(st_id, 0.0))
        return floor

    def record_deadline(self, st_ids: List[int], deadline: float) -> None:
        for st_id in st_ids:
            self.last_network_deadline[st_id] = deadline

    def __repr__(self) -> str:
        return (
            f"<MuxBinding net={self.network_rms.name} st={len(self.st_rms)} "
            f"cap={self.assigned_capacity}/{self.network_rms.params.capacity}>"
        )
