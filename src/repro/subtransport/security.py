"""Parameter-driven security decisions (paper sections 2.5 and 3.1).

The ST chooses, per ST RMS, which mechanisms to run in software based on
the client's RMS parameters and the underlying network's properties:

- privacy: software encryption *only* when the client asked for privacy
  and the network neither is trusted nor has link-level encryption;
- authentication: a MAC *only* when the client asked and the network is
  not trusted (link encryption with shared keys also prevents useful
  impersonation on the medium, so it counts);
- integrity: a software checksum *only* when the network interface does
  not checksum in hardware and the medium can corrupt bits.

"In any case, the optimal mechanism is used ...  If a client does not
require privacy, no mechanism is used (which is again optimal).  Without
the RMS security parameters, this optimization would not be possible."

The *implementation* of the chosen mechanisms is itself negotiated: the
host configuration names a :mod:`repro.security.providers` entry
(``StConfig(security_provider=...)``), :func:`plan_security` resolves it
exactly once, and the plan records both the name (for reporting) and the
resolved factory, so :class:`SecurityContext` binds provider methods --
never module globals -- on the data path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.core.params import RmsParams
from repro.netsim.network import Network
from repro.security.checksum import crc32
from repro.security.mac import MAC_BYTES
from repro.security.providers import SecurityProvider, resolve_provider

__all__ = ["DEFAULT_PROVIDER", "SecurityContext", "SecurityPlan", "plan_security"]

#: The provider negotiated when the host configuration names none.
DEFAULT_PROVIDER = "xtea-ct"

_CHECKSUM_BYTES = 4
_PACK_U32 = struct.Struct(">I").pack


@dataclass(frozen=True)
class SecurityPlan:
    """What the ST will actually do for one ST RMS on one network."""

    encrypt: bool  # software encryption in the ST
    mac: bool  # software MAC in the ST
    checksum: bool  # software checksum in the ST
    #: Security properties to request from the network RMS itself (the
    #: medium provides them, so the ST can skip the software mechanism).
    network_privacy: bool
    network_authentication: bool
    #: Name of the negotiated transform provider (section 2.5 extended:
    #: the *implementation* is a channel parameter too).
    provider: str = DEFAULT_PROVIDER
    #: The factory :func:`plan_security` resolved for ``provider``.
    #: Resolution happens once at negotiation; contexts built from this
    #: plan never consult the registry again.
    factory: Optional[Callable[[bytes], SecurityProvider]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def any_software_mechanism(self) -> bool:
        return self.encrypt or self.mac or self.checksum


def plan_security(
    params: RmsParams,
    network: Network,
    provider: str = DEFAULT_PROVIDER,
) -> SecurityPlan:
    """Decide mechanisms for an ST RMS with ``params`` over ``network``.

    ``provider`` names the transform implementation to negotiate; it is
    resolved here (raising ``SecurityError`` on an unknown name) so a
    misconfigured host fails at negotiation, not mid-message.
    """
    properties = network.properties
    medium_private = properties.trusted or properties.link_encryption
    medium_authentic = properties.trusted or properties.link_encryption

    encrypt = params.privacy and not medium_private
    mac = params.authentication and not medium_authentic
    checksum = not properties.link_checksum and network.medium_bit_error_rate > 0.0

    return SecurityPlan(
        encrypt=encrypt,
        mac=mac,
        checksum=checksum,
        network_privacy=params.privacy and medium_private,
        network_authentication=params.authentication and medium_authentic,
        provider=provider,
        factory=resolve_provider(provider),
    )


class SecurityContext:
    """Per-ST-RMS security state, built once at negotiation time.

    The legacy data path re-derived everything per message: a fresh
    cipher (key-schedule check), an f-string MAC context, and one branch
    per plan flag.  The context hoists all of it to creation: the bound
    provider instance (key schedule and round constants derived once),
    the encoded MAC-context prefix, the wire-flag word, and the tag
    overhead are computed here exactly once.  ``seal``/``open``/``mac``/
    ``verify`` are the *provider's* bound methods -- swapping
    ``StConfig(security_provider=...)`` swaps the whole transform engine
    with no change to this class or its callers.

    On a parameter-elided channel (section 2.4: the client asked for no
    security, or the medium provides it) ``protect`` and ``unprotect``
    are ``None`` -- the hot path tests a single attribute and pays zero
    security branches.  Wire bytes are identical to the legacy path in
    every configuration.
    """

    __slots__ = ("plan", "key", "rms_id", "flags", "overhead", "provider",
                 "_seal", "_open", "_mac", "_verify", "_mac_prefix",
                 "protect", "unprotect")

    def __init__(
        self, plan: SecurityPlan, session_key: bytes, sender_label: object,
        rms_id: int,
    ) -> None:
        # Imported here (not at module top) to keep this module free of a
        # wire-format dependency for its plain plan_security users.
        from repro.subtransport.wire import (
            FLAG_CHECKSUM, FLAG_ENCRYPTED, FLAG_MAC,
        )

        self.plan = plan
        self.key = session_key
        self.rms_id = rms_id
        flags = 0
        overhead = 0
        if plan.encrypt:
            flags |= FLAG_ENCRYPTED
        if plan.mac:
            flags |= FLAG_MAC
            overhead += MAC_BYTES
        if plan.checksum:
            flags |= FLAG_CHECKSUM
            overhead += _CHECKSUM_BYTES
        self.flags = flags
        self.overhead = overhead
        # Built unconditionally: a mismatched wire flag (corruption) must
        # still decrypt-attempt rather than crash the receive path.
        factory = plan.factory
        if factory is None:  # plans built by hand in tests
            factory = resolve_provider(plan.provider)
        provider = factory(session_key)
        self.provider = provider
        self._seal = provider.seal
        self._open = provider.open
        self._mac = provider.mac
        self._verify = provider.verify
        self._mac_prefix = (
            f"{sender_label}|".encode("utf-8") if plan.mac else b""
        )
        if plan.any_software_mechanism:
            self.protect = self._protect
            self.unprotect = self._unprotect
        else:
            # Elided channel: the data path checks one attribute and
            # skips security entirely.
            self.protect = None
            self.unprotect = None

    def _mac_context(self, seq: int) -> bytes:
        # Identical bytes to the legacy f"{sender}|{seq}" construction.
        return self._mac_prefix + str(seq).encode("utf-8")

    # -- granular helpers (the ST's legacy/accounting path uses these so
    # -- both datapaths run the *same* negotiated provider) -------------

    def transform(self, seq: int, data: Union[bytes, memoryview]) -> bytes:
        """Encrypt/decrypt one component (counter mode: one transform)."""
        nonce = (self.rms_id << 32) | (seq & 0xFFFFFFFF)
        return self._seal(nonce, data)

    def mac_tag(self, seq: int, data: Union[bytes, memoryview]) -> bytes:
        return self._mac(data, self._mac_context(seq))

    def mac_ok(
        self, seq: int, data: Union[bytes, memoryview], tag: bytes
    ) -> bool:
        return self._verify(data, tag, self._mac_context(seq))

    def _protect(
        self, seq: int, data: Union[bytes, memoryview]
    ) -> bytes:
        """Transform one outgoing component; wire flags are ``self.flags``."""
        plan = self.plan
        if plan.encrypt:
            nonce = (self.rms_id << 32) | (seq & 0xFFFFFFFF)
            data = self._seal(nonce, data)
        if plan.mac:
            tag = self._mac(data, self._mac_context(seq))
            if type(data) is bytes:
                data = data + tag
            else:
                # join reads the memoryview directly -- the only copy is
                # the one that materializes the wire bytes themselves.
                data = b"".join((data, tag))
        if plan.checksum:
            if type(data) is not bytes:
                data = bytes(data)
            data = data + _PACK_U32(crc32(data))
        return data

    def _unprotect(
        self, flags: int, seq: int, data: Union[bytes, memoryview]
    ) -> Tuple[Optional[bytes], Optional[str]]:
        """Undo the transforms named by ``flags`` on one received component.

        Returns ``(payload, None)`` on success or ``(None, reason)`` with
        ``reason`` in {"checksum", "auth"} on a verification failure.
        """
        from repro.subtransport.wire import (
            FLAG_CHECKSUM, FLAG_ENCRYPTED, FLAG_MAC,
        )

        if type(data) is not bytes:
            data = bytes(data)
        if flags & FLAG_CHECKSUM:
            if len(data) < _CHECKSUM_BYTES:
                return None, "checksum"
            body, tag = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
            if _PACK_U32(crc32(body)) != tag:
                return None, "checksum"
            data = body
        if flags & FLAG_MAC:
            if len(data) < MAC_BYTES:
                return None, "auth"
            body, tag = data[:-MAC_BYTES], data[-MAC_BYTES:]
            if not self._verify(body, tag, self._mac_context(seq)):
                return None, "auth"
            data = body
        if flags & FLAG_ENCRYPTED:
            nonce = (self.rms_id << 32) | (seq & 0xFFFFFFFF)
            data = self._open(nonce, data)
        return data, None
