"""Parameter-driven security decisions (paper sections 2.5 and 3.1).

The ST chooses, per ST RMS, which mechanisms to run in software based on
the client's RMS parameters and the underlying network's properties:

- privacy: software encryption *only* when the client asked for privacy
  and the network neither is trusted nor has link-level encryption;
- authentication: a MAC *only* when the client asked and the network is
  not trusted (link encryption with shared keys also prevents useful
  impersonation on the medium, so it counts);
- integrity: a software checksum *only* when the network interface does
  not checksum in hardware and the medium can corrupt bits.

"In any case, the optimal mechanism is used ...  If a client does not
require privacy, no mechanism is used (which is again optimal).  Without
the RMS security parameters, this optimization would not be possible."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import RmsParams
from repro.netsim.network import Network

__all__ = ["SecurityPlan", "plan_security"]


@dataclass(frozen=True)
class SecurityPlan:
    """What the ST will actually do for one ST RMS on one network."""

    encrypt: bool  # software encryption in the ST
    mac: bool  # software MAC in the ST
    checksum: bool  # software checksum in the ST
    #: Security properties to request from the network RMS itself (the
    #: medium provides them, so the ST can skip the software mechanism).
    network_privacy: bool
    network_authentication: bool

    @property
    def any_software_mechanism(self) -> bool:
        return self.encrypt or self.mac or self.checksum


def plan_security(params: RmsParams, network: Network) -> SecurityPlan:
    """Decide mechanisms for an ST RMS with ``params`` over ``network``."""
    properties = network.properties
    medium_private = properties.trusted or properties.link_encryption
    medium_authentic = properties.trusted or properties.link_encryption

    encrypt = params.privacy and not medium_private
    mac = params.authentication and not medium_authentic
    checksum = not properties.link_checksum and network.medium_bit_error_rate > 0.0

    return SecurityPlan(
        encrypt=encrypt,
        mac=mac,
        checksum=checksum,
        network_privacy=params.privacy and medium_private,
        network_authentication=params.authentication and medium_authentic,
    )
