"""Subtransport layer configuration knobs.

Each knob corresponds to a mechanism of sections 3.2 and 4 so the
benchmarks can ablate them individually: piggybacking (E4), network-RMS
caching (E7), multiplexing-rule enforcement (E14), fragmentation size
(E10), and the security machinery (E2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError, SecurityError
from repro.security.providers import resolve_provider

__all__ = ["StConfig"]


@dataclass
class StConfig:
    """Tunable behaviour of one host's subtransport layer."""

    #: Queue client messages hoping to piggyback (section 4.3.1).
    piggyback_enabled: bool = True
    #: Cap on how long a message may wait for piggybacking companions,
    #: regardless of delay-bound slack.  The slack is an upper bound on
    #: legal queueing (4.3.1); holding messages the full slack maximizes
    #: bundling but costs latency, so the default caps the hold.
    piggyback_window_cap: float = 2e-3
    #: Upward-multiplex several ST RMSs onto one network RMS (4.2).
    multiplexing_enabled: bool = True
    #: Enforce the multiplexing legality rules of section 4.2.  Turning
    #: this off (bench E14) shows what the rules protect against.
    enforce_mux_rules: bool = True
    #: Retain data network RMSs after their last ST RMS closes (4.2).
    cache_enabled: bool = True
    #: Maximum cached data network RMSs per peer host.
    cache_size_per_peer: int = 4
    #: CPU-time allowance reserved out of an ST RMS delay bound for the
    #: send-side protocol stage (section 4.1 stage division).
    send_stage_allowance: float = 2e-3
    #: Same, receive side.
    recv_stage_allowance: float = 2e-3
    #: Largest message the ST offers clients, as a multiple of the
    #: network maximum message size (section 4.3 discusses choosing it).
    max_message_multiple: int = 8
    #: Offer the fast-acknowledgement service (3.2).
    fast_ack_enabled: bool = True
    #: Skip the authentication handshake on trusted networks (3.1).
    trust_optimization: bool = True
    #: Default capacity for data network RMSs the ST creates.
    default_network_capacity: int = 64 * 1024
    #: Delay bound (seconds) requested for control-channel RMSs.
    control_delay_bound: float = 0.05
    #: Capacity of control-channel RMSs ("low capacity, low delay").
    control_capacity: int = 2048
    #: Control request/reply retransmission (the channel is best-effort).
    control_retry_timeout: float = 0.3
    control_max_retries: int = 5
    #: Authentication handshake retransmission.
    auth_retry_timeout: float = 0.3
    auth_max_retries: int = 5
    #: Coalesce per-message protocol timers (piggyback flushes, control
    #: retransmissions, auth retries) onto one per-peer
    #: :class:`repro.sim.events.TimerGroup` instead of one loop timer per
    #: pending message.  Behaviour-preserving: deadlines fire at the
    #: same simulated times either way (bench E19 measures the
    #: difference; tests assert the equivalence).
    coalesced_timers: bool = True
    #: Run the message data path through the fast path: per-ST-RMS cached
    #: security contexts, precomputed CPU-stage names/costs, and trimmed
    #: send/receive bookkeeping.  Simulated behaviour is identical to the
    #: legacy path; only wall-clock cost changes.  Off = the PR 3
    #: baseline that bench E19 compares against.
    message_fastpath: bool = True
    #: Which :mod:`repro.security.providers` engine negotiated channels
    #: bind for their software transforms: ``"xtea-ct"`` (vectorized
    #: default), ``"xtea-ct-ref"`` (scalar oracle, byte-identical
    #: output -- the bench E21 ablation), ``"null"``/``"hw"`` (elided).
    #: Resolved once per ST RMS at negotiation time.
    security_provider: str = "xtea-ct"

    def __post_init__(self) -> None:
        if self.send_stage_allowance < 0 or self.recv_stage_allowance < 0:
            raise ParameterError("stage allowances must be >= 0")
        if self.max_message_multiple < 1:
            raise ParameterError("max_message_multiple must be >= 1")
        if self.cache_size_per_peer < 0:
            raise ParameterError("cache size must be >= 0")
        if self.control_delay_bound <= 0:
            raise ParameterError("control delay bound must be > 0")
        try:
            resolve_provider(self.security_provider)
        except SecurityError as exc:
            raise ParameterError(str(exc)) from None
