"""The piggybacking queue algorithm of section 4.3.1.

For each outgoing network RMS the ST keeps a queue of client messages
awaiting transmission, bounded by the network RMS maximum message size.
Each message has a *maximum transmission deadline* (its arrival time
plus the ST-minus-network delay-bound slack) and a *minimum transmission
deadline* (the deadline actually passed to the network for the previous
message of the same ST RMS, which preserves per-stream ordering under
deadline-ordered interface queues).

The queue is flushed when a component's maximum transmission deadline
is reached or when appending would overflow the network maximum message
size; the transmission deadline passed down is the queue's maximum
transmission deadline, floored by the ordering rule.  The flush timer
fires at the *earliest* component maximum deadline -- flushing any later
would make that component late, so we read the paper's "its maximum
transmission deadline is reached" as the queue's binding (earliest)
maximum.  Messages that require fragmentation are never piggybacked.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import TransportError
from repro.sim.context import SimContext
from repro.sim.events import EventHandle, TimerGroup
from repro.subtransport.wire import BundleEntry, encode_bundle, encode_single

__all__ = ["PiggybackQueue"]

#: Encoded bytes of the bundle count header.
_BUNDLE_HEADER_BYTES = 2

FlushCallback = Callable[[bytes, float, List[int], int], None]


class PiggybackQueue:
    """Deadline-driven component queue for one outgoing network RMS.

    ``flush_fn(payload, deadline, st_ids, components)`` is invoked with
    the encoded bundle, the network transmission deadline, the ST RMS
    ids involved, and the component count.
    """

    def __init__(
        self,
        context: SimContext,
        max_bundle_payload: int,
        flush_fn: FlushCallback,
        ordering_floor: Callable[[List[int]], float],
        enabled: bool = True,
        timer_group: Optional[TimerGroup] = None,
        fast: bool = False,
    ) -> None:
        if max_bundle_payload <= _BUNDLE_HEADER_BYTES:
            raise TransportError(
                f"network max message size {max_bundle_payload}B too small "
                f"for bundles"
            )
        self.context = context
        self.max_bundle_payload = max_bundle_payload
        self.flush_fn = flush_fn
        self.ordering_floor = ordering_floor
        self.enabled = enabled
        #: (entry, network transmission deadline, flush-by time).
        self._entries: List[Tuple[BundleEntry, float, float]] = []
        self._encoded_bytes = _BUNDLE_HEADER_BYTES
        #: Where flush timers are scheduled: a per-peer TimerGroup when
        #: the ST coalesces timers, else the loop itself.  Both expose
        #: ``call_at`` returning a handle with ``time``/``cancel()``/
        #: ``cancelled``, and fire at identical simulated times.
        self._timers = timer_group if timer_group is not None else context.loop
        #: Skip the generic multi-entry reductions for single-component
        #: bundles (set from StConfig.message_fastpath; the flushed
        #: bytes and deadlines are identical).
        self._fast = fast
        self._timer: Optional[EventHandle] = None
        # Statistics.
        self.flushes_timer = 0
        self.flushes_overflow = 0
        self.flushes_immediate = 0
        self.flushes_forced = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def queued_bytes(self) -> int:
        return self._encoded_bytes

    def submit(
        self,
        entry: BundleEntry,
        max_deadline: float,
        flush_by: Optional[float] = None,
    ) -> None:
        """Queue one component, flushing as the deadline rules demand.

        ``max_deadline`` is the section-4.3.1 maximum transmission
        deadline (arrival plus ST-minus-network slack): it is what the
        network layer schedules by.  ``flush_by`` is when the ST stops
        hoping for piggyback companions and actually sends -- at most
        ``max_deadline``, usually much earlier (the configured window
        cap), so that waiting for companions does not consume the whole
        slack.
        """
        if flush_by is None:
            flush_by = max_deadline
        flush_by = min(flush_by, max_deadline)
        if entry.encoded_size + _BUNDLE_HEADER_BYTES > self.max_bundle_payload:
            raise TransportError(
                f"component of {entry.encoded_size}B cannot fit a bundle of "
                f"{self.max_bundle_payload}B; fragment it first"
            )
        if not self.enabled:
            # Piggybacking off: every component ships alone, immediately.
            self.flushes_immediate += 1
            self._send([(entry, max_deadline, flush_by)])
            return
        if flush_by <= self.context.now:
            # No queueing slack left: flush everything queued together
            # with this component (sending it *after* the queue would
            # break arrival order on the shared network RMS) -- unless
            # it does not fit, in which case the queue goes first and
            # the component follows alone, still in order.
            if self._encoded_bytes + entry.encoded_size > self.max_bundle_payload:
                self.flushes_overflow += 1
                self.flush("overflow")
            self._entries.append((entry, max_deadline, flush_by))
            self._encoded_bytes += entry.encoded_size
            self.flushes_immediate += 1
            self.flush("immediate")
            return
        if self._encoded_bytes + entry.encoded_size > self.max_bundle_payload:
            self.flushes_overflow += 1
            self.flush("overflow")
        self._entries.append((entry, max_deadline, flush_by))
        self._encoded_bytes += entry.encoded_size
        self._arm_timer()

    def submit_fast(
        self, entry: BundleEntry, entry_size: int, max_deadline: float,
        flush_by: float,
    ) -> None:
        """Hot-path submit: the caller precomputed ``entry.encoded_size``
        and clamped ``flush_by <= max_deadline``.  Decision structure and
        flush times are identical to :meth:`submit`."""
        if not self.enabled:
            self.flushes_immediate += 1
            self._send([(entry, max_deadline, flush_by)])
            return
        encoded = self._encoded_bytes
        if flush_by <= self.context.now:
            if encoded + entry_size > self.max_bundle_payload:
                self.flushes_overflow += 1
                self.flush("overflow")
            self._entries.append((entry, max_deadline, flush_by))
            self._encoded_bytes += entry_size
            self.flushes_immediate += 1
            self.flush("immediate")
            return
        if encoded + entry_size > self.max_bundle_payload:
            self.flushes_overflow += 1
            self.flush("overflow")
        self._entries.append((entry, max_deadline, flush_by))
        self._encoded_bytes += entry_size
        self._arm_timer()

    def flush(self, reason: str = "forced") -> None:
        """Send every queued component as one bundle now."""
        if not self._entries:
            return
        if reason == "forced":
            self.flushes_forced += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter("st_piggyback_flushes", reason=reason).inc()
        entries, self._entries = self._entries, []
        self._encoded_bytes = _BUNDLE_HEADER_BYTES
        self._disarm_timer()
        self._send(entries)

    def _send(self, entries: List[Tuple[BundleEntry, float, float]]) -> None:
        if self._fast and len(entries) == 1 and not self.context.obs.enabled:
            # Single-component bundle: the reductions below collapse.
            entry, deadline, _ = entries[0]
            st_ids = [entry.st_rms_id]
            floor = self.ordering_floor(st_ids)
            if floor > deadline:
                deadline = floor
            self.flush_fn(encode_single(entry), deadline, st_ids, 1)
            return
        payload = encode_bundle([entry for entry, _, _ in entries])
        st_ids = sorted({entry.st_rms_id for entry, _, _ in entries})
        # The deadline passed to the network layer is the queue's maximum
        # transmission deadline, floored by the per-stream ordering rule.
        deadline = max(max_deadline for _, max_deadline, _ in entries)
        deadline = max(deadline, self.ordering_floor(st_ids))
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "st_bundle_components", components=len(entries)
            ).inc()
            for entry, _, _ in entries:
                obs.spans.event(
                    entry.trace_id, "net", "tx",
                    st_rms=entry.st_rms_id, seq=entry.seq,
                    bundled=len(entries),
                )
        self.flush_fn(payload, deadline, st_ids, len(entries))

    def _arm_timer(self) -> None:
        entries = self._entries
        if len(entries) == 1:
            earliest = entries[0][2]
        else:
            earliest = min(flush_by for _, _, flush_by in entries)
        if self._timer is not None:
            if self._timer.time <= earliest and not self._timer.cancelled:
                return
            self._timer.cancel()
        self._timer = self._timers.call_at(
            max(earliest, self.context.now), self._timer_fired
        )

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timer_fired(self) -> None:
        self._timer = None
        if self._entries:
            self.flushes_timer += 1
            self.flush("timer")

    def __repr__(self) -> str:
        return (
            f"<PiggybackQueue {len(self._entries)} entries "
            f"{self._encoded_bytes}B/{self.max_bundle_payload}B>"
        )
