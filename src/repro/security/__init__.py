"""Security substrate: checksums, toy ciphers, MACs, key registry."""

from repro.security.checksum import (
    CHECKSUM_ALGORITHMS,
    checksum_bytes,
    crc32,
    fletcher16,
    internet_checksum,
)
from repro.security.cipher import StreamCipher, xtea_decrypt_block, xtea_encrypt_block
from repro.security.keys import KeyRegistry
from repro.security.mac import MAC_BYTES, compute_mac, verify_mac

__all__ = [
    "CHECKSUM_ALGORITHMS",
    "KeyRegistry",
    "MAC_BYTES",
    "StreamCipher",
    "checksum_bytes",
    "compute_mac",
    "crc32",
    "fletcher16",
    "internet_checksum",
    "verify_mac",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
]
