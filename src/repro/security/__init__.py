"""Security substrate: checksums, providers, MACs, key registry.

The data-path transforms live behind the :mod:`repro.security.providers`
registry -- select one by name (``StConfig(security_provider=...)``) and
the subtransport binds its ``keystream``/``seal``/``open``/``mac``
methods at negotiation time.  The low-level primitives (``StreamCipher``,
``xtea_encrypt_block``, ``compute_mac``, ...) still exist in their
submodules for the reference/oracle implementations and the control
channel, but importing them from this package is deprecated: new code
should negotiate a provider instead of hard-wiring a transform.
"""

from repro.security.checksum import (
    CHECKSUM_ALGORITHMS,
    checksum_bytes,
    crc32,
    fletcher16,
    internet_checksum,
)
from repro.security.keys import KeyRegistry
from repro.security.mac import MAC_BYTES
from repro.security.providers import (
    HardwareProvider,
    NullProvider,
    SecurityProvider,
    XteaScalarProvider,
    XteaVectorProvider,
    provider_names,
    register_provider,
    resolve_provider,
)

__all__ = [
    "CHECKSUM_ALGORITHMS",
    "HardwareProvider",
    "KeyRegistry",
    "MAC_BYTES",
    "NullProvider",
    "SecurityProvider",
    "StreamCipher",
    "XteaScalarProvider",
    "XteaVectorProvider",
    "checksum_bytes",
    "compute_mac",
    "crc32",
    "fletcher16",
    "internet_checksum",
    "provider_names",
    "register_provider",
    "resolve_provider",
    "verify_mac",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
]

#: Legacy direct-primitive names, still importable from this package but
#: deprecated in favour of the provider API (warn-once, like the
#: ``run_until_idle`` shim in :mod:`repro.dash._deprecation`).
_DEPRECATED = {
    "StreamCipher": (
        "repro.security.cipher",
        "resolve a provider instead (e.g. resolve_provider('xtea-ct-ref'))",
    ),
    "xtea_encrypt_block": (
        "repro.security.cipher",
        "import it from repro.security.cipher if you need the raw block "
        "primitive",
    ),
    "xtea_decrypt_block": (
        "repro.security.cipher",
        "import it from repro.security.cipher if you need the raw block "
        "primitive",
    ),
    "compute_mac": (
        "repro.security.mac",
        "use a provider's mac()/verify() for data-path tags, or import "
        "from repro.security.mac for the control-channel CBC-MAC",
    ),
    "verify_mac": (
        "repro.security.mac",
        "use a provider's mac()/verify() for data-path tags, or import "
        "from repro.security.mac for the control-channel CBC-MAC",
    ),
}


def __getattr__(name):  # PEP 562 module-level deprecation shims
    entry = _DEPRECATED.get(name)
    if entry is None:
        raise AttributeError(
            f"module 'repro.security' has no attribute {name!r}"
        )
    module_name, hint = entry
    # Imported lazily: the warn-once registry lives with the other
    # deprecation shims, and importing it eagerly here would make the
    # leaf security package depend on the dash facade at import time.
    from repro.dash._deprecation import warn_once

    warn_once(
        f"repro.security.{name}",
        f"importing {name} from repro.security is deprecated; {hint}",
    )
    import importlib

    return getattr(importlib.import_module(module_name), name)
