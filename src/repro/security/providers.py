"""Pluggable security-transform providers (negotiated by name).

Section 2.5 makes security a per-channel *negotiated parameter*: the ST
picks software encryption, link-level "hardware" encryption, or nothing
at all, depending on what the client asked for and what the medium
provides.  This module extends that negotiation to the transform
implementation itself: a :class:`SecurityProvider` bundles the keystream
generator, the bulk ``seal``/``open`` transforms, and the MAC, and is
selected *by name* at negotiation time (``StConfig(security_provider=
...)`` -> ``plan_security`` -> ``SecurityPlan.provider``), so the
per-stream :class:`~repro.subtransport.security.SecurityContext` holds
bound provider methods instead of module globals.

Built-in providers:

``"xtea-ct"``
    The default: a *vectorized* XTEA counter-mode engine.  Keystream is
    generated in wide batches by packing many 64-bit counter blocks into
    the 64-bit lanes of one Python big integer and running the XTEA
    round function on all lanes at once (shifts/XOR/add are lane-safe:
    32 guard bits per lane absorb carries and a per-round mask clears
    them), so the interpreter executes ~7 big-int operations per
    half-round *per batch* instead of ~12 small-int operations per
    half-round *per block*.  The payload XOR is one big-int operation.
    The MAC is a single pass over ``memoryview``s -- no materialized
    ``context || len || data`` concatenation.
``"xtea-ct-ref"``
    The scalar reference: one counter block at a time through the same
    XTEA rounds, naive byte-concatenated MAC material.  It is the
    correctness oracle -- byte-identical keystream, ciphertext, and tags
    to ``"xtea-ct"`` (asserted by the property suite in
    ``tests/test_security_providers.py``) -- and the ablation baseline
    for ``bench_e21_securedpath``.
``"null"``
    Transforms elided: ``seal``/``open`` pass payloads through and the
    MAC is a constant tag.  For ablations that want the secured
    *protocol* shape without the transform cost.
``"hw"``
    Models link-level encryption hardware (section 2.5 case 2): software
    transforms pass through like ``"null"`` but the provider is marked
    ``hardware`` so benches can report the regime honestly.

The MAC negotiated by the XTEA providers is a toy Wegman-Carter
construction ("poly-xtea"): a Horner-rule polynomial hash of
``context || len(data) || data`` over GF(2^61 - 1) with a key-derived
evaluation point, finalized through one XTEA block encryption.  Unlike
the legacy CBC-MAC (:func:`repro.security.mac.compute_mac`, still used
on the ST control channel), it costs ~3 interpreter operations per
8-byte block instead of 32 cipher rounds, and the hash admits the same
wide single-pass treatment as the cipher.  Like every cipher in this
package it is **not** cryptographically reviewed -- the experiments need
correct-but-costly byte transformations, not security.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, List, Tuple, Union

try:  # pragma: no cover - Protocol is 3.8+; the repo floor is 3.9
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.errors import SecurityError
from repro.security.cipher import (
    _DELTA,
    _MASK,
    _ROUNDS,
    _check_key,
    _encrypt_words,
)

__all__ = [
    "MAC_BYTES",
    "SecurityProvider",
    "XteaScalarProvider",
    "XteaVectorProvider",
    "NullProvider",
    "HardwareProvider",
    "provider_names",
    "register_provider",
    "resolve_provider",
]

Buffer = Union[bytes, bytearray, memoryview]

#: Width of the MAC tag all providers emit (one XTEA block).
MAC_BYTES = 8

#: The polynomial-hash modulus (a Mersenne prime, so ``%`` is cheap).
_POLY_P = (1 << 61) - 1

#: Counter-mode blocks available under one nonce: the counter word is
#: 32 bits, so a stream longer than ``2**32`` blocks would silently
#: reuse keystream.  Both engines raise instead.
_MAX_COUNTER_BLOCKS = 1 << 32

_PACK_U32 = struct.Struct(">I").pack
_PACK_2U32 = struct.Struct(">2I").pack
_U64_FORMATS: Dict[int, struct.Struct] = {}


def _u64_struct(count: int) -> struct.Struct:
    cached = _U64_FORMATS.get(count)
    if cached is None:
        cached = _U64_FORMATS[count] = struct.Struct(">%dQ" % count)
    return cached


def _round_constants(k: Tuple[int, int, int, int]) -> List[Tuple[int, int]]:
    """The 32 ``(c0, c1)`` XTEA round constants for one key schedule.

    The round function only ever combines ``total`` and the key words,
    never the data, so the per-round addends are key-only and can be
    hoisted out of every block.  Masked to 32 bits: the scalar rounds
    leave ``total + k[...]`` unmasked, but bits >= 32 of an XOR/ADD
    operand cannot reach the low 32 bits of the result, which is all the
    final ``& MASK`` keeps.
    """
    constants = []
    total = 0
    for _ in range(_ROUNDS):
        c0 = (total + k[total & 3]) & _MASK
        total = (total + _DELTA) & _MASK
        c1 = (total + k[(total >> 11) & 3]) & _MASK
        constants.append((c0, c1))
    return constants


def _check_counter_span(offset: int, length: int) -> None:
    if offset < 0:
        raise SecurityError(f"keystream offset must be >= 0, got {offset}")
    if (offset + length + 7) >> 3 > _MAX_COUNTER_BLOCKS:
        raise SecurityError(
            "keystream exhausted: counter block overflow at "
            f"{offset + length} bytes (max {_MAX_COUNTER_BLOCKS} blocks "
            "of 8 bytes per nonce)"
        )


class SecurityProvider(Protocol):
    """What a negotiated security transform must offer.

    Providers are instantiated per session key (``provider_cls(key)``)
    so key schedules and round constants are derived exactly once; the
    :class:`~repro.subtransport.security.SecurityContext` then binds the
    four methods below for the data path.  ``seal`` and ``open`` accept
    any bytes-like payload (the zero-copy ST datapath hands them
    ``memoryview`` slices) and return ``bytes``; ``offset`` positions
    the transform inside the nonce's keystream so chunked callers can
    continue a stream without regenerating its prefix.
    """

    name: str
    #: True when the transform happens in network hardware, not the ST.
    hardware: bool

    def keystream(self, nonce: int, length: int, offset: int = 0) -> bytes:
        """``length`` keystream bytes at ``offset`` of ``nonce``'s stream."""

    def seal(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        """Encrypt ``data`` (counter mode: XOR with the keystream)."""

    def open(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        """Decrypt ``data`` (the inverse of :meth:`seal`)."""

    def mac(self, data: Buffer, context: bytes = b"") -> bytes:
        """An 8-byte tag over ``context || len(data) || data``."""

    def verify(self, data: Buffer, tag: bytes, context: bytes = b"") -> bool:
        """Check a tag; False (no raise) on mismatch."""


class _ProviderBase:
    """Shared verify logic and the Protocol's attribute defaults."""

    name = "abstract"
    hardware = False

    def open(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        # Counter mode is an XOR: sealing and opening are the same
        # transform.  Subclasses with asymmetric transforms override.
        return self.seal(nonce, data, offset)  # type: ignore[attr-defined]

    def verify(self, data: Buffer, tag: bytes, context: bytes = b"") -> bool:
        if len(tag) != MAC_BYTES:
            raise SecurityError(
                f"MAC tag must be {MAC_BYTES} bytes, got {len(tag)}"
            )
        expected = self.mac(data, context)  # type: ignore[attr-defined]
        result = 0
        for a, b in zip(expected, tag):
            result |= a ^ b
        return result == 0


class _XteaProviderBase(_ProviderBase):
    """Key material shared by the scalar and vectorized XTEA engines."""

    def __init__(self, key: bytes) -> None:
        self.key = key
        self._k = _check_key(key)
        self._rc = _round_constants(self._k)
        #: Polynomial-hash evaluation point: key-derived, forced odd so
        #: it is never 0 (a degenerate hash).
        self._mac_r = (int.from_bytes(key[:8], "big") | 1) % _POLY_P

    def _finish_mac(self, h: int) -> bytes:
        """Bind the full key: one XTEA block encryption of the hash."""
        v0, v1 = _encrypt_words(self._k, h >> 32, h & _MASK)
        return _PACK_2U32(v0, v1)


class XteaScalarProvider(_XteaProviderBase):
    """The reference engine: one counter block at a time.

    This is the correctness oracle bench E21 ablates against: every
    output must be byte-identical to :class:`XteaVectorProvider`.  It is
    deliberately straightforward -- per-block round loop, concatenated
    MAC material -- so a divergence in the wide engine cannot hide in
    shared code.
    """

    name = "xtea-ct-ref"

    def keystream(self, nonce: int, length: int, offset: int = 0) -> bytes:
        _check_counter_span(offset, length)
        if length <= 0:
            return b""
        k = self._k
        v0 = nonce & _MASK
        first = offset >> 3
        skip = offset & 7
        last = (offset + length - 1) >> 3
        pack = _PACK_2U32
        blocks = [
            pack(*_encrypt_words(k, v0, counter))
            for counter in range(first, last + 1)
        ]
        stream = b"".join(blocks)
        return stream[skip : skip + length]

    def seal(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        length = len(data)
        if length == 0:
            return b""
        stream = self.keystream(nonce, length, offset)
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(length, "big")

    def mac(self, data: Buffer, context: bytes = b"") -> bytes:
        material = b"".join((context, _PACK_U32(len(data)), data))
        if len(material) % 8:
            material += b"\x00" * (8 - len(material) % 8)
        h = 0
        r = self._mac_r
        from_bytes = int.from_bytes
        for off in range(0, len(material), 8):
            h = (h * r + from_bytes(material[off : off + 8], "big")) % _POLY_P
        return self._finish_mac(h)


#: Lane-constant cache shared across keys: ``ones`` (the base-2^64
#: repunit that replicates a scalar into every lane), the per-lane
#: 32-bit mask, and the descending counter ramp.  Key-independent, so
#: one entry per batch width serves every provider instance.
_LANE_CONSTANTS: Dict[int, Tuple[int, int, int]] = {}


def _lane_constants(width: int) -> Tuple[int, int, int]:
    cached = _LANE_CONSTANTS.get(width)
    if cached is None:
        ones = ((1 << (64 * width)) - 1) // ((1 << 64) - 1)
        wide_mask = ones * _MASK
        # Lane j holds width-1-j: the most-significant lane carries
        # counter+0, so the batch renders (to_bytes, big-endian) in
        # ascending counter order like the scalar loop.
        ramp = int.from_bytes(
            b"".join(_PACK_2U32(0, i) for i in range(width)), "big"
        )
        cached = _LANE_CONSTANTS[width] = (ones, wide_mask, ramp)
    return cached


class XteaVectorProvider(_XteaProviderBase):
    """The wide engine: many counter blocks per XTEA round sweep.

    **Lane packing.**  A batch of ``w`` counter blocks occupies one
    big integer with a 64-bit lane per block: the low 32 bits of lane
    ``j`` hold the evolving word, the high 32 bits are guard space.
    ``v0`` starts as the nonce replicated into every lane (one big-int
    multiply by the repunit), ``v1`` as the counter ramp.  Each XTEA
    half-round is then 7 big-int operations over *all* lanes::

        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ rc0)) & wide_mask

    Lane isolation: ``<< 4`` reaches bit 35 of a lane, ``+`` carries to
    at most bit 37, and the bits a ``>> 5`` drags in from the lane above
    land at bits 59-63 -- none of it crosses a lane boundary before the
    mask clears everything above bit 31.  The result is bit-identical to
    running the scalar rounds per block (the property suite proves it).

    **Keystream tails.**  Batch widths are powers of two up to 64, so
    the final batch of a message usually overshoots; the unused tail is
    cached per provider (hence per :class:`SecurityContext`) keyed by
    ``(nonce, stream offset)``, and a chunked caller that continues the
    same nonce's stream -- fragments of one logical message sealed with
    ``offset=`` -- picks it up without regenerating the batch.

    **MAC.**  The polynomial hash runs single-pass over ``memoryview``
    slices: the ``context || len`` head absorbs the first payload bytes
    to reach block alignment, the aligned middle is unpacked 64 bits at
    a time with one C-level ``struct`` call, and only the final partial
    block is ever copied for padding.
    """

    name = "xtea-ct"

    #: Full batch width (blocks): 64 lanes = 512 keystream bytes.
    BATCH = 64

    def __init__(self, key: bytes) -> None:
        super().__init__(key)
        #: Per-width replicated round constants (key-dependent, built
        #: lazily: real runs see a handful of widths <= 64).
        self._wide_rc: Dict[int, List[Tuple[int, int]]] = {}
        self._tail_nonce: int = -1
        self._tail_offset: int = 0
        self._tail: bytes = b""

    def _wide_round_constants(self, width: int, ones: int):
        cached = self._wide_rc.get(width)
        if cached is None:
            cached = self._wide_rc[width] = [
                (c0 * ones, c1 * ones) for (c0, c1) in self._rc
            ]
        return cached

    def _batch(self, nonce32: int, counter: int, width: int) -> bytes:
        """Keystream for counter blocks ``[counter, counter + width)``."""
        ones, wide_mask, ramp = _lane_constants(width)
        rc = self._wide_round_constants(width, ones)
        v0 = nonce32 * ones
        v1 = (counter * ones + ramp) & wide_mask
        for c0, c1 in rc:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ c0)) & wide_mask
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ c1)) & wide_mask
        return ((v0 << 32) | v1).to_bytes(8 * width, "big")

    def keystream(self, nonce: int, length: int, offset: int = 0) -> bytes:
        _check_counter_span(offset, length)
        if length <= 0:
            return b""
        nonce32 = nonce & _MASK
        parts: List[bytes] = []
        pos = offset
        end = offset + length
        if (
            nonce32 == self._tail_nonce
            and pos == self._tail_offset
            and self._tail
        ):
            tail = self._tail
            take = min(len(tail), end - pos)
            parts.append(tail[:take])
            pos += take
            if take < len(tail):
                self._tail = tail[take:]
                self._tail_offset = pos
            else:
                self._tail = b""
                self._tail_nonce = -1
        batch = self.BATCH
        while pos < end:
            block = pos >> 3
            skip = pos & 7
            need = end - pos + skip  # bytes from the start of `block`
            blocks_needed = (need + 7) >> 3
            if blocks_needed >= batch:
                width = batch
            else:
                width = 1
                while width < blocks_needed:
                    width <<= 1
            # Never let a pow2 round-up push a lane past the counter
            # guard (only reachable within a whisker of the 32 GiB
            # per-nonce limit).
            if block + width > _MAX_COUNTER_BLOCKS:
                width = _MAX_COUNTER_BLOCKS - block
            chunk = self._batch(nonce32, block, width)
            usable = chunk[skip:] if skip else chunk
            take = min(len(usable), end - pos)
            if take < len(usable):
                parts.append(usable[:take])
                # Cache the overshoot for a caller continuing this
                # nonce's stream (chunked seal of one logical message).
                self._tail_nonce = nonce32
                self._tail_offset = end
                self._tail = usable[take:]
            else:
                parts.append(usable)
            pos += take
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)

    def seal(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        length = len(data)
        if length == 0:
            return b""
        stream = self.keystream(nonce, length, offset)
        # One wide XOR: int.from_bytes reads memoryviews without a copy
        # of the payload into an intermediate bytes object.
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(length, "big")

    def mac(self, data: Buffer, context: bytes = b"") -> bytes:
        head = context + _PACK_U32(len(data))
        view = data if type(data) is memoryview else memoryview(data)
        n = len(view)
        misaligned = len(head) & 7
        if misaligned:
            need = 8 - misaligned
            take = need if need <= n else n
            head += bytes(view[:take])
            view = view[take:]
            n -= take
            if len(head) & 7:  # data ran out inside the straddle block
                head += b"\x00" * (8 - (len(head) & 7))
        h = 0
        r = self._mac_r
        from_bytes = int.from_bytes
        for off in range(0, len(head), 8):
            h = (h * r + from_bytes(head[off : off + 8], "big")) % _POLY_P
        full_blocks = n >> 3
        if full_blocks:
            for m in _u64_struct(full_blocks).unpack_from(view):
                h = (h * r + m) % _POLY_P
        tail = n & 7
        if tail:
            last = bytes(view[n - tail :]) + b"\x00" * (8 - tail)
            h = (h * r + from_bytes(last, "big")) % _POLY_P
        return self._finish_mac(h)


class NullProvider(_ProviderBase):
    """Transforms elided: the secured protocol shape at zero byte cost.

    Wire layout (flags, tag widths) is preserved so ablations isolate
    the transform cost, but payloads pass through untouched and the tag
    is constant.  ``verify`` accepts any well-formed tag.
    """

    name = "null"
    _TAG = b"\x00" * MAC_BYTES

    def __init__(self, key: bytes) -> None:
        self.key = key

    def keystream(self, nonce: int, length: int, offset: int = 0) -> bytes:
        _check_counter_span(offset, length)
        return b"\x00" * max(length, 0)

    def seal(self, nonce: int, data: Buffer, offset: int = 0) -> bytes:
        return data if type(data) is bytes else bytes(data)

    def mac(self, data: Buffer, context: bytes = b"") -> bytes:
        return self._TAG

    def verify(self, data: Buffer, tag: bytes, context: bytes = b"") -> bool:
        if len(tag) != MAC_BYTES:
            raise SecurityError(
                f"MAC tag must be {MAC_BYTES} bytes, got {len(tag)}"
            )
        return True


class HardwareProvider(NullProvider):
    """Link-level encryption hardware (section 2.5 case 2).

    The medium transforms frames below the ST, so the software provider
    passes bytes through; ``hardware`` marks the regime for benches and
    capability reporting.
    """

    name = "hw"
    hardware = True


_REGISTRY: Dict[str, Callable[[bytes], SecurityProvider]] = {}


def register_provider(
    name: str, factory: Callable[[bytes], SecurityProvider]
) -> None:
    """Register ``factory`` (``factory(session_key) -> provider``).

    Re-registering a name replaces it, so tests can shadow a built-in
    with an instrumented double and restore it after.
    """
    _REGISTRY[name] = factory


def resolve_provider(name: str) -> Callable[[bytes], SecurityProvider]:
    """The factory registered under ``name``; raises SecurityError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SecurityError(
            f"unknown security provider {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        ) from None


def provider_names() -> Iterable[str]:
    return tuple(sorted(_REGISTRY))


register_provider(XteaVectorProvider.name, XteaVectorProvider)
register_provider(XteaScalarProvider.name, XteaScalarProvider)
register_provider(NullProvider.name, NullProvider)
register_provider(HardwareProvider.name, HardwareProvider)
