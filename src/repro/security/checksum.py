"""Data-integrity checksums.

Section 2.5: "the optimal checksumming mechanism can be used based on
RMS parameters" -- a network interface may checksum in hardware, the
network may be clean enough to skip checksumming, or the ST must do it
in software.  These are real algorithms over real bytes so corruption
experiments actually detect (or miss) bit errors.

All are implemented from scratch (no zlib/binascii) because the
reproduction builds its substrates rather than importing them.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = [
    "internet_checksum",
    "fletcher16",
    "crc32",
    "CHECKSUM_ALGORITHMS",
    "checksum_bytes",
]


def internet_checksum(data: bytes) -> int:
    """The 16-bit one's-complement Internet checksum (RFC 1071 style)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def fletcher16(data: bytes) -> int:
    """Fletcher-16: cheap, catches more than a plain sum."""
    sum1 = 0
    sum2 = 0
    for byte in data:
        sum1 = (sum1 + byte) % 255
        sum2 = (sum2 + sum1) % 255
    return (sum2 << 8) | sum1


def _build_crc32_table() -> tuple:
    polynomial = 0xEDB88320
    table = []
    for index in range(256):
        value = index
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ polynomial
            else:
                value >>= 1
        table.append(value)
    return tuple(table)


_CRC32_TABLE = _build_crc32_table()


def crc32(data: bytes) -> int:
    """IEEE CRC-32 (the Ethernet polynomial), table-driven."""
    crc = 0xFFFFFFFF
    table = _CRC32_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


CHECKSUM_ALGORITHMS: Dict[str, Callable[[bytes], int]] = {
    "internet": internet_checksum,
    "fletcher16": fletcher16,
    "crc32": crc32,
}

_CHECKSUM_WIDTH = {"internet": 2, "fletcher16": 2, "crc32": 4}


def checksum_bytes(algorithm: str) -> int:
    """Header bytes a checksum of the given algorithm occupies."""
    return _CHECKSUM_WIDTH[algorithm]
