"""Key management for the simulated distributed system.

The paper's companion report [2] describes a secure-communication
protocol whose details this paper omits ("Details of addressing, naming,
encryption schemes ... are omitted").  We substitute a key registry: a
trusted party that derives pairwise host keys from per-host master keys.
The ST control channel uses these keys for peer authentication (3.2).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from repro.errors import SecurityError

__all__ = ["KeyRegistry"]


class KeyRegistry:
    """Derives and caches 16-byte pairwise keys for host pairs.

    The pairwise key is symmetric in the host order, so both ends derive
    the same key independently -- standing in for the key-distribution
    service of the DASH security protocol.
    """

    def __init__(self, realm_secret: bytes = b"dash-realm") -> None:
        self._realm = bytes(realm_secret)
        self._host_keys: Dict[str, bytes] = {}
        self._pair_keys: Dict[Tuple[str, str], bytes] = {}

    def register_host(self, host: str) -> bytes:
        """Enroll a host; returns its master key."""
        if host not in self._host_keys:
            digest = hashlib.sha256(self._realm + b"/host/" + host.encode()).digest()
            self._host_keys[host] = digest[:16]
        return self._host_keys[host]

    def is_registered(self, host: str) -> bool:
        return host in self._host_keys

    def pairwise_key(self, host_a: str, host_b: str) -> bytes:
        """The shared key for a host pair; both must be enrolled."""
        for host in (host_a, host_b):
            if host not in self._host_keys:
                raise SecurityError(f"host {host!r} is not enrolled in the realm")
        pair = (min(host_a, host_b), max(host_a, host_b))
        if pair not in self._pair_keys:
            material = (
                self._realm
                + b"/pair/"
                + pair[0].encode()
                + b"|"
                + pair[1].encode()
                + self._host_keys[pair[0]]
                + self._host_keys[pair[1]]
            )
            self._pair_keys[pair] = hashlib.sha256(material).digest()[:16]
        return self._pair_keys[pair]

    def session_key(self, host_a: str, host_b: str, session_id: int) -> bytes:
        """A per-session key derived from the pairwise key."""
        base = self.pairwise_key(host_a, host_b)
        material = base + session_id.to_bytes(8, "big")
        return hashlib.sha256(material).digest()[:16]
