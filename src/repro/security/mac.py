"""Authentication: message authentication codes.

The RMS authentication parameter guarantees that "impersonation
(delivery of a message with incorrect source label) is impossible"
(section 2.1).  The ST realizes this with a keyed MAC over the message
and its source label; a toy CBC-MAC built on the XTEA block cipher.
"""

from __future__ import annotations

import struct

from repro.errors import SecurityError
from repro.security.cipher import xtea_encrypt_block

__all__ = ["compute_mac", "verify_mac", "MAC_BYTES"]

#: Width of the MAC tag carried in message headers.
MAC_BYTES = 8


def compute_mac(key: bytes, data: bytes, context: bytes = b"") -> bytes:
    """An 8-byte CBC-MAC tag over ``context || len || data``.

    The length prefix prevents trivial extension ambiguity between the
    context (e.g. the source label) and the payload.
    """
    material = context + struct.pack(">I", len(data)) + data
    if len(material) % 8:
        material += b"\x00" * (8 - len(material) % 8)
    state = b"\x00" * 8
    for offset in range(0, len(material), 8):
        block = material[offset : offset + 8]
        mixed = bytes(a ^ b for a, b in zip(state, block))
        state = xtea_encrypt_block(key, mixed)
    return state


def verify_mac(key: bytes, data: bytes, tag: bytes, context: bytes = b"") -> bool:
    """Check a tag; returns False rather than raising on mismatch."""
    if len(tag) != MAC_BYTES:
        raise SecurityError(f"MAC tag must be {MAC_BYTES} bytes, got {len(tag)}")
    expected = compute_mac(key, data, context)
    # Constant-time comparison is irrelevant in a simulator, but cheap.
    result = 0
    for a, b in zip(expected, tag):
        result |= a ^ b
    return result == 0
