"""Authentication: message authentication codes.

The RMS authentication parameter guarantees that "impersonation
(delivery of a message with incorrect source label) is impossible"
(section 2.1).  The ST realizes this with a keyed MAC over the message
and its source label; a toy CBC-MAC built on the XTEA block cipher.
"""

from __future__ import annotations

import struct

from repro.errors import SecurityError
from repro.security.cipher import _check_key, _encrypt_words

__all__ = ["compute_mac", "verify_mac", "MAC_BYTES"]

#: Width of the MAC tag carried in message headers.
MAC_BYTES = 8

_MASK32 = 0xFFFFFFFF


def compute_mac(key: bytes, data: bytes, context: bytes = b"") -> bytes:
    """An 8-byte CBC-MAC tag over ``context || len || data``.

    The length prefix prevents trivial extension ambiguity between the
    context (e.g. the source label) and the payload.  ``data`` may be
    any bytes-like object: the material is assembled with one ``join``
    (no concatenation chain), so ``memoryview`` payloads from the
    zero-copy datapath are read without an intermediate ``bytes()``.
    """
    material = b"".join((context, struct.pack(">I", len(data)), data))
    if len(material) % 8:
        material += b"\x00" * (8 - len(material) % 8)
    # CBC chaining on 64-bit integers: the key schedule is unpacked once
    # and the XOR mixes whole blocks, with byte-identical tags to the
    # original per-byte implementation.
    k = _check_key(key)
    state = 0
    from_bytes = int.from_bytes
    for offset in range(0, len(material), 8):
        mixed = state ^ from_bytes(material[offset : offset + 8], "big")
        v0, v1 = _encrypt_words(k, mixed >> 32, mixed & _MASK32)
        state = (v0 << 32) | v1
    return state.to_bytes(8, "big")


def verify_mac(key: bytes, data: bytes, tag: bytes, context: bytes = b"") -> bool:
    """Check a tag; returns False rather than raising on mismatch."""
    if len(tag) != MAC_BYTES:
        raise SecurityError(f"MAC tag must be {MAC_BYTES} bytes, got {len(tag)}")
    expected = compute_mac(key, data, context)
    # Constant-time comparison is irrelevant in a simulator, but cheap.
    result = 0
    for a, b in zip(expected, tag):
        result |= a ^ b
    return result == 0
