"""Privacy: toy ciphers for the RMS privacy parameter.

Section 2.5's privacy example needs three regimes: software encryption
in the ST, link-level encryption "hardware" (a network property), or no
encryption on trusted networks.  The software path must be a real
transformation over real bytes so tests can prove round-tripping and
that eavesdroppers see ciphertext.

These ciphers are deliberately simple (XTEA in counter mode and a
keystream cipher built on it).  They are **not** cryptographically
reviewed -- the paper omits encryption schemes, and the experiments only
need correct-but-costly byte transformations.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import SecurityError

__all__ = ["xtea_encrypt_block", "xtea_decrypt_block", "StreamCipher"]

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
_ROUNDS = 32


def _check_key(key: bytes) -> Tuple[int, int, int, int]:
    if len(key) != 16:
        raise SecurityError(f"XTEA key must be 16 bytes, got {len(key)}")
    return struct.unpack(">4I", key)


def _encrypt_words(k: Tuple[int, int, int, int], v0: int, v1: int) -> Tuple[int, int]:
    """XTEA rounds over two 32-bit words with a pre-unpacked key schedule."""
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (
            v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK
    return v0, v1


def xtea_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 8-byte block with XTEA."""
    if len(block) != 8:
        raise SecurityError(f"XTEA block must be 8 bytes, got {len(block)}")
    k = _check_key(key)
    v0, v1 = _encrypt_words(k, *struct.unpack(">2I", block))
    return struct.pack(">2I", v0, v1)


def xtea_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 8-byte block with XTEA."""
    if len(block) != 8:
        raise SecurityError(f"XTEA block must be 8 bytes, got {len(block)}")
    k = _check_key(key)
    v0, v1 = struct.unpack(">2I", block)
    total = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        v1 = (
            v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))
        ) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
    return struct.pack(">2I", v0, v1)


class StreamCipher:
    """XTEA in counter mode: a symmetric keystream cipher.

    Encryption and decryption are the same XOR operation, so a single
    ``apply`` method serves both directions.  A per-message nonce keeps
    keystreams distinct across messages.
    """

    def __init__(self, key: bytes) -> None:
        # The key schedule is unpacked exactly once; per-message use pays
        # no setup (the ST caches cipher objects per stream).
        self._k = _check_key(key)
        self.key = key

    def keystream(self, nonce: int, length: int) -> bytes:
        """``length`` keystream bytes for the given nonce."""
        if (length + 7) // 8 > 1 << 32:
            # The counter word is 32 bits wide; one more block would
            # wrap it and silently reuse keystream from counter 0.
            raise SecurityError(
                "keystream exhausted: counter block overflow at "
                f"{length} bytes (max {1 << 32} blocks of 8 bytes per nonce)"
            )
        k = self._k
        v0 = nonce & _MASK
        pack = struct.pack
        blocks = [
            pack(">2I", *_encrypt_words(k, v0, counter))
            for counter in range((length + 7) // 8)
        ]
        return b"".join(blocks)[:length]

    def apply(self, nonce: int, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (encrypts and decrypts)."""
        length = len(data)
        stream = self.keystream(nonce, length)
        # One wide integer XOR instead of a per-byte generator; the
        # result is byte-identical.
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        ).to_bytes(length, "big")
