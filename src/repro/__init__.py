"""Reproduction of D. P. Anderson, *A Software Architecture for Network
Communication* (UC Berkeley TR, 1987 / ICDCS 1988).

The package implements the paper's Real-Time Message Stream (RMS)
abstraction and the DASH communication architecture built on it, over a
from-scratch discrete-event network simulator:

- :mod:`repro.core` -- RMS parameters, negotiation, the RMS base classes;
- :mod:`repro.sim` -- the discrete-event substrate;
- :mod:`repro.sched` -- deadline-based CPU and interface scheduling;
- :mod:`repro.security` -- checksums, toy ciphers, MACs, keys;
- :mod:`repro.netsim` -- simulated Ethernet/internetwork with admission
  control and network-level RMS;
- :mod:`repro.subtransport` -- the ST layer: control channel, caching,
  multiplexing, piggybacking, fragmentation, security elision;
- :mod:`repro.transport` -- RKOM request/reply, stream protocols, flow
  control, sub-user/user RMS levels;
- :mod:`repro.baselines` -- datagrams, TCP-like stream, datagram RPC;
- :mod:`repro.apps` -- voice/video/window/bulk/RPC workloads;
- :mod:`repro.metrics` -- statistics and table rendering;
- :mod:`repro.resilience` -- supervised sessions: retry, failover,
  parameter degradation;
- :mod:`repro.dash` -- whole-system assembly.

Quickstart::

    from repro import DashSystem

    system = DashSystem(seed=1)
    system.add_ethernet(trusted=True)
    a = system.add_node("a")
    b = system.add_node("b")
    session = system.connect(a, b, port="app")
    system.run(until=1.0)
    session.port.set_handler(lambda m: print("got", m.size, "bytes"))
    session.send(b"hello DASH")
    system.run(until=2.0)

Pass ``resilience=ResiliencePolicy()`` to :meth:`DashSystem.connect` to
put the session under supervision: automatic re-establishment with
jittered backoff, failover across attached networks, and parameter
degradation toward the acceptable floor (paper section 2.4).
"""

from repro.core import (
    DelayBound,
    DelayBoundType,
    Label,
    Message,
    Rms,
    RmsLevel,
    RmsParams,
    RmsRequest,
    StatisticalSpec,
    is_compatible,
    negotiate,
)
from repro.dash import DashNode, DashSystem
from repro.errors import (
    AdmissionError,
    NegotiationError,
    ReproError,
    RmsError,
    RmsFailedError,
)
from repro.netsim import ChaosSchedule
from repro.resilience import (
    ResiliencePolicy,
    Session,
    SessionState,
)
from repro.sim import SimContext
from repro.subtransport import StConfig, SubtransportLayer
from repro.transport import (
    FlowControlMode,
    RkomService,
    StreamConfig,
    open_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "DashNode",
    "DashSystem",
    "DelayBound",
    "DelayBoundType",
    "FlowControlMode",
    "Label",
    "Message",
    "NegotiationError",
    "ReproError",
    "Rms",
    "RmsError",
    "RmsFailedError",
    "RmsLevel",
    "RmsParams",
    "RmsRequest",
    "RkomService",
    "ChaosSchedule",
    "ResiliencePolicy",
    "Session",
    "SessionState",
    "SimContext",
    "StConfig",
    "StatisticalSpec",
    "StreamConfig",
    "SubtransportLayer",
    "open_stream",
    "__version__",
    "is_compatible",
    "negotiate",
]
