"""Deadline-based scheduling for CPUs and network interfaces (4.1)."""

from repro.sched.cpu import CpuCostModel, HostCpu, WorkItem
from repro.sched.policies import (
    POLICIES,
    EdfQueue,
    FifoQueue,
    PriorityQueue,
    ReadyQueue,
    make_queue,
)

__all__ = [
    "CpuCostModel",
    "EdfQueue",
    "FifoQueue",
    "HostCpu",
    "POLICIES",
    "PriorityQueue",
    "ReadyQueue",
    "WorkItem",
    "make_queue",
]
