"""Host CPU model with deadline-based short-term scheduling (section 4.1).

When an upper-level RMS is created, its total delay is divided among
stages (send protocol processing, ST delay, network delay, receive
protocol processing).  Each piece of protocol work submitted to a
:class:`HostCpu` carries the deadline of its stage; the CPU executes one
work item at a time and picks the next by the configured policy (EDF by
default, FIFO/priority for the ablation benchmarks).

Protocol CPU costs are linear in message size, parameterized by a
:class:`CpuCostModel` so experiments can charge realistic relative costs
for checksumming, encryption, and per-message protocol overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.context import SimContext
from repro.sched.policies import ReadyQueue, make_queue

__all__ = ["CpuCostModel", "WorkItem", "HostCpu"]


@dataclass(frozen=True)
class CpuCostModel:
    """Per-operation CPU costs, in seconds.

    The defaults model a late-1980s workstation-class CPU (a few MIPS):
    tens of microseconds of fixed cost per protocol operation plus
    per-byte costs for touching data.  Relative magnitudes are what the
    experiments depend on; absolute values only set the time scale.
    """

    per_message: float = 50e-6  # protocol bookkeeping per message
    per_context_switch: float = 100e-6  # process dispatch (section 4.3)
    checksum_per_byte: float = 30e-9  # software checksumming
    encrypt_per_byte: float = 120e-9  # software encryption
    mac_per_byte: float = 60e-9  # software message authentication
    copy_per_byte: float = 10e-9  # buffer copies / fragmentation

    def protocol_cost(
        self,
        size: int,
        checksum: bool = False,
        encrypt: bool = False,
        mac: bool = False,
        copies: int = 1,
    ) -> float:
        """CPU seconds to run one protocol stage over ``size`` bytes."""
        cost = self.per_message + copies * self.copy_per_byte * size
        if checksum:
            cost += self.checksum_per_byte * size
        if encrypt:
            cost += self.encrypt_per_byte * size
        if mac:
            cost += self.mac_per_byte * size
        return cost


@dataclass
class WorkItem:
    """One unit of protocol processing queued on a CPU."""

    name: str
    cpu_time: float
    deadline: float
    callback: Callable[..., None]
    #: Positional arguments for ``callback`` -- the fast path passes the
    #: stage state here instead of closing over it in a lambda.
    args: Tuple[Any, ...] = ()
    #: Context-switch accounting owner.  ``None`` means "derive from the
    #: name prefix" (everything before the first ``/``); the fast path
    #: passes it explicitly to skip the per-dispatch string split.
    owner: Optional[str] = None
    priority: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    trace_id: Optional[int] = None  # observability span, if the work
    # item carries one message's protocol stage

    @property
    def missed_deadline(self) -> Optional[bool]:
        if self.finished_at is None:
            return None
        return self.finished_at > self.deadline + 1e-12


class HostCpu:
    """A single CPU executing protocol work items, one at a time.

    Non-preemptive: once an item starts it runs to completion.  The next
    item is chosen by the configured ready-queue policy.  A context
    switch cost is charged whenever the CPU moves between items of
    different ``owner`` names, modeling the protocol-process context
    switching that section 4.3 trades off against fragmentation.
    """

    def __init__(
        self,
        context: SimContext,
        name: str = "cpu",
        policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
        charge_context_switches: bool = True,
    ) -> None:
        self.context = context
        self.name = name
        self.costs = cost_model or CpuCostModel()
        self._queue: ReadyQueue[WorkItem] = make_queue(policy)
        self.policy = policy
        self._busy = False
        self._paused = False
        self._last_owner: Optional[str] = None
        self._charge_switches = charge_context_switches
        # Statistics.
        self.items_run = 0
        self.busy_time = 0.0
        self.context_switches = 0
        self.deadline_misses = 0
        self.completed: List[WorkItem] = []
        self.keep_history = False

    def submit(
        self,
        name: str,
        cpu_time: float,
        deadline: float,
        callback: Callable[[], None],
        priority: int = 0,
        trace_id: Optional[int] = None,
    ) -> WorkItem:
        """Queue one work item; ``callback`` runs when it completes."""
        item = WorkItem(
            name=name,
            cpu_time=cpu_time,
            deadline=deadline,
            callback=callback,
            priority=priority,
            submitted_at=self.context.now,
            trace_id=trace_id,
        )
        self._queue.push(item, deadline=deadline, priority=priority)
        self.context.tracer.record(
            "cpu", "submit", cpu=self.name, item=name, deadline=deadline
        )
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(trace_id, "cpu", "enqueue", cpu=self.name, item=name)
        if not self._busy:
            self._dispatch()
        return item

    def submit_protocol_stage(
        self,
        name: str,
        size: int,
        deadline: float,
        callback: Callable[[], None],
        checksum: bool = False,
        encrypt: bool = False,
        mac: bool = False,
        copies: int = 1,
        priority: int = 0,
        trace_id: Optional[int] = None,
    ) -> WorkItem:
        """Queue a protocol stage costed by the CPU's cost model."""
        cpu_time = self.costs.protocol_cost(
            size, checksum=checksum, encrypt=encrypt, mac=mac, copies=copies
        )
        return self.submit(
            name, cpu_time, deadline, callback, priority=priority,
            trace_id=trace_id,
        )

    def submit_fast(
        self,
        name: str,
        cpu_time: float,
        deadline: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        owner: Optional[str] = None,
        trace_id: Optional[int] = None,
    ) -> WorkItem:
        """Hot-path submit: precomputed cost, positional-args callback.

        Identical scheduling semantics to :meth:`submit`; the stage
        state travels in ``args`` (no closure allocation), ``owner``
        skips the name split at dispatch, and tracing is only recorded
        when the tracer is actually collecting.
        """
        item = WorkItem(
            name=name,
            cpu_time=cpu_time,
            deadline=deadline,
            callback=callback,
            args=args,
            owner=owner,
            submitted_at=self.context.loop._now,
            trace_id=trace_id,
        )
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.record(
                "cpu", "submit", cpu=self.name, item=name, deadline=deadline
            )
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(trace_id, "cpu", "enqueue", cpu=self.name, item=name)
        if self._busy or self._paused or self._queue:
            # Push/pop through the policy heap only when the item has
            # company; an idle CPU starts its only item directly (any
            # policy pops a singleton heap identically).
            self._queue.push(item, deadline=deadline, priority=0)
            if not self._busy:
                self._dispatch()
        else:
            self._begin(item)
        return item

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def utilization_window(self) -> float:
        """Busy seconds accumulated so far."""
        return self.busy_time

    def pause(self) -> None:
        """Stop dispatching queued work (a running item still completes).

        Models a host outage (chaos schedules): submitted protocol
        stages pile up in the ready queue until :meth:`resume`.
        """
        self._paused = True

    def resume(self) -> None:
        if not self._paused:
            return
        self._paused = False
        self._dispatch()

    def _dispatch(self) -> None:
        if self._busy or self._paused or not self._queue:
            return
        self._begin(self._queue.pop())

    def _begin(self, item: WorkItem) -> None:
        context = self.context
        self._busy = True
        item.started_at = context.loop._now
        owner = item.owner
        if owner is None:
            owner = item.name.split("/", 1)[0]
        run_time = item.cpu_time
        if self._charge_switches and owner != self._last_owner:
            run_time += self.costs.per_context_switch
            self.context_switches += 1
        self._last_owner = owner
        obs = context.obs
        if obs.enabled:
            obs.spans.event(
                item.trace_id, "cpu", "dequeue", cpu=self.name, item=item.name
            )
        context.loop.call_after(run_time, self._finish, item, run_time)

    def _finish(self, item: WorkItem, run_time: float) -> None:
        context = self.context
        now = context.loop._now
        item.finished_at = now
        self._busy = False
        self.items_run += 1
        self.busy_time += run_time
        missed = now > item.deadline + 1e-12
        if missed:
            self.deadline_misses += 1
        if self.keep_history:
            self.completed.append(item)
        tracer = context.tracer
        if tracer.enabled:
            tracer.record(
                "cpu",
                "finish",
                cpu=self.name,
                item=item.name,
                missed=missed,
            )
        obs = context.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("cpu_items_run", cpu=self.name).inc()
            if missed:
                metrics.counter("cpu_deadline_misses", cpu=self.name).inc()
            metrics.histogram(
                "cpu_queue_wait_seconds", cpu=self.name
            ).observe((item.started_at or item.submitted_at) - item.submitted_at)
            obs.spans.event(
                item.trace_id, "cpu", "done",
                cpu=self.name, item=item.name, missed=missed,
            )
        item.callback(*item.args)
        self._dispatch()

    def __repr__(self) -> str:
        return (
            f"<HostCpu {self.name} policy={self.policy} queued="
            f"{self.queue_length} run={self.items_run}>"
        )
