"""Ready-queue ordering policies.

Section 4.1: deadlines determine the execution order of protocol
processes and the order in which packets are queued on a network
interface.  The paper contrasts deadline-based ordering with systems
that use "only priorities (or no information at all)"; all three
policies are implemented so the benchmarks can compare them (E5).

Every policy is *stable*: equal keys pop in insertion order.  For EDF
this realizes the refinement of section 4.3.1 -- if message A is sent
after message B with a transmission deadline greater than or equal to
B's, then B is delivered first.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, List, Optional, Tuple, TypeVar

from repro.errors import SchedulingError

__all__ = [
    "ReadyQueue",
    "FifoQueue",
    "EdfQueue",
    "PriorityQueue",
    "make_queue",
    "POLICIES",
]

T = TypeVar("T")


class ReadyQueue(Generic[T]):
    """Interface: push items with ordering hints, pop in policy order."""

    policy_name = "abstract"

    def push(self, item: T, deadline: float = 0.0, priority: int = 0) -> None:
        raise NotImplementedError

    def pop(self) -> T:
        raise NotImplementedError

    def peek(self) -> T:
        raise NotImplementedError

    def order_key(self, deadline: float = 0.0, priority: int = 0) -> Any:
        """The policy's sort key for the given hints (ties break by
        insertion order).  Lets callers that drain entries ahead of time
        (link transmit batching) compare a new arrival against entries
        they already hold."""
        raise NotImplementedError

    def pop_entry(self) -> Tuple[Any, int, T]:
        """Pop the front as its raw ``(key, seq, item)`` entry so it can
        later be re-queued with :meth:`push_entry` in its exact original
        position, including tie-break order."""
        raise NotImplementedError

    def push_entry(self, entry: Tuple[Any, int, T]) -> None:
        """Re-queue a raw entry taken by :meth:`pop_entry`."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class _HeapQueue(ReadyQueue[T]):
    """Shared heap machinery; subclasses define the sort key."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, int, T]] = []
        self._seq = itertools.count()

    def _key(self, deadline: float, priority: int) -> Any:
        raise NotImplementedError

    def push(self, item: T, deadline: float = 0.0, priority: int = 0) -> None:
        heapq.heappush(
            self._heap, (self._key(deadline, priority), next(self._seq), item)
        )

    def pop(self) -> T:
        if not self._heap:
            raise SchedulingError(f"{self.policy_name} queue is empty")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> T:
        if not self._heap:
            raise SchedulingError(f"{self.policy_name} queue is empty")
        return self._heap[0][2]

    def order_key(self, deadline: float = 0.0, priority: int = 0) -> Any:
        return self._key(deadline, priority)

    def pop_entry(self) -> Tuple[Any, int, T]:
        if not self._heap:
            raise SchedulingError(f"{self.policy_name} queue is empty")
        return heapq.heappop(self._heap)

    def push_entry(self, entry: Tuple[Any, int, T]) -> None:
        heapq.heappush(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap)

    def items(self) -> List[T]:
        """All queued items in policy order (non-destructive)."""
        return [entry[2] for entry in sorted(self._heap)]


class FifoQueue(_HeapQueue[T]):
    """First-in first-out: ignores deadlines and priorities."""

    policy_name = "fifo"

    def _key(self, deadline: float, priority: int) -> Any:
        return 0


class EdfQueue(_HeapQueue[T]):
    """Earliest deadline first, stable on ties (section 4.1/4.3.1)."""

    policy_name = "edf"

    def _key(self, deadline: float, priority: int) -> Any:
        return deadline


class PriorityQueue(_HeapQueue[T]):
    """Static priorities (lower value runs first), stable on ties."""

    policy_name = "priority"

    def _key(self, deadline: float, priority: int) -> Any:
        return priority


POLICIES = {
    "fifo": FifoQueue,
    "edf": EdfQueue,
    "priority": PriorityQueue,
}


def make_queue(policy: str) -> ReadyQueue:
    """Build a ready queue by policy name ('fifo', 'edf', 'priority')."""
    try:
        return POLICIES[policy]()
    except KeyError:
        raise SchedulingError(
            f"unknown scheduling policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
