"""Transport protocols: RKOM request/reply, stream protocols, flow control."""

from repro.transport.flowcontrol import (
    FlowControlMode,
    RateBasedEnforcer,
    ReceiverCredit,
    WindowEnforcer,
)
from repro.transport.layers import LayeredRms, SubUserRms, UserRms
from repro.transport.rkom import RkomConfig, RkomService, RkomStats
from repro.transport.stream import (
    StreamConfig,
    StreamSession,
    StreamStats,
    open_stream,
)

__all__ = [
    "FlowControlMode",
    "LayeredRms",
    "RateBasedEnforcer",
    "ReceiverCredit",
    "RkomConfig",
    "RkomService",
    "RkomStats",
    "StreamConfig",
    "StreamSession",
    "StreamStats",
    "SubUserRms",
    "UserRms",
    "WindowEnforcer",
    "open_stream",
]
