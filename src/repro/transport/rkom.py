"""RKOM: the Remote Kernel Operation Mechanism (paper section 3.3).

"All request/reply communication uses the DASH Remote Kernel Operation
Mechanism (RKOM).  The RKOM module maintains an RKOM channel to each
active peer.  Such a channel consists of four ST RMS's, one low-delay
and one high-delay RMS in each direction.  The low-delay RMS's are used
for initial request and reply messages, and the high-delay RMS's are
used for retransmissions and acknowledgements."

Each host runs one :class:`RkomService`.  Channels are created lazily on
the first call to a peer; the reverse-direction pair is created by the
peer's service when it first replies.
"""

from __future__ import annotations

import itertools
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.core.pool import ObjectPool
from repro.errors import RkomTimeoutError, RmsFailedError, TransportError
from repro.sim.context import SimContext
from repro.sim.events import GroupTimer, Signal, TimerGroup
from repro.sim.process import Future
from repro.subtransport.st import SubtransportLayer
from repro.subtransport.strms import StRms

__all__ = ["CallHandle", "RkomConfig", "RkomStats", "RkomService"]

LOW_PORT = "rkom-lo"
HIGH_PORT = "rkom-hi"

_HEADER = struct.Struct(">BQH")  # kind, request id, op-name length
_KIND_REQUEST = 1
_KIND_REPLY = 2
_KIND_ACK = 3

_request_ids = itertools.count(1)


@dataclass
class RkomConfig:
    """Tunables of the RKOM module."""

    low_delay_bound: float = 0.05
    high_delay_bound: float = 1.0
    capacity: int = 64 * 1024
    max_message_size: int = 8 * 1024
    request_timeout: float = 0.25
    max_retransmits: int = 5
    backoff: float = 2.0
    reply_cache_size: int = 256


@dataclass
class RkomStats:
    calls: int = 0
    replies: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    duplicate_requests: int = 0
    requests_served: int = 0


class CallHandle(Future):
    """The result of :meth:`RkomService.call`.

    It *is* the future the old API returned (``yield handle``,
    ``.result()``, ``.done``, ``.failed``, ``add_done_callback`` all work
    unchanged) plus call-control surface: ``.future`` (itself, for
    callers that want to be explicit), ``.cancel()`` to abandon the call
    and stop its retransmissions, and ``.elapsed`` for latency
    measurement.
    """

    def __init__(
        self, service: "RkomService", request_id: int, started_at: float
    ) -> None:
        Future.__init__(self, service.context.loop)
        self._service = service
        self._request_id = request_id
        self.started_at = started_at
        self.finished_at: Optional[float] = None

    @property
    def future(self) -> "CallHandle":
        """The underlying future -- this object itself."""
        return self

    @property
    def elapsed(self) -> float:
        """Seconds from the call to its resolution (or to now while
        still in flight)."""
        end = self.finished_at
        if end is None:
            end = self._loop._now
        return end - self.started_at

    def cancel(self) -> bool:
        """Abandon the call: drop its pending record, stop its timeout/
        retransmission timer, and fail the future.  Returns ``False``
        when the call already resolved."""
        if self.done:
            return False
        self._service._cancel_call(self._request_id, self)
        return True

    def _resolve(self, state: str, value: Any) -> None:
        self.finished_at = self._loop._now
        Future._resolve(self, state, value)

    def __repr__(self) -> str:
        return f"<CallHandle #{self._request_id} {self._state}>"


class _CallRecord:
    """Pooled per-call server-side state of one outstanding request.

    Replaces the old per-call ``_PendingCall`` dataclass; records are
    recycled through an :class:`ObjectPool`, so a steady request/reply
    stream allocates one :class:`CallHandle` per call and nothing else.
    The releasing site clears the reference fields (pool discipline: a
    pooled record never pins a frame or handle).
    """

    __slots__ = ("handle", "frame", "peer", "retries", "timeout", "timer",
                 "trace_id")

    def __init__(self) -> None:
        self.handle: Optional[CallHandle] = None
        self.frame: bytes = b""
        self.peer: str = ""
        self.retries: int = 0
        self.timeout: float = 0.0
        self.timer: Optional[GroupTimer] = None
        self.trace_id: Optional[int] = None  # observability span of the call


class _Channel:
    """The outbound half of an RKOM channel to one peer."""

    def __init__(self) -> None:
        self.low: Optional[StRms] = None
        self.high: Optional[StRms] = None
        self.state = "none"  # none | creating | ready
        self.waiters: list = []


class RkomService:
    """Request/reply communication for one host."""

    def __init__(
        self,
        context: SimContext,
        st: SubtransportLayer,
        config: Optional[RkomConfig] = None,
    ) -> None:
        self.context = context
        self.st = st
        self.config = config or RkomConfig()
        self.stats = RkomStats()
        self.handlers: Dict[str, Callable[[bytes, str], Any]] = {}
        self._channels: Dict[str, _Channel] = {}
        self._pending: Dict[int, _CallRecord] = {}
        #: Recycled call records -- the request-path counterpart of the
        #: frame/handle pools elsewhere in the stack.
        self._records: ObjectPool[_CallRecord] = ObjectPool(cap=512)
        #: op-name -> encoded bytes; op names are a small fixed set, so
        #: the per-call ``str.encode`` disappears after warm-up.
        self._op_cache: Dict[str, bytes] = {}
        #: All call timeouts coalesced onto one loop timer (the timeout
        #: deadline churns on every retransmission and reply).
        self._timers = TimerGroup(context.loop)
        #: Reply cache for at-most-once execution of duplicates.
        self._served: "OrderedDict[Tuple[str, int], Optional[bytes]]" = OrderedDict()
        #: Fired with (peer_host, "ready" | "failed") on channel state
        #: changes; the resilience layer surfaces these as session states.
        self.on_channel_event: Signal = Signal(context.loop)
        host = st.host
        host.bind_port(LOW_PORT).set_handler(self._arrived)
        host.bind_port(HIGH_PORT).set_handler(self._arrived)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def register_handler(self, op: str, handler: Callable[[bytes, str], Any]) -> None:
        """Serve ``op`` requests; the handler returns bytes or a Future."""
        self.handlers[op] = handler

    def call(
        self,
        peer_host: str,
        op: str,
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> CallHandle:
        """Invoke ``op`` on ``peer_host``.

        Returns a :class:`CallHandle` -- a :class:`Future` resolving to
        the reply bytes, with ``.cancel()`` and ``.elapsed`` on top.
        """
        request_id = next(_request_ids)
        op_bytes = self._op_cache.get(op)
        if op_bytes is None:
            op_bytes = self._op_cache[op] = op.encode("utf-8")
        handle = CallHandle(self, request_id, self.context.now)
        record = self._records.acquire()
        if record is None:
            record = _CallRecord()
        record.handle = handle
        record.frame = (
            _HEADER.pack(_KIND_REQUEST, request_id, len(op_bytes))
            + op_bytes
            + payload
        )
        record.peer = peer_host
        record.retries = 0
        record.timeout = timeout or self.config.request_timeout
        self._pending[request_id] = record
        self.stats.calls += 1
        obs = self.context.obs
        if obs.enabled:
            record.trace_id = obs.spans.new_trace()
            obs.metrics.counter("rkom_calls", host=self.st.host.name).inc()
            obs.spans.event(
                record.trace_id, "rkom", "call",
                host=self.st.host.name, peer=peer_host, op=op,
            )
        self._with_channel(
            peer_host, lambda channel: self._send_request(request_id, channel)
        )
        return handle

    def _release_record(self, record: _CallRecord) -> None:
        """Return a finished record to the pool with its refs cleared."""
        record.handle = None
        record.frame = b""
        record.peer = ""
        record.timer = None
        record.trace_id = None
        self._records.release(record)

    def _cancel_call(self, request_id: int, handle: CallHandle) -> None:
        """Abandon an in-flight call (CallHandle.cancel)."""
        record = self._pending.get(request_id)
        peer = "peer"
        if record is not None and record.handle is handle:
            del self._pending[request_id]
            if record.timer is not None:
                record.timer.cancel()
            peer = record.peer
            self._release_record(record)
        handle.set_exception(TransportError(f"RKOM call to {peer} cancelled"))

    def _send_request(self, request_id: int, channel: _Channel) -> None:
        record = self._pending.get(request_id)
        if record is None:
            return
        # Initial requests ride the low-delay RMS.
        try:
            channel.low.send(record.frame)
        except RmsFailedError:
            # The channel died between "ready" and this action running;
            # the timeout path re-establishes it and retransmits.
            pass
        record.timer = self._timers.call_after(
            record.timeout, self._timeout_fired, request_id
        )

    def _timeout_fired(self, request_id: int) -> None:
        record = self._pending.get(request_id)
        if record is None:
            return
        record.retries += 1
        obs = self.context.obs
        if record.retries > self.config.max_retransmits:
            self._pending.pop(request_id, None)
            self.stats.timeouts += 1
            if obs.enabled:
                obs.metrics.counter(
                    "rkom_timeouts", host=self.st.host.name
                ).inc()
                obs.spans.event(
                    record.trace_id, "rkom", "timeout",
                    host=self.st.host.name, retries=record.retries - 1,
                )
            handle = record.handle
            peer = record.peer
            self._release_record(record)
            handle.set_exception(
                RkomTimeoutError(
                    f"no reply from {peer} after "
                    f"{self.config.max_retransmits} retransmissions"
                )
            )
            return
        self.stats.retransmissions += 1
        if obs.enabled:
            obs.metrics.counter(
                "rkom_retransmissions", host=self.st.host.name
            ).inc()
            obs.spans.event(
                record.trace_id, "rkom", "retransmit",
                host=self.st.host.name, attempt=record.retries,
            )
        channel = self._channels.get(record.peer)
        if channel is not None and channel.state == "ready":
            # Retransmissions ride the high-delay RMS.
            try:
                channel.high.send(record.frame)
            except RmsFailedError:
                pass  # the failure listener resets the channel; see below
        else:
            # The channel died (or never finished); re-establish it and
            # retransmit through the fresh one if the call still waits.
            self._with_channel(
                record.peer,
                lambda ch, rid=request_id: self._resend_if_pending(rid, ch),
            )
        record.timeout *= self.config.backoff
        record.timer = self._timers.call_after(
            record.timeout, self._timeout_fired, request_id
        )

    # ------------------------------------------------------------------
    # Channel management
    # ------------------------------------------------------------------

    def _with_channel(self, peer_host: str, action: Callable[[_Channel], None]) -> None:
        channel = self._channels.setdefault(peer_host, _Channel())
        if channel.state == "ready":
            action(channel)
            return
        channel.waiters.append(action)
        if channel.state == "creating":
            return
        channel.state = "creating"
        process = self.context.spawn(
            self._create_channel(peer_host, channel),
            name=f"rkom-chan:{self.st.host.name}->{peer_host}",
        )
        process.finished.add_done_callback(
            lambda f: self._channel_done(peer_host, channel, f)
        )

    def _rms_params(self, delay: float) -> Tuple[RmsParams, RmsParams]:
        desired = RmsParams(
            capacity=self.config.capacity,
            max_message_size=self.config.max_message_size,
            delay_bound=DelayBound(delay, 2e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        # Accept any message size the ST can offer down to one small
        # request frame; narrow-MTU networks then negotiate lower.
        acceptable = desired.with_(
            delay_bound=DelayBound(delay * 4, 1e-5),
            max_message_size=min(512, self.config.max_message_size),
        )
        return desired, acceptable

    def _create_channel(self, peer_host: str, channel: _Channel):
        low_desired, low_acceptable = self._rms_params(self.config.low_delay_bound)
        channel.low = yield self.st.create_st_rms(
            peer_host, port=LOW_PORT, desired=low_desired, acceptable=low_acceptable
        )
        high_desired, high_acceptable = self._rms_params(self.config.high_delay_bound)
        channel.high = yield self.st.create_st_rms(
            peer_host, port=HIGH_PORT, desired=high_desired, acceptable=high_acceptable
        )
        return channel

    def _channel_done(self, peer_host: str, channel: _Channel, future: Future) -> None:
        waiters, channel.waiters = channel.waiters, []
        if future.failed:
            channel.state = "none"
            # Fail every call still waiting for this channel so callers
            # see the error instead of hanging.
            error = RkomTimeoutError(
                f"RKOM channel to {peer_host} could not be established"
            )
            obs = self.context.obs
            for request_id in list(self._pending):
                record = self._pending[request_id]
                if record.peer == peer_host:
                    self._pending.pop(request_id, None)
                    if record.timer is not None:
                        record.timer.cancel()
                    self.stats.timeouts += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "rkom_timeouts", host=self.st.host.name
                        ).inc()
                        obs.spans.event(
                            record.trace_id, "rkom", "timeout",
                            host=self.st.host.name, reason="no-channel",
                        )
                    handle = record.handle
                    self._release_record(record)
                    handle.set_exception(error)
            self.on_channel_event.fire(peer_host, "failed")
            return
        channel.state = "ready"
        for rms in (channel.low, channel.high):
            rms.on_failure.listen(
                lambda _rms, reason, p=peer_host, c=channel:
                    self._channel_failed(p, c, reason)
            )
        self.on_channel_event.fire(peer_host, "ready")
        for action in waiters:
            action(channel)

    def _resend_if_pending(self, request_id: int, channel: _Channel) -> None:
        record = self._pending.get(request_id)
        if record is None:
            return
        try:
            channel.high.send(record.frame)
        except RmsFailedError:
            pass

    def _channel_failed(self, peer_host: str, channel: _Channel, reason: str) -> None:
        """An RMS of a ready channel failed: forget the channel.

        Pending calls keep their retransmission timers; the next timeout
        re-establishes the channel and retransmits, so a transient
        network outage costs retries rather than failed calls.
        """
        current = self._channels.get(peer_host)
        if current is not channel or channel.state != "ready":
            return
        channel.state = "none"
        channel.low = None
        channel.high = None
        self.context.tracer.record(
            "rkom", "channel_failed", host=self.st.host.name, peer=peer_host,
            reason=reason,
        )
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "rkom_channel_failures", host=self.st.host.name
            ).inc()
        self.on_channel_event.fire(peer_host, "failed")

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def _arrived(self, message) -> None:
        data = message.payload
        if len(data) < _HEADER.size:
            return
        kind, request_id, op_length = _HEADER.unpack_from(data, 0)
        body = data[_HEADER.size :]
        source_host = message.source.host if message.source else ""
        if kind == _KIND_REQUEST:
            op = body[:op_length].decode("utf-8", errors="replace")
            payload = body[op_length:]
            self._serve(source_host, request_id, op, payload)
        elif kind == _KIND_REPLY:
            record = self._pending.pop(request_id, None)
            if record is None:
                return
            if record.timer is not None:
                record.timer.cancel()
            self.stats.replies += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter(
                    "rkom_replies", host=self.st.host.name
                ).inc()
                obs.spans.event(
                    record.trace_id, "rkom", "reply",
                    host=self.st.host.name, peer=source_host,
                )
            handle = record.handle
            self._release_record(record)
            handle.set_result(body)
            self._send_ack(source_host, request_id)
        elif kind == _KIND_ACK:
            self._served.pop((source_host, request_id), None)

    def _serve(self, source_host: str, request_id: int, op: str, payload: bytes) -> None:
        key = (source_host, request_id)
        obs = self.context.obs
        if key in self._served:
            self.stats.duplicate_requests += 1
            if obs.enabled:
                obs.metrics.counter(
                    "rkom_duplicate_requests", host=self.st.host.name
                ).inc()
            cached = self._served[key]
            if cached is not None:
                # Retransmitted replies ride the high-delay RMS.
                self._send_reply(source_host, request_id, cached, retransmit=True)
            return
        handler = self.handlers.get(op)
        if handler is None:
            self._served[key] = b""
            self._send_reply(source_host, request_id, b"", retransmit=False)
            return
        self._served[key] = None  # in progress
        self._trim_cache()
        self.stats.requests_served += 1
        if obs.enabled:
            obs.metrics.counter(
                "rkom_requests_served", host=self.st.host.name
            ).inc()
        result = handler(payload, source_host)
        if isinstance(result, Future):
            result.add_done_callback(
                lambda f: self._reply_ready(source_host, request_id, f)
            )
        else:
            self._finish_serve(source_host, request_id, bytes(result))

    def _reply_ready(self, source_host: str, request_id: int, future: Future) -> None:
        if future.failed:
            self._finish_serve(source_host, request_id, b"")
        else:
            self._finish_serve(source_host, request_id, bytes(future.result()))

    def _finish_serve(self, source_host: str, request_id: int, reply: bytes) -> None:
        self._served[(source_host, request_id)] = reply
        self._send_reply(source_host, request_id, reply, retransmit=False)

    def _send_reply(
        self, peer_host: str, request_id: int, reply: bytes, retransmit: bool
    ) -> None:
        frame = _HEADER.pack(_KIND_REPLY, request_id, 0) + reply

        def send(channel: _Channel) -> None:
            rms = channel.high if retransmit else channel.low
            try:
                rms.send(frame)
            except RmsFailedError:
                pass  # the client retransmits; the reply cache re-serves

        self._with_channel(peer_host, send)

    def _send_ack(self, peer_host: str, request_id: int) -> None:
        frame = _HEADER.pack(_KIND_ACK, request_id, 0)

        def send(channel: _Channel) -> None:
            try:
                channel.high.send(frame)
            except RmsFailedError:
                pass

        self._with_channel(peer_host, send)

    def _trim_cache(self) -> None:
        while len(self._served) > self.config.reply_cache_size:
            self._served.popitem(last=False)

    def __repr__(self) -> str:
        return (
            f"<RkomService host={self.st.host.name} channels="
            f"{len(self._channels)} pending={len(self._pending)}>"
        )
