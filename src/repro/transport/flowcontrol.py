"""Flow control and RMS capacity enforcement (paper section 4.4).

The paper factors buffers into three groups -- (1) between sending
process and send protocol, (2) inside the network, (3) between receive
protocol and receiver -- and treats them separately:

- *RMS capacity enforcement* protects group (2).  It is a **client**
  responsibility; the provider neither detects nor blocks violations.
  Two mechanisms: rate-based ("using timers, the sender ensures that
  during any time period of duration A + CB, the number of bytes sent
  does not exceed C") and acknowledgement-based (a byte window opened by
  flow-control acknowledgements).
- *Receiver flow control* protects group (3): the protocol stops sending
  when the receive buffer limit is reached.
- *Sender flow control* protects group (1): a flow-controlled local IPC
  port (see :class:`repro.sim.ports.FlowControlledPort`).

Each mechanism here is independent so the Figure-5 configurations can be
composed -- or omitted, which is the paper's point ("in cases where no
flow control is necessary, performance optimizations may be possible").
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.core.params import RmsParams
from repro.errors import ParameterError
from repro.sim.context import SimContext
from repro.sim.events import EventHandle

__all__ = [
    "FlowControlMode",
    "RateBasedEnforcer",
    "WindowEnforcer",
    "ReceiverCredit",
]


class FlowControlMode(enum.Enum):
    """The Figure-5 flow-control options."""

    NONE = "none"
    CAPACITY_ONLY = "capacity"
    SENDER_ONLY = "sender"
    RECEIVER_ONLY = "receiver"
    CAPACITY_AND_RECEIVER = "capacity+receiver"
    END_TO_END = "end-to-end"  # sender + capacity + receiver

    @property
    def enforces_capacity(self) -> bool:
        return self in (
            FlowControlMode.CAPACITY_ONLY,
            FlowControlMode.CAPACITY_AND_RECEIVER,
            FlowControlMode.END_TO_END,
        )

    @property
    def has_receiver_fc(self) -> bool:
        return self in (
            FlowControlMode.RECEIVER_ONLY,
            FlowControlMode.CAPACITY_AND_RECEIVER,
            FlowControlMode.END_TO_END,
        )

    @property
    def has_sender_fc(self) -> bool:
        return self in (FlowControlMode.SENDER_ONLY, FlowControlMode.END_TO_END)


class RateBasedEnforcer:
    """Rate-based capacity enforcement (section 4.4).

    A strict sliding-window limiter: "using timers, the sender ensures
    that during any time period of duration A + CB, the number of bytes
    sent does not exceed C."  A send is admitted only when the bytes
    sent during the trailing window, plus its own size, stay within the
    capacity; otherwise it waits until enough history ages out.  "This
    approach is pessimistic in the sense that it assumes the maximum
    delay for all messages."
    """

    def __init__(self, context: SimContext, params: RmsParams) -> None:
        if params.delay_bound.is_unbounded:
            raise ParameterError(
                "rate-based enforcement needs a finite delay bound"
            )
        self.context = context
        self.capacity = params.capacity
        self.window = params.delay_bound.a + params.capacity * params.delay_bound.b
        if self.window <= 0:
            raise ParameterError("degenerate enforcement window")
        #: Average admission rate implied by the rule, for reporting.
        self.rate = params.capacity / self.window
        self._history: Deque[Tuple[float, int]] = deque()  # (send time, size)
        self._in_window = 0
        #: Pending sends: mutable [size, send, trace_id, held] records so
        #: the drain loop can mark an item held exactly once.
        self._pending: Deque[list] = deque()
        self._timer: Optional[EventHandle] = None
        self.sends_delayed = 0

    def _evict(self) -> None:
        horizon = self.context.now - self.window
        while self._history and self._history[0][0] <= horizon:
            _, size = self._history.popleft()
            self._in_window -= size

    def request(
        self,
        size: int,
        send: Callable[[], None],
        trace_id: Optional[int] = None,
    ) -> None:
        """Run ``send`` as soon as the sliding-window rule allows."""
        if size > self.capacity:
            raise ParameterError(
                f"message of {size}B exceeds enforced capacity {self.capacity}B"
            )
        self._pending.append([size, send, trace_id, False])
        self._drain()

    def try_admit(self, size: int, now: Optional[float] = None) -> bool:
        """Admit ``size`` bytes immediately, or decline without queueing.

        The no-alloc fast path of :meth:`request`: no pending record, no
        closure, no timer.  Succeeds -- with exactly the bookkeeping an
        uncontested ``request`` would have done -- iff nothing is queued
        ahead and the sliding window has room.  On False the enforcer is
        untouched and the caller falls back to :meth:`request`.
        """
        if self._pending:
            return False
        if size > self.capacity:
            raise ParameterError(
                f"message of {size}B exceeds enforced capacity {self.capacity}B"
            )
        if now is None:
            now = self.context.now
        horizon = now - self.window
        history = self._history
        while history and history[0][0] <= horizon:
            _, old = history.popleft()
            self._in_window -= old
        if self._in_window + size > self.capacity:
            return False
        history.append((now, size))
        self._in_window += size
        return True

    def _drain(self) -> None:
        self._evict()
        obs = self.context.obs
        while self._pending:
            entry = self._pending[0]
            size, send, trace_id, held = entry
            if self._in_window + size <= self.capacity:
                self._pending.popleft()
                self._history.append((self.context.now, size))
                self._in_window += size
                if held and obs.enabled:
                    obs.spans.event(trace_id, "fc", "release", mechanism="rate")
                send()
            else:
                # Wait until the oldest history entry leaves the window.
                if not held:
                    entry[3] = True
                    self.sends_delayed += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "fc_sends_delayed", mechanism="rate"
                        ).inc()
                        obs.spans.event(
                            trace_id, "fc", "hold",
                            mechanism="rate", size=size,
                        )
                next_free = self._history[0][0] + self.window
                self._arm_timer(next_free)
                return

    def _arm_timer(self, when: float) -> None:
        if self._timer is not None and not self._timer.cancelled:
            if self._timer.time <= when:
                return
            self._timer.cancel()
        # A hair past the eviction instant so <=-comparisons resolve.
        self._timer = self.context.loop.call_at(
            max(when, self.context.now) + 1e-9, self._timer_fired
        )

    def _timer_fired(self) -> None:
        self._timer = None
        self._drain()

    @property
    def queued(self) -> int:
        return len(self._pending)


class WindowEnforcer:
    """Acknowledgement-based capacity enforcement (section 4.4).

    The window equals the RMS capacity ("flow control protocols can be
    simpler because of the fixed window size determined by RMS
    capacity").  ``acknowledge`` -- driven by flow-control acks on a
    reverse RMS or by the ST fast-ack service -- opens the window.
    "This may achieve higher maximum throughput at the cost of the
    reverse message traffic."
    """

    def __init__(self, context: SimContext, capacity: int) -> None:
        if capacity <= 0:
            raise ParameterError(f"window capacity must be > 0: {capacity}")
        self.context = context
        self.capacity = capacity
        self.outstanding = 0
        self._pending: Deque[list] = deque()  # [size, send, trace_id, held]
        self.sends_delayed = 0

    def request(
        self,
        size: int,
        send: Callable[[], None],
        trace_id: Optional[int] = None,
    ) -> None:
        """Run ``send`` once the window has ``size`` bytes free."""
        if size > self.capacity:
            raise ParameterError(
                f"message of {size}B exceeds window capacity {self.capacity}B"
            )
        self._pending.append([size, send, trace_id, False])
        self._drain()

    def try_admit(self, size: int, now: Optional[float] = None) -> bool:
        """Admit immediately or decline without queueing (no-alloc fast
        path of :meth:`request`; ``now`` is accepted for interface
        uniformity with the rate enforcer)."""
        if self._pending:
            return False
        if size > self.capacity:
            raise ParameterError(
                f"message of {size}B exceeds window capacity {self.capacity}B"
            )
        if self.outstanding + size > self.capacity:
            return False
        self.outstanding += size
        return True

    def acknowledge(self, size: int) -> None:
        """Credit ``size`` delivered bytes back to the window."""
        self.outstanding = max(0, self.outstanding - size)
        self._drain()

    def _drain(self) -> None:
        obs = self.context.obs
        progressed = True
        while self._pending and progressed:
            entry = self._pending[0]
            size, send, trace_id, held = entry
            if self.outstanding + size <= self.capacity:
                self._pending.popleft()
                self.outstanding += size
                if held and obs.enabled:
                    obs.spans.event(trace_id, "fc", "release", mechanism="window")
                send()
            else:
                if not held:
                    entry[3] = True
                    self.sends_delayed += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "fc_sends_delayed", mechanism="window"
                        ).inc()
                        obs.spans.event(
                            trace_id, "fc", "hold",
                            mechanism="window", size=size,
                        )
                progressed = False

    @property
    def queued(self) -> int:
        return len(self._pending)


class ReceiverCredit:
    """Receiver flow control: a credit window over the receive buffer.

    The receiver grants ``buffer_bytes`` of credit; the sender consumes
    credit per message and stalls at zero; the receiving protocol
    returns credit as the receiver consumes data ("the protocol must
    stop sending data when the limit of the receive buffer is reached").
    Credit updates ride whatever ack path the enclosing protocol uses.
    """

    def __init__(
        self, buffer_bytes: int, context: Optional[SimContext] = None
    ) -> None:
        if buffer_bytes <= 0:
            raise ParameterError(f"receive buffer must be > 0: {buffer_bytes}")
        self.buffer_bytes = buffer_bytes
        self.available = buffer_bytes
        self.context = context  # optional: only needed for observability
        self._pending: Deque[list] = deque()  # [size, send, trace_id, held]
        self.stalls = 0

    def request(
        self,
        size: int,
        send: Callable[[], None],
        trace_id: Optional[int] = None,
    ) -> None:
        if size > self.buffer_bytes:
            raise ParameterError(
                f"message of {size}B exceeds receive buffer {self.buffer_bytes}B"
            )
        self._pending.append([size, send, trace_id, False])
        self._drain()

    def try_admit(self, size: int, now: Optional[float] = None) -> bool:
        """Consume credit immediately or decline without queueing (the
        no-alloc fast path of :meth:`request`)."""
        if self._pending:
            return False
        if size > self.buffer_bytes:
            raise ParameterError(
                f"message of {size}B exceeds receive buffer {self.buffer_bytes}B"
            )
        if size > self.available:
            return False
        self.available -= size
        return True

    def grant(self, size: int) -> None:
        """The receiver consumed ``size`` bytes; replenish credit."""
        self.available = min(self.buffer_bytes, self.available + size)
        self._drain()

    def _drain(self) -> None:
        obs = self.context.obs if self.context is not None else None
        while self._pending:
            entry = self._pending[0]
            size, send, trace_id, held = entry
            if size <= self.available:
                self._pending.popleft()
                self.available -= size
                if held and obs is not None and obs.enabled:
                    obs.spans.event(trace_id, "fc", "release", mechanism="credit")
                send()
            else:
                if not held:
                    entry[3] = True
                    self.stalls += 1
                    if obs is not None and obs.enabled:
                        obs.metrics.counter(
                            "fc_sends_delayed", mechanism="credit"
                        ).inc()
                        obs.spans.event(
                            trace_id, "fc", "hold",
                            mechanism="credit", size=size,
                        )
                return

    @property
    def queued(self) -> int:
        return len(self._pending)
