"""Stream protocols for bulk data transfer (paper sections 2.5, 3.3, 4.4).

A :class:`StreamSession` is a simplex transport session built from ST
RMSs, following the section-2.5 parameter recipes:

- the data path uses a *high capacity, high delay* ST RMS;
- acknowledgements use a *low capacity* reverse ST RMS -- low delay when
  it carries flow-control information, high delay when it only carries
  reliability acks;
- alternatively the ST *fast acknowledgement* service replaces the
  reverse RMS for fixed-size record streams (section 3.2, bench E13).

Reliability (sequence numbers, cumulative acks, retransmission),
RMS capacity enforcement (rate- or window-based), receiver flow control
(credits in acks), and sender flow control (a flow-controlled local IPC
port) are each independently optional, composing the Figure-5 options.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.message import Message
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import ParameterError, TransportError
from repro.sim.context import SimContext
from repro.sim.events import EventHandle, Signal
from repro.sim.ports import FlowControlledPort, Port
from repro.sim.process import Future
from repro.subtransport.st import SubtransportLayer
from repro.subtransport.strms import StRms
from repro.transport.flowcontrol import (
    FlowControlMode,
    RateBasedEnforcer,
    ReceiverCredit,
    WindowEnforcer,
)

__all__ = ["StreamConfig", "StreamStats", "StreamSession", "open_stream"]

_session_ids = itertools.count(1)

_DATA_HEADER = struct.Struct(">IB")  # seq, flags
_ACK_FORMAT = struct.Struct(">BII")  # kind, cumulative ack, credit grant

_FLAG_NONE = 0
_ACK_KIND = 1


@dataclass
class StreamConfig:
    """Behaviour of one stream session."""

    reliable: bool = True
    #: "rate", "ack", or None (no RMS capacity enforcement).
    capacity_mode: Optional[str] = "ack"
    flow_control: FlowControlMode = FlowControlMode.END_TO_END
    receive_buffer: int = 64 * 1024
    #: Sender-side IPC port depth in messages (sender flow control).
    sender_port_limit: int = 16
    #: Use the ST fast-ack service instead of a reverse ack RMS.  Only
    #: legal for fixed-size records (``record_size`` must be set).
    use_fast_ack: bool = False
    record_size: Optional[int] = None
    retransmit_timeout: float = 0.5
    max_retransmits: int = 10
    #: Send a cumulative ack every N in-order deliveries.
    ack_every: int = 2
    #: ST RMS capacity for the data path.
    data_capacity: int = 64 * 1024
    data_max_message: int = 8 * 1024
    #: Delay bound (seconds) for the data ST RMS; None = best-effort.
    data_delay_bound: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity_mode not in (None, "rate", "ack"):
            raise ParameterError(f"unknown capacity mode {self.capacity_mode!r}")
        if self.use_fast_ack and self.record_size is None:
            raise ParameterError("fast-ack streaming requires a fixed record_size")
        if self.ack_every < 1:
            raise ParameterError("ack_every must be >= 1")


@dataclass
class StreamStats:
    """Counters for one stream session."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_delivered: int = 0
    bytes_delivered: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    receiver_overflow_drops: int = 0
    duplicates_discarded: int = 0


class StreamSession:
    """One simplex transport stream between two hosts.

    Use :func:`open_stream` to construct; both endpoints of the session
    are methods of this object (the simulation is single-process), with
    sender-side state prefixed ``tx`` and receiver-side ``rx``.
    """

    def __init__(
        self,
        context: SimContext,
        config: StreamConfig,
        data_rms: StRms,
        ack_rms: Optional[StRms],
    ) -> None:
        self.context = context
        self.config = config
        self.data_rms = data_rms
        self.ack_rms = ack_rms
        self.stats = StreamStats()
        self.session_id = next(_session_ids)
        # -- sender state --
        self.tx_next_seq = 0
        self._in_protocol = 0
        self._pump_pending = False
        self.tx_unacked: Dict[int, bytes] = {}
        self.tx_sizes: Dict[int, int] = {}
        self.tx_cumulative_acked = -1
        self._retransmit_timer: Optional[EventHandle] = None
        self._retransmit_count = 0
        self.failed: Optional[str] = None
        #: Fired once, with (session, reason), when the stream fails.
        #: The resilience layer listens here to salvage and re-open.
        self.on_failed: Signal = Signal(context.loop)
        self.tx_port: Optional[FlowControlledPort] = None
        if config.flow_control.has_sender_fc:
            self.tx_port = FlowControlledPort(
                context.loop,
                limit=config.sender_port_limit,
                name=f"stream{self.session_id}.txport",
            )
        self._rate: Optional[RateBasedEnforcer] = None
        self._window: Optional[WindowEnforcer] = None
        if config.capacity_mode == "rate" and config.flow_control.enforces_capacity:
            self._rate = RateBasedEnforcer(context, data_rms.params)
        elif config.capacity_mode == "ack" and config.flow_control.enforces_capacity:
            self._window = WindowEnforcer(context, data_rms.params.capacity)
        self._credit: Optional[ReceiverCredit] = None
        if config.flow_control.has_receiver_fc:
            self._credit = ReceiverCredit(config.receive_buffer, context)
        # -- receiver state --
        self.rx_expected_seq = 0
        self.rx_buffer: Dict[int, bytes] = {}
        self.rx_port = Port(context.loop, name=f"stream{self.session_id}.rx")
        self.rx_buffered_bytes = 0
        self.rx_since_ack = 0
        self.rx_pending_grant = 0
        # Wire up delivery paths.
        data_rms.port.set_handler(self._data_arrived)
        data_rms.on_failure.listen(lambda rms, reason: self._fail(reason))
        if ack_rms is not None:
            ack_rms.port.set_handler(self._ack_arrived)
        if config.use_fast_ack:
            data_rms.on_fast_ack.listen(self._fast_ack_arrived)
            self._fast_acked = 0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def send(self, payload: bytes) -> Future:
        """Offer one message; the future resolves when the send protocol
        accepts it (immediately unless sender flow control pushes back)."""
        if self.failed:
            raise TransportError(f"stream failed: {self.failed}")
        if self.config.record_size is not None and len(payload) != self.config.record_size:
            raise ParameterError(
                f"record stream requires {self.config.record_size}B records, "
                f"got {len(payload)}B"
            )
        if self.tx_port is not None:
            accepted = self.tx_port.put(payload)
            self.context.loop.call_soon(self._pump_tx_port)
            return accepted
        future = Future(self.context.loop)
        future.set_result(None)
        self._admit(payload)
        return future

    #: How many admitted-but-untransmitted messages the send protocol
    #: holds before it stops reading its IPC port (section 4.4).
    _PROTOCOL_DEPTH = 4

    def _pump_tx_port(self) -> None:
        # The send protocol reads the IPC port only while it can make
        # progress ("the sending transport protocol stops reading
        # messages from the port while it is prevented from sending").
        if self.tx_port is None or self._pump_pending:
            return
        if self._in_protocol >= self._PROTOCOL_DEPTH:
            return
        if len(self.tx_port) == 0 and not self.tx_port._putters:
            return
        self._pump_pending = True
        taken = self.tx_port.take()

        def on_taken(future: Future) -> None:
            self._pump_pending = False
            self._admit(future.result())
            self._pump_tx_port()

        taken.add_done_callback(on_taken)

    def _admit(self, payload: bytes) -> None:
        seq = self.tx_next_seq
        self.tx_next_seq += 1
        self._in_protocol += 1
        if self.config.reliable:
            self.tx_unacked[seq] = payload
        self.tx_sizes[seq] = len(payload)
        # Allocate the message's trace before the flow-control gates so
        # fc:hold/fc:release time spent waiting lands on its span.
        obs = self.context.obs
        trace_id = obs.spans.new_trace() if obs.enabled else None
        self._gate_receiver(seq, payload, trace_id)

    def _gate_receiver(
        self, seq: int, payload: bytes, trace_id: Optional[int]
    ) -> None:
        credit = self._credit
        if credit is not None and not credit.try_admit(len(payload)):
            # Contested: fall back to the queueing path.  An uncontested
            # request would have emitted no fc events either, so the
            # fast path is observability-identical.
            credit.request(
                len(payload),
                lambda: self._gate_capacity(seq, payload, trace_id),
                trace_id=trace_id,
            )
            return
        self._gate_capacity(seq, payload, trace_id)

    def _gate_capacity(
        self, seq: int, payload: bytes, trace_id: Optional[int]
    ) -> None:
        size = len(payload) + _DATA_HEADER.size
        rate = self._rate
        if rate is not None:
            if rate.try_admit(size):
                self._transmit(seq, payload, trace_id)
            else:
                rate.request(
                    size, lambda: self._transmit(seq, payload, trace_id),
                    trace_id=trace_id,
                )
            return
        window = self._window
        if window is not None:
            if window.try_admit(size):
                self._transmit(seq, payload, trace_id)
            else:
                window.request(
                    size, lambda: self._transmit(seq, payload, trace_id),
                    trace_id=trace_id,
                )
            return
        self._transmit(seq, payload, trace_id)

    def _transmit(
        self, seq: int, payload: bytes, trace_id: Optional[int] = None
    ) -> None:
        self._in_protocol = max(0, self._in_protocol - 1)
        if self.failed:
            return
        frame = _DATA_HEADER.pack(seq, _FLAG_NONE) + payload
        if trace_id is not None:
            message = Message(
                frame, source=self.data_rms.sender, target=self.data_rms.receiver
            )
            message.trace_id = trace_id
            self.data_rms.send(message)
        else:
            self.data_rms.send(frame)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(payload)
        if self.config.reliable:
            self._arm_retransmit()
        self._pump_tx_port()

    # -- reliability ------------------------------------------------------

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None and not self._retransmit_timer.cancelled:
            return
        if not self.tx_unacked:
            return
        self._retransmit_timer = self.context.loop.call_after(
            self.config.retransmit_timeout, self._retransmit_fired
        )

    def _retransmit_fired(self) -> None:
        self._retransmit_timer = None
        if not self.tx_unacked or self.failed:
            return
        self._retransmit_count += 1
        if self._retransmit_count > self.config.max_retransmits:
            self._fail("retransmission limit exceeded")
            return
        oldest = min(self.tx_unacked)
        payload = self.tx_unacked[oldest]
        frame = _DATA_HEADER.pack(oldest, _FLAG_NONE) + payload
        size = len(frame)
        self.stats.retransmissions += 1

        def resend() -> None:
            if not self.failed and oldest in self.tx_unacked:
                self.data_rms.send(frame)

        if self._rate is not None:
            self._rate.request(size, resend)
        elif self._window is not None:
            # Window space for the original send is still held; the
            # retransmission reuses it rather than double-counting.
            resend()
        else:
            resend()
        self._arm_retransmit()

    def _fail(self, reason: str) -> None:
        if self.failed:
            return
        self.failed = reason
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        self.on_failed.fire(self, reason)

    def salvage_unsent(self) -> list:
        """Payloads not known to be delivered, in send order.

        Used when a failed session is replaced by a fresh one on a
        recovered path: unacknowledged in-flight messages first, then
        anything still queued in the sender-side IPC port.  Re-sending
        them is at-least-once -- an ack lost in the failure window means
        the receiver may see a duplicate.
        """
        salvaged = [self.tx_unacked[seq] for seq in sorted(self.tx_unacked)]
        if self.tx_port is not None:
            salvaged.extend(self.tx_port.drain())
            while self.tx_port._putters:
                payload, put_future = self.tx_port._putters.popleft()
                salvaged.append(payload)
                if not put_future.done:
                    put_future.set_result(None)
        return salvaged

    # -- acks arriving at the sender ----------------------------------------

    def _ack_arrived(self, message) -> None:
        if len(message.payload) < _ACK_FORMAT.size:
            return
        kind, cumulative, grant = _ACK_FORMAT.unpack_from(message.payload, 0)
        if kind != _ACK_KIND:
            return
        self._apply_ack(cumulative, grant)

    def _fast_ack_arrived(self, _count: int) -> None:
        # Fast acks carry only a delivery count; with fixed-size records
        # that is enough to open the capacity window and return credit.
        self._fast_acked += 1
        record = (self.config.record_size or 0) + _DATA_HEADER.size
        if self._window is not None:
            self._window.acknowledge(record)
        if self._credit is not None:
            self._credit.grant(record - _DATA_HEADER.size)
        seq = self._fast_acked - 1
        self.tx_unacked.pop(seq, None)
        if not self.tx_unacked and self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        self._retransmit_count = 0

    def _apply_ack(self, cumulative: int, grant: int) -> None:
        acked_bytes = 0
        for seq in list(self.tx_unacked):
            if seq <= cumulative:
                self.tx_unacked.pop(seq)
        for seq in list(self.tx_sizes):
            if seq <= cumulative:
                acked_bytes += self.tx_sizes.pop(seq) + _DATA_HEADER.size
        if cumulative > self.tx_cumulative_acked:
            self.tx_cumulative_acked = cumulative
            self._retransmit_count = 0
        if self._window is not None and acked_bytes:
            self._window.acknowledge(acked_bytes)
        if self._credit is not None and grant:
            self._credit.grant(grant)
        if not self.tx_unacked and self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        elif self.tx_unacked:
            self._arm_retransmit()

    @property
    def all_acked(self) -> bool:
        return not self.tx_unacked

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def _data_arrived(self, message) -> None:
        if len(message.payload) < _DATA_HEADER.size:
            return
        seq, _flags = _DATA_HEADER.unpack_from(message.payload, 0)
        payload = message.payload[_DATA_HEADER.size :]
        if seq < self.rx_expected_seq or seq in self.rx_buffer:
            self.stats.duplicates_discarded += 1
            self._maybe_send_ack(force=True)
            return
        if (
            self.rx_buffered_bytes + len(payload) > self.config.receive_buffer
            and not self.config.flow_control.has_receiver_fc
        ):
            # No receiver flow control and the buffer is full: overrun.
            self.stats.receiver_overflow_drops += 1
            return
        self.rx_buffer[seq] = payload
        self.rx_buffered_bytes += len(payload)
        self._deliver_in_order()

    def _deliver_in_order(self) -> None:
        while self.rx_expected_seq in self.rx_buffer:
            payload = self.rx_buffer.pop(self.rx_expected_seq)
            self.rx_expected_seq += 1
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += len(payload)
            self.rx_since_ack += 1
            self.rx_port.deliver(payload)
        self._maybe_send_ack()

    def receive(self) -> Future:
        """The receiving application takes the next message.

        Consuming returns credit to the sender when receiver flow
        control is on (the grant rides the next ack).
        """
        future = self.rx_port.get()
        future.add_done_callback(self._consumed)
        return future

    def _consumed(self, future: Future) -> None:
        self._mark_consumed(future.result())

    def _mark_consumed(self, payload: bytes) -> None:
        self.rx_buffered_bytes = max(0, self.rx_buffered_bytes - len(payload))
        if self.config.flow_control.has_receiver_fc:
            self.rx_pending_grant += len(payload)
            self._maybe_send_ack(force=True)

    def drain_to(self, callback) -> None:
        """Deliver every received message to ``callback`` as it arrives.

        Messages count as consumed immediately (credit returns to the
        sender), letting a supervising session relay delivery across
        re-established incarnations through one stable port.
        """

        def handler(payload: bytes) -> None:
            self._mark_consumed(payload)
            callback(payload)

        self.rx_port.set_handler(handler)

    def _maybe_send_ack(self, force: bool = False) -> None:
        if self.ack_rms is None:
            return
        if not force and self.rx_since_ack < self.config.ack_every:
            return
        if self.rx_since_ack == 0 and self.rx_pending_grant == 0 and not force:
            return
        self.rx_since_ack = 0
        grant, self.rx_pending_grant = self.rx_pending_grant, 0
        ack = _ACK_FORMAT.pack(_ACK_KIND, self.rx_expected_seq - 1, grant)
        self.ack_rms.send(ack)
        self.stats.acks_sent += 1

    # ------------------------------------------------------------------

    def goodput(self, elapsed: float) -> float:
        """Delivered application bytes per second over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.stats.bytes_delivered / elapsed

    def close(self) -> None:
        """Tear down both ST RMSs."""
        self.data_rms.close()
        if self.ack_rms is not None:
            self.ack_rms.close()

    def __repr__(self) -> str:
        return (
            f"<StreamSession #{self.session_id} sent={self.stats.messages_sent} "
            f"delivered={self.stats.messages_delivered}>"
        )


def open_stream(
    context: SimContext,
    sender_st: SubtransportLayer,
    receiver_st: SubtransportLayer,
    config: Optional[StreamConfig] = None,
) -> Future:
    """Open a stream session; resolves to a :class:`StreamSession`.

    Creates the data ST RMS (sender to receiver) and, unless fast acks
    replace it, the reverse ack ST RMS per the section-2.5 recipes.
    """
    config = config or StreamConfig()
    result = Future(context.loop)
    session_tag = next(_session_ids)

    def flow():
        if config.data_delay_bound is not None:
            bound = DelayBound(config.data_delay_bound, 2e-6)
            bound_loose = DelayBound(config.data_delay_bound * 2, 1e-5)
        else:
            bound = DelayBound.unbounded()
            bound_loose = DelayBound.unbounded()
        data_desired = RmsParams(
            capacity=config.data_capacity,
            max_message_size=config.data_max_message,
            delay_bound=bound,
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )
        data_acceptable = data_desired.with_(delay_bound=bound_loose)
        data_rms = yield sender_st.create_st_rms(
            receiver_st.host.name,
            port=f"stream-data-{session_tag}",
            desired=data_desired,
            acceptable=data_acceptable,
            fast_ack=config.use_fast_ack,
        )
        ack_rms = None
        needs_acks = (
            config.reliable
            or config.capacity_mode == "ack"
            or config.flow_control.has_receiver_fc
        )
        if needs_acks and not config.use_fast_ack:
            # Low delay when the acks gate flow; high delay when they
            # only confirm reliability (section 2.5).
            gating = (
                config.capacity_mode == "ack"
                or config.flow_control.has_receiver_fc
            )
            ack_delay = 0.05 if gating else 1.0
            ack_desired = RmsParams(
                capacity=2048,
                max_message_size=256,
                delay_bound=DelayBound(ack_delay, 1e-6),
                delay_bound_type=DelayBoundType.BEST_EFFORT,
            )
            ack_acceptable = ack_desired.with_(
                delay_bound=DelayBound(ack_delay * 4, 1e-5)
            )
            ack_rms = yield receiver_st.create_st_rms(
                sender_st.host.name,
                port=f"stream-ack-{session_tag}",
                desired=ack_desired,
                acceptable=ack_acceptable,
            )
        return StreamSession(context, config, data_rms, ack_rms)

    process = context.spawn(flow(), name=f"open-stream-{session_tag}")

    def done(future: Future) -> None:
        if future.failed:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001
                result.set_exception(error)
        else:
            result.set_result(future.result())

    process.finished.add_done_callback(done)
    return result
