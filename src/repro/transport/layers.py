"""Upper RMS levels: sub-user and user RMSs (paper section 3.4, Figure 3).

"*Sub-user RMS*: this spans communication protocol processes.  Message
sending and delivery are defined as the moments when messages arrive
from, or are passed to, user processes.  The delay bounds include
protocol processing time, and their enforcement includes deadline-based
process scheduling."

"*User-level RMS*: this spans user processes ... end-process CPU time is
included in the RMS delay.  Scheduling of these user processes must be
deadline-based."

:class:`LayeredRms` wraps a lower-level RMS and adds a CPU processing
stage on each side, with the stage deadlines derived from the level's
delay bound as section 4.1 prescribes ("when an upper-level RMS is
created, its total delay is divided among its various stages").
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.message import Message
from repro.core.params import DelayBound, RmsParams
from repro.core.rms import Rms, RmsLevel, RmsState
from repro.errors import ParameterError
from repro.netsim.topology import Host
from repro.sim.context import SimContext

__all__ = ["LayeredRms", "SubUserRms", "UserRms"]

_TS = struct.Struct(">d")


class LayeredRms(Rms):
    """An RMS adding per-side CPU stages on top of a lower RMS.

    ``send_cpu_per_byte``/``recv_cpu_per_byte`` (plus fixed costs from
    the host CPU cost model) model the protocol or user processing the
    level accounts for.  The wrapped RMS keeps its own delay bound; this
    level's bound is the wrapped bound plus the two stage allowances.
    """

    level = RmsLevel.SUBUSER

    def __init__(
        self,
        context: SimContext,
        inner: Rms,
        send_host: Host,
        recv_host: Host,
        stage_allowance: float = 5e-3,
        send_cpu_per_byte: float = 20e-9,
        recv_cpu_per_byte: float = 20e-9,
        name: Optional[str] = None,
    ) -> None:
        if stage_allowance <= 0:
            raise ParameterError("stage allowance must be > 0")
        inner_bound = inner.params.delay_bound
        if inner_bound.is_unbounded:
            bound = DelayBound.unbounded()
        else:
            bound = DelayBound(inner_bound.a + 2 * stage_allowance, inner_bound.b)
        params = inner.params.with_(delay_bound=bound)
        super().__init__(
            context,
            params,
            inner.sender,
            inner.receiver,
            name=name or f"{inner.name}+{self.level.name.lower()}",
        )
        self.inner = inner
        self.send_host = send_host
        self.recv_host = recv_host
        self.stage_allowance = stage_allowance
        self.send_cpu_per_byte = send_cpu_per_byte
        self.recv_cpu_per_byte = recv_cpu_per_byte
        inner.port.set_handler(self._inner_delivered)
        inner.on_failure.listen(lambda rms, reason: self.fail(reason))

    def _stage_cost(self, size: int, per_byte: float) -> float:
        return per_byte * size

    def _transmit(self, message: Message) -> None:
        deadline = self.context.now + self.stage_allowance
        cpu_time = (
            self.send_host.cpu.costs.per_message
            + self._stage_cost(message.size, self.send_cpu_per_byte)
        )
        self.send_host.cpu.submit(
            f"{self.level.name.lower()}/send:{self.rms_id}",
            cpu_time,
            deadline,
            lambda: self._forward(message),
        )

    def _forward(self, message: Message) -> None:
        if self.state is not RmsState.OPEN or not self.inner.is_open:
            self._drop(message, "lower RMS unavailable")
            return
        # Carry this level's send timestamp through the lower levels so
        # the measured delay includes the send-side CPU stage: an 8-byte
        # timestamp prefix, stripped again in _finish.
        stamped = _TS.pack(message.send_time or self.context.now) + message.payload
        self.inner.send(stamped)

    def _inner_delivered(self, inner_message: Message) -> None:
        size = inner_message.size
        deadline = self.context.now + self.stage_allowance
        cpu_time = (
            self.recv_host.cpu.costs.per_message
            + self._stage_cost(size, self.recv_cpu_per_byte)
        )
        self.recv_host.cpu.submit(
            f"{self.level.name.lower()}/recv:{self.rms_id}",
            cpu_time,
            deadline,
            lambda: self._finish(inner_message),
        )

    def _finish(self, inner_message: Message) -> None:
        if self.state is not RmsState.OPEN:
            return
        payload = inner_message.payload
        if len(payload) < _TS.size:
            self._drop(inner_message, "mangled level header")
            return
        (send_time,) = _TS.unpack_from(payload, 0)
        message = Message(
            payload[_TS.size :], source=self.sender, target=self.receiver
        )
        message.send_time = send_time
        self._deliver(message)

    def delete(self) -> None:
        super().delete()
        self.inner.delete()


class SubUserRms(LayeredRms):
    """Figure-3 sub-user RMS: adds protocol-process stages."""

    level = RmsLevel.SUBUSER


class UserRms(LayeredRms):
    """Figure-3 user-level RMS: adds user-process stages on a sub-user RMS."""

    level = RmsLevel.USER
