"""Network window-system workload (paper section 2.5).

"Communication involving a human user interface ... can tolerate a
moderate amount of delay because of human perceptual limitations.  The
RMS from user to application carries mouse and keyboard events, and can
have low capacity.  The RMS in the opposite direction carries graphic
information, and generally requires higher capacity."

The workload models an interactive session: input events arrive as a
Poisson process on the low-capacity upstream RMS; each event triggers a
burst of graphics traffic downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.core.rms import Rms, RmsState
from repro.metrics.collectors import DelayRecorder
from repro.metrics.stats import SummaryStats
from repro.sim.context import SimContext

__all__ = ["WindowSystemWorkload", "WindowReport", "event_rms_params", "graphics_rms_params"]

#: Human perceptual budget for echo/update latency.
PERCEPTION_DEADLINE = 0.1


def event_rms_params() -> RmsParams:
    """Low-capacity upstream RMS for input events."""
    return RmsParams(
        capacity=2048,
        max_message_size=64,
        delay_bound=DelayBound(PERCEPTION_DEADLINE / 2, 1e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


def graphics_rms_params() -> RmsParams:
    """Higher-capacity downstream RMS for graphics updates."""
    return RmsParams(
        capacity=64 * 1024,
        max_message_size=8 * 1024,
        delay_bound=DelayBound(PERCEPTION_DEADLINE, 2e-6),
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )


@dataclass
class WindowReport:
    """Interactive-quality metrics."""

    events_sent: int
    events_delivered: int
    updates_sent: int
    updates_delivered: int
    event_delay: SummaryStats
    update_delay: SummaryStats
    round_trips_over_budget: int


class WindowSystemWorkload:
    """An interactive session between a user host and an app host.

    ``event_rms`` carries user->application events (16-48 B); for each
    event the application responds with a graphics update (1-8 KB) on
    ``graphics_rms``.
    """

    EVENT_RATE = 30.0  # events per second (dragging, typing)

    def __init__(
        self,
        context: SimContext,
        event_rms: Rms,
        graphics_rms: Rms,
        duration: float,
        rng_name: str = "window",
    ) -> None:
        self.context = context
        self.event_rms = event_rms
        self.graphics_rms = graphics_rms
        self.duration = duration
        self._rng = context.rng.stream(rng_name)
        self.event_delay = DelayRecorder()
        self.update_delay = DelayRecorder()
        self.events_sent = 0
        self.events_delivered = 0
        self.updates_sent = 0
        self.updates_delivered = 0
        self.over_budget = 0
        self._event_send_times = {}
        event_rms.port.set_handler(self._event_arrived)
        graphics_rms.port.set_handler(self._update_arrived)
        self.process = context.spawn(self._user(), name="window-user")

    def _user(self):
        deadline = self.context.now + self.duration
        index = 0
        while self.context.now < deadline:
            yield self._rng.expovariate(self.EVENT_RATE)
            if self.event_rms.state is not RmsState.OPEN:
                return
            size = self._rng.choice((16, 24, 32, 48))
            payload = index.to_bytes(4, "big") + bytes(size - 4)
            self._event_send_times[index] = self.context.now
            self.event_rms.send(payload)
            self.events_sent += 1
            index += 1

    def _event_arrived(self, message) -> None:
        self.events_delivered += 1
        self.event_delay.record_message(message)
        event_index = int.from_bytes(message.payload[:4], "big")
        # The application responds with a graphics update.
        size = max(256, int(self._rng.gauss(3000, 1200)))
        size = min(size, self.graphics_rms.params.max_message_size)
        payload = event_index.to_bytes(4, "big") + bytes(size - 4)
        if self.graphics_rms.state is RmsState.OPEN:
            self.graphics_rms.send(payload)
            self.updates_sent += 1

    def _update_arrived(self, message) -> None:
        self.updates_delivered += 1
        self.update_delay.record_message(message)
        event_index = int.from_bytes(message.payload[:4], "big")
        start = self._event_send_times.pop(event_index, None)
        if start is not None:
            if self.context.now - start > PERCEPTION_DEADLINE:
                self.over_budget += 1

    def report(self) -> WindowReport:
        return WindowReport(
            events_sent=self.events_sent,
            events_delivered=self.events_delivered,
            updates_sent=self.updates_sent,
            updates_delivered=self.updates_delivered,
            event_delay=self.event_delay.summary(),
            update_delay=self.update_delay.summary(),
            round_trips_over_budget=self.over_budget,
        )
