"""Generic traffic sources used by the application workloads."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.rms import Rms, RmsState
from repro.errors import RmsFailedError
from repro.sim.context import SimContext

__all__ = ["PeriodicSource", "PoissonSource"]


class PeriodicSource:
    """Sends fixed-size messages at a fixed period on an RMS.

    ``payload_fn(index)`` builds each payload; default is a constant
    filler of ``size`` bytes.  Stops after ``count`` messages or when
    stopped explicitly; silently ends if the RMS fails (clients observe
    failure via the RMS's own notification).
    """

    def __init__(
        self,
        context: SimContext,
        rms: Rms,
        period: float,
        size: int,
        count: Optional[int] = None,
        payload_fn: Optional[Callable[[int], bytes]] = None,
        jitter_fraction: float = 0.0,
        rng_name: str = "periodic-source",
    ) -> None:
        self.context = context
        self.rms = rms
        self.period = period
        self.size = size
        self.count = count
        self.payload_fn = payload_fn or (lambda index: bytes([index % 256]) * size)
        self.jitter_fraction = jitter_fraction
        self.sent = 0
        self._rng = context.rng.stream(rng_name)
        self._stopped = False
        self.process = context.spawn(self._run(), name=f"source:{rms.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        index = 0
        while not self._stopped:
            if self.count is not None and index >= self.count:
                return self.sent
            if self.rms.state is not RmsState.OPEN:
                return self.sent
            try:
                self.rms.send(self.payload_fn(index))
            except RmsFailedError:
                return self.sent
            self.sent += 1
            index += 1
            delay = self.period
            if self.jitter_fraction > 0.0:
                swing = self.period * self.jitter_fraction
                delay += self._rng.uniform(-swing, swing)
            yield max(delay, 0.0)
        return self.sent


class PoissonSource:
    """Sends messages with exponential interarrivals (bursty traffic)."""

    def __init__(
        self,
        context: SimContext,
        rms: Rms,
        rate: float,  # messages per second
        size_fn: Callable[[], int],
        count: Optional[int] = None,
        rng_name: str = "poisson-source",
    ) -> None:
        self.context = context
        self.rms = rms
        self.rate = rate
        self.size_fn = size_fn
        self.count = count
        self.sent = 0
        self._rng = context.rng.stream(rng_name)
        self._stopped = False
        self.process = context.spawn(self._run(), name=f"poisson:{rms.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        index = 0
        while not self._stopped:
            if self.count is not None and index >= self.count:
                return self.sent
            yield self._rng.expovariate(self.rate)
            if self.rms.state is not RmsState.OPEN:
                return self.sent
            size = max(1, int(self.size_fn()))
            try:
                self.rms.send(bytes([index % 256]) * size)
            except RmsFailedError:
                return self.sent
            self.sent += 1
            index += 1
        return self.sent
