"""Request/reply workload: closed-loop RPC clients.

Drives any request/reply service exposing ``call(peer, op, payload) ->
Future`` (both :class:`repro.transport.rkom.RkomService` and the
datagram-RPC baseline qualify), measuring round-trip latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.metrics.stats import SummaryStats, summarize
from repro.sim.context import SimContext

__all__ = ["RpcWorkload", "RpcReport"]


@dataclass
class RpcReport:
    """Latency summary of one RPC workload run."""

    calls_attempted: int
    calls_completed: int
    calls_failed: int
    rtt: SummaryStats


class RpcWorkload:
    """``clients`` closed-loop callers, each issuing ``calls_per_client``
    requests with exponential think time between them."""

    def __init__(
        self,
        context: SimContext,
        service,
        peer_host: str,
        op: str = "echo",
        clients: int = 1,
        calls_per_client: int = 20,
        request_bytes: int = 64,
        think_time: float = 0.01,
        rng_name: str = "rpc-load",
    ) -> None:
        self.context = context
        self.service = service
        self.peer_host = peer_host
        self.op = op
        self.request_bytes = request_bytes
        self.think_time = think_time
        self.rtts: List[float] = []
        self.failed = 0
        self.attempted = 0
        self._rng = context.rng.stream(rng_name)
        self.processes = [
            context.spawn(
                self._client(index, calls_per_client), name=f"rpc-client-{index}"
            )
            for index in range(clients)
        ]

    def _client(self, index: int, calls: int):
        payload = bytes([index % 256]) * self.request_bytes
        for _ in range(calls):
            if self.think_time > 0:
                yield self._rng.expovariate(1.0 / self.think_time)
            start = self.context.now
            self.attempted += 1
            try:
                yield self.service.call(self.peer_host, self.op, payload)
            except Exception:  # noqa: BLE001 - timeouts count as failures
                self.failed += 1
                continue
            self.rtts.append(self.context.now - start)
        return len(self.rtts)

    @property
    def done(self) -> bool:
        return all(process.done for process in self.processes)

    def report(self) -> RpcReport:
        return RpcReport(
            calls_attempted=self.attempted,
            calls_completed=len(self.rtts),
            calls_failed=self.failed,
            rtt=summarize(self.rtts),
        )
