"""Bulk data transfer workload (paper section 2.5).

"A stream protocol for bulk data transfer should use a high capacity,
high delay RMS for data."  Drives a :class:`StreamSession` as fast as
its flow-control gates allow and reports goodput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.context import SimContext
from repro.transport.stream import StreamSession

__all__ = ["BulkTransfer", "BulkReport"]


@dataclass
class BulkReport:
    """Outcome of one bulk transfer."""

    offered_messages: int
    delivered_messages: int
    consumed_messages: int
    bytes_delivered: int
    elapsed: float
    retransmissions: int
    receiver_drops: int

    @property
    def goodput(self) -> float:
        return self.bytes_delivered / self.elapsed if self.elapsed > 0 else 0.0


class BulkTransfer:
    """Pushes ``total_messages`` of ``message_size`` through a stream.

    The consumer drains the receive side at ``consume_rate`` messages
    per second (None = as fast as they arrive), which is the knob the
    flow-control experiments turn.
    """

    def __init__(
        self,
        context: SimContext,
        session: StreamSession,
        total_messages: int,
        message_size: int = 1024,
        consume_rate: float = None,
    ) -> None:
        self.context = context
        self.session = session
        self.total_messages = total_messages
        self.message_size = message_size
        self.consume_rate = consume_rate
        self.consumed = 0
        self.started_at = context.now
        self.finished_at = None
        self.producer = context.spawn(self._produce(), name="bulk-producer")
        self.consumer = context.spawn(self._consume(), name="bulk-consumer")

    def _produce(self):
        for index in range(self.total_messages):
            if self.session.failed:
                return index
            payload = bytes([index % 256]) * self.message_size
            accepted = self.session.send(payload)
            if not accepted.done:
                yield accepted  # sender flow control pushed back
        return self.total_messages

    def _consume(self):
        while self.consumed < self.total_messages:
            if self.session.failed:
                break
            message = yield self.session.receive()
            self.consumed += 1
            if self.consume_rate is not None:
                yield 1.0 / self.consume_rate
        self.finished_at = self.context.now
        return self.consumed

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def report(self) -> BulkReport:
        end = self.finished_at if self.finished_at is not None else self.context.now
        return BulkReport(
            offered_messages=self.total_messages,
            delivered_messages=self.session.stats.messages_delivered,
            consumed_messages=self.consumed,
            bytes_delivered=self.session.stats.bytes_delivered,
            elapsed=end - self.started_at,
            retransmissions=self.session.stats.retransmissions,
            receiver_drops=self.session.stats.receiver_overflow_drops,
        )
