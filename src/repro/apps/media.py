"""Digitized voice and video workloads (paper sections 1 and 2.5).

"Digitized voice should use a high capacity, low delay RMS, perhaps
with a statistical delay bound.  A high bit error rate may be
acceptable."  Voice here is 64 kbit/s telephony PCM in 20 ms packets;
video is a 30 fps frame stream with size variation, exercising
fragmentation.  Both report the playout metrics that matter to media:
delay percentiles, jitter, late/lost fractions against a playout
deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.params import RmsParams
from repro.core.rms import Rms
from repro.metrics.collectors import DelayRecorder
from repro.metrics.stats import SummaryStats
from repro.sim.context import SimContext
from repro.apps.sources import PeriodicSource

__all__ = ["MediaReport", "VoiceCall", "VideoStream", "voice_rms_params"]


@dataclass
class MediaReport:
    """Playout quality of one media flow."""

    sent: int
    delivered: int
    late: int
    lost: int
    delay: SummaryStats
    jitter: float

    @property
    def usable_fraction(self) -> float:
        """Packets that arrived in time for playout."""
        if self.sent == 0:
            return 1.0
        return (self.delivered - self.late) / self.sent


def voice_rms_params(
    playout_deadline: float = 0.08, delay_probability: float = 0.98
) -> RmsParams:
    """Section-2.5 voice parameters: 64 kbit/s PCM, statistical bound."""
    return RmsParams.for_voice(
        delay=playout_deadline,
        delay_probability=delay_probability,
        average_load=8000.0,
    )


class _MediaFlow:
    """Shared machinery: a source plus playout-deadline accounting."""

    def __init__(
        self,
        context: SimContext,
        rms: Rms,
        playout_deadline: float,
    ) -> None:
        self.context = context
        self.rms = rms
        self.playout_deadline = playout_deadline
        self.recorder = DelayRecorder()
        self.delivered = 0
        self.late = 0
        rms.port.set_handler(self._arrived)
        self.source: Optional[PeriodicSource] = None

    def _arrived(self, message) -> None:
        self.delivered += 1
        delay = message.delay
        if delay is not None:
            self.recorder.record(delay)
            if delay > self.playout_deadline:
                self.late += 1

    def report(self) -> MediaReport:
        sent = self.source.sent if self.source else 0
        return MediaReport(
            sent=sent,
            delivered=self.delivered,
            late=self.late,
            lost=max(0, sent - self.delivered),
            delay=self.recorder.summary(),
            jitter=self.recorder.jitter(),
        )


class VoiceCall(_MediaFlow):
    """One direction of a telephony call: 160 B every 20 ms."""

    PACKET_BYTES = 160
    PACKET_PERIOD = 0.020

    def __init__(
        self,
        context: SimContext,
        rms: Rms,
        duration: float,
        playout_deadline: float = 0.08,
        rng_name: str = "voice",
    ) -> None:
        super().__init__(context, rms, playout_deadline)
        count = int(duration / self.PACKET_PERIOD)
        self.source = PeriodicSource(
            context,
            rms,
            period=self.PACKET_PERIOD,
            size=self.PACKET_BYTES,
            count=count,
            jitter_fraction=0.05,
            rng_name=rng_name,
        )


class VideoStream(_MediaFlow):
    """A 30 fps video stream with frame-size variation.

    Frames exceed typical network MTUs, so this workload exercises ST
    fragmentation on every frame.
    """

    FRAME_PERIOD = 1.0 / 30.0

    def __init__(
        self,
        context: SimContext,
        rms: Rms,
        duration: float,
        mean_frame_bytes: int = 6000,
        playout_deadline: float = 0.15,
        rng_name: str = "video",
    ) -> None:
        super().__init__(context, rms, playout_deadline)
        rng = context.rng.stream(rng_name)
        count = int(duration / self.FRAME_PERIOD)

        def frame(index: int) -> bytes:
            # I-frames every 10th frame are ~2x; others vary +-30%.
            scale = 2.0 if index % 10 == 0 else rng.uniform(0.7, 1.3)
            size = max(256, int(mean_frame_bytes * scale))
            size = min(size, self.rms.params.max_message_size)
            return bytes([index % 256]) * size

        self.source = PeriodicSource(
            context,
            rms,
            period=self.FRAME_PERIOD,
            size=mean_frame_bytes,
            count=count,
            payload_fn=frame,
            rng_name=rng_name,
        )
