"""Application workloads: voice, video, window system, bulk, RPC."""

from repro.apps.bulk import BulkReport, BulkTransfer
from repro.apps.media import (
    MediaReport,
    VideoStream,
    VoiceCall,
    voice_rms_params,
)
from repro.apps.rpcload import RpcReport, RpcWorkload
from repro.apps.sources import PeriodicSource, PoissonSource
from repro.apps.window import (
    WindowReport,
    WindowSystemWorkload,
    event_rms_params,
    graphics_rms_params,
)

__all__ = [
    "BulkReport",
    "BulkTransfer",
    "MediaReport",
    "PeriodicSource",
    "PoissonSource",
    "RpcReport",
    "RpcWorkload",
    "VideoStream",
    "VoiceCall",
    "WindowReport",
    "WindowSystemWorkload",
    "event_rms_params",
    "graphics_rms_params",
    "voice_rms_params",
]
