"""The metrics registry: labeled counters, gauges, and histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.sim.context.SimContext`
(behind the :class:`~repro.obs.Observability` facade).  Layers register
*families* -- a metric name plus a fixed set of label names -- and obtain
per-label-set instruments from them, e.g.::

    sent = registry.counter("rms_messages_sent", layer="st", rms="st:a->b")
    sent.inc()

Instrument updates are plain attribute arithmetic so the enabled path
stays cheap; the disabled path uses the stateless null instruments of
:class:`NullRegistry`, reached through a single ``obs.enabled`` check at
each instrumentation site.

Histograms use fixed buckets (cumulative-style, like Prometheus) so
latency distributions can be exported without retaining every sample.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Log-spaced latency buckets (seconds), 100 us .. 10 s; +inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram with sum and count.

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    overflow bucket past the last bound is implicit.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds):
            raise ParameterError(f"histogram bounds must be sorted: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Approximate quantile by linear interpolation within a bucket."""
        if not 0.0 <= fraction <= 1.0:
            raise ParameterError(f"fraction must be in [0, 1]: {fraction}")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else math.inf
            )
            if cumulative + bucket_count >= target:
                if bucket_count == 0 or math.isinf(upper):
                    return lower if not math.isinf(upper) else self.bounds[-1]
                weight = (target - cumulative) / bucket_count
                return lower + weight * (upper - lower)
            cumulative += bucket_count
            lower = upper
        return self.bounds[-1]


class MetricFamily:
    """All instruments sharing one metric name, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> None:
        self.name = name
        self.kind = kind
        self.label_names = label_names
        self.buckets = buckets
        self.help = help
        self.instruments: Dict[Tuple[Any, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        names = tuple(sorted(labels))
        if names != self.label_names:
            raise ParameterError(
                f"metric {self.name!r} has labels {self.label_names}, "
                f"got {names}"
            )
        key = tuple(labels[name] for name in self.label_names)
        instrument = self.instruments.get(key)
        if instrument is None:
            if self.kind == "counter":
                instrument = Counter()
            elif self.kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(self.buckets)
            self.instruments[key] = instrument
        return instrument

    def series(self) -> Iterable[Tuple[Dict[str, Any], Any]]:
        for key, instrument in self.instruments.items():
            yield dict(zip(self.label_names, key)), instrument


class MetricsRegistry:
    """Families of labeled instruments, addressable by name."""

    enabled = True

    def __init__(self) -> None:
        self.families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        name: str,
        kind: str,
        labels: Dict[str, Any],
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, tuple(sorted(labels)), buckets=buckets, help=help
            )
            self.families[name] = family
        elif family.kind != kind:
            raise ParameterError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._family(name, "counter", labels, help=help).labels(**labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._family(name, "gauge", labels, help=help).labels(**labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        return self._family(
            name, "histogram", labels, buckets=buckets, help=help
        ).labels(**labels)

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The existing instrument for a name/label set, else ``None``."""
        family = self.families.get(name)
        if family is None:
            return None
        key = tuple(labels[n] for n in family.label_names if n in labels)
        if len(key) != len(family.label_names):
            return None
        return family.instruments.get(key)

    def clear(self) -> None:
        self.families.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every family and series."""
        out: Dict[str, Any] = {}
        for name, family in sorted(self.families.items()):
            entries: List[Dict[str, Any]] = []
            for labels, instrument in family.series():
                entry: Dict[str, Any] = {"labels": labels}
                if family.kind == "histogram":
                    entry["count"] = instrument.count
                    entry["sum"] = instrument.sum
                    entry["mean"] = instrument.mean
                    entry["p50"] = instrument.quantile(0.50)
                    entry["p99"] = instrument.quantile(0.99)
                    entry["buckets"] = {
                        "le": list(instrument.bounds),
                        "counts": list(instrument.bucket_counts),
                    }
                else:
                    entry["value"] = instrument.value
                entries.append(entry)
            out[name] = {"kind": family.kind, "series": entries}
        return out


class NullCounter:
    """A stateless counter that ignores updates."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None


class NullGauge:
    """A stateless gauge that ignores updates."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None


class NullHistogram:
    """A stateless histogram that ignores observations."""

    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    sum = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        return None

    def quantile(self, fraction: float) -> float:
        return 0.0

    @property
    def bucket_counts(self) -> List[int]:
        return []


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """The disabled-path registry: every lookup is a shared no-op.

    Deliberately stateless (no per-instance mutable attributes) so two
    NullRegistries can never alias observable state.
    """

    enabled = False

    @property
    def families(self) -> Dict[str, MetricFamily]:
        return {}

    def counter(self, name: str, help: str = "", **labels: Any) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: Any) -> NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        **labels: Any,
    ) -> NullHistogram:
        return _NULL_HISTOGRAM

    def get(self, name: str, **labels: Any) -> None:
        return None

    def clear(self) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}
