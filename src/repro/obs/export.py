"""Exporters: JSON metrics snapshots, JSONL span dumps, flight recorder.

Three machine/operator surfaces over one :class:`~repro.obs.Observability`:

- :func:`write_metrics_json` -- one JSON document with the registry
  snapshot (plus optional bench tables and metadata); this is what every
  benchmark writes next to its ``.txt`` table as ``*.metrics.json``.
- :func:`write_spans_jsonl` -- one span event per line, for external
  trace tooling.
- :func:`flight_recorder` -- a plain-text report of the top-N slowest
  messages with their per-layer delay breakdowns and deadline-miss
  attribution; the operator's first stop when a latency budget leaks.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "metrics_payload",
    "write_metrics_json",
    "span_lines",
    "write_spans_jsonl",
    "flight_recorder",
]

SCHEMA_VERSION = 1


def metrics_payload(
    obs: Optional[Any] = None,
    experiment: Optional[str] = None,
    tables: Optional[Iterable[Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``*.metrics.json`` document."""
    payload: Dict[str, Any] = {"schema": SCHEMA_VERSION}
    if experiment is not None:
        payload["experiment"] = experiment
    if tables is not None:
        payload["tables"] = [_table_payload(table) for table in tables]
    if obs is not None and obs.enabled:
        payload["metrics"] = obs.metrics.snapshot()
        payload["spans"] = {
            "traces": sum(1 for _ in obs.spans.traces()),
            "events": len(obs.spans),
            "dropped": obs.spans.dropped,
        }
    if extra:
        payload["extra"] = extra
    return payload


def _table_payload(table: Any) -> Dict[str, Any]:
    if hasattr(table, "to_payload"):
        return table.to_payload()
    return {"text": str(table)}


def write_metrics_json(path: str, **kwargs: Any) -> Dict[str, Any]:
    """Write :func:`metrics_payload` to ``path``; returns the payload."""
    payload = metrics_payload(**kwargs)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return payload


def span_lines(tracer: Any) -> Iterator[str]:
    """Each span event as one JSON line (JSONL)."""
    for trace_id in tracer.traces():
        for event in tracer.events_for(trace_id):
            yield json.dumps(
                {
                    "trace": event.trace_id,
                    "t": event.time,
                    "layer": event.layer,
                    "event": event.event,
                    **event.fields,
                },
                sort_keys=True,
                default=str,
            )


def write_spans_jsonl(path: str, tracer: Any) -> int:
    """Dump every span event to ``path``; returns the line count."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    count = 0
    with open(path, "w") as handle:
        for line in span_lines(tracer):
            handle.write(line + "\n")
            count += 1
    return count


def flight_recorder(obs: Any, top_n: int = 10) -> str:
    """The operator report: slowest messages, layer by layer."""
    # Imported here: repro.metrics pulls in core.rms, which needs
    # sim.context -> repro.obs; a module-level import would be circular.
    from repro.metrics.report import format_table

    spans = obs.spans
    lines: List[str] = ["== flight recorder =="]
    lines.append(
        f"traces={sum(1 for _ in spans.traces())} events={len(spans)} "
        f"dropped={spans.dropped}"
    )
    slowest = spans.slowest(top_n)
    if not slowest:
        lines.append("(no delivered traces recorded)")
        return "\n".join(lines)

    layers: List[str] = []
    for breakdown in slowest:
        for layer in breakdown.by_layer():
            if layer not in layers:
                layers.append(layer)
    headers = ["trace", "total (ms)", "status", "dominant"] + [
        f"{layer} (ms)" for layer in layers
    ]
    rows = []
    for breakdown in slowest:
        by_layer = breakdown.by_layer()
        status = "late" if breakdown.late else (
            "dropped" if breakdown.dropped else "ok"
        )
        rows.append(
            [
                breakdown.trace_id,
                breakdown.total * 1e3,
                status,
                breakdown.dominant_layer() or "-",
            ]
            + [by_layer.get(layer, 0.0) * 1e3 for layer in layers]
        )
    lines.append(
        format_table(headers, rows, title=f"top {len(slowest)} slowest messages")
    )

    late = [b for b in spans.slowest(n=len(list(spans.traces()))) if b.late]
    if late:
        attribution: Dict[str, int] = {}
        for breakdown in late:
            layer = breakdown.dominant_layer() or "-"
            attribution[layer] = attribution.get(layer, 0) + 1
        lines.append("")
        lines.append(
            format_table(
                ["layer", "deadline misses attributed"],
                sorted(attribution.items(), key=lambda kv: -kv[1]),
                title=f"deadline-miss attribution ({len(late)} late)",
            )
        )
    return "\n".join(lines)
