"""Per-link utilization and load-imbalance observation.

The ECMP work (DESIGN.md 8.8) needs one number that says "the trunks
share the load" — the classic choice is **Jain's fairness index** over
per-trunk transmitted bytes::

    J(x) = (sum x_i)^2 / (n * sum x_i^2)

``J`` is 1.0 when every trunk carries the same bytes and ``1/n`` when a
single trunk carries everything, independent of scale.  The single-path
engine concentrates a two-tier fabric's inter-leaf traffic on one spine
(deterministic tie-break), so its index sits near ``1/spines``; ECMP's
flow spreading pushes it toward 1.

:class:`LinkUtilizationCollector` snapshots an internetwork's directed
link counters and reports per-link deltas, so a bench can mark the
start of a measured window and read utilization for just that window.
It reads the existing :class:`~repro.netsim.topology.LinkStats`
counters — no instrumentation cost on the datapath, usable whether or
not the full observability layer is on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["jain_fairness", "LinkUtilizationCollector"]

_EdgeKey = Tuple[str, str]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values``; 1.0 for an empty/zero set.

    The degenerate cases read as "nothing to be unfair about": no
    samples, or no traffic at all, is perfectly fair.
    """
    if not values:
        return 1.0
    total = float(sum(values))
    if total == 0.0:
        return 1.0
    squares = sum(float(v) * float(v) for v in values)
    return (total * total) / (len(values) * squares)


class LinkUtilizationCollector:
    """Windowed per-link byte counters over an internetwork's links.

    ``trunks_only=True`` (the default) restricts the view to
    router-to-router links — the contended fabric core — ignoring the
    host access links, which are per-flow by construction and would
    dilute an imbalance measurement.
    """

    def __init__(self, network, trunks_only: bool = True) -> None:
        self.network = network
        routers = getattr(network, "routers", set())
        self._links: Dict[_EdgeKey, object] = {
            edge: link
            for edge, link in network._links.items()
            if not trunks_only or (edge[0] in routers and edge[1] in routers)
        }
        self._marks: Dict[_EdgeKey, int] = {}
        self.mark()

    def mark(self) -> None:
        """Start a new measurement window at the current counters."""
        self._marks = {
            edge: link.stats.bytes_transmitted
            for edge, link in self._links.items()
        }

    def delta(self) -> Dict[_EdgeKey, int]:
        """Bytes transmitted per directed link since the last mark."""
        marks = self._marks
        return {
            edge: link.stats.bytes_transmitted - marks.get(edge, 0)
            for edge, link in self._links.items()
        }

    def fairness(self, edges: Optional[Sequence[_EdgeKey]] = None) -> float:
        """Jain's index over the window's per-link bytes.

        ``edges`` restricts the sample (e.g. one leaf's uplinks); the
        default is every tracked link.
        """
        deltas = self.delta()
        if edges is not None:
            values: List[int] = [deltas.get(edge, 0) for edge in edges]
        else:
            values = list(deltas.values())
        return jain_fairness(values)

    def busiest(self, n: int = 5) -> List[Tuple[_EdgeKey, int]]:
        """The ``n`` busiest links of the window, descending by bytes."""
        return sorted(
            self.delta().items(), key=lambda item: (-item[1], item[0])
        )[:n]

    def __repr__(self) -> str:
        return (
            f"<LinkUtilizationCollector links={len(self._links)} "
            f"network={self.network.name}>"
        )
