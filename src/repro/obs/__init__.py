"""End-to-end observability for the DASH stack.

One :class:`Observability` object per :class:`~repro.sim.context.SimContext`
bundles the two instruments every layer shares:

- :attr:`Observability.metrics` -- a :class:`~repro.obs.registry.MetricsRegistry`
  of labeled counters, gauges, and latency histograms;
- :attr:`Observability.spans` -- a :class:`~repro.obs.spans.SpanTracer`
  recording per-message lifecycle events for delay decomposition.

Instrumentation sites pay a single attribute check when observability is
off::

    obs = self.context.obs
    if obs.enabled:
        obs.spans.event(message.trace_id, "st", "tx")

The disabled path is a :class:`NullObservability` whose registry and
tracer are stateless no-ops, so benchmarks with observability off run at
full speed.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.export import (
    flight_recorder,
    metrics_payload,
    span_lines,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.linkutil import LinkUtilizationCollector, jain_fairness
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import (
    NullSpanTracer,
    Segment,
    SpanBreakdown,
    SpanEvent,
    SpanTracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SpanEvent",
    "Segment",
    "SpanBreakdown",
    "SpanTracer",
    "NullSpanTracer",
    "Observability",
    "NullObservability",
    "DEFAULT_LATENCY_BUCKETS",
    "LinkUtilizationCollector",
    "jain_fairness",
    "metrics_payload",
    "write_metrics_json",
    "span_lines",
    "write_spans_jsonl",
    "flight_recorder",
]


class Observability:
    """The enabled facade: live metrics registry plus span tracer."""

    enabled = True

    def __init__(
        self,
        loop: Any,
        max_span_events: int = 1_000_000,
        span_keep: str = "head",
    ) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(loop, max_events=max_span_events, keep=span_keep)

    def snapshot(self) -> Dict[str, Any]:
        """Combined JSON-serializable state (metrics + span summary)."""
        return metrics_payload(obs=self)

    def __repr__(self) -> str:
        return (
            f"<Observability families={len(self.metrics.families)} "
            f"span_events={len(self.spans)}>"
        )


class NullObservability:
    """The disabled facade: every instrument is a stateless no-op."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NullRegistry()
        self.spans = NullSpanTracer()

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "<NullObservability>"
