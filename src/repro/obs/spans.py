"""Message-lifecycle spans: per-trace event streams and delay breakdown.

Every message entering the stack (with observability enabled) is
assigned a *trace id*; instrumentation points in the RMS core, the
subtransport layer, the network simulation, and the CPU scheduler emit
:class:`SpanEvent` records against that id.  A message's end-to-end
delay then decomposes into per-layer segments -- the gap between two
consecutive events is attributed to the layer of the *earlier* event
(the component that held the message during that interval).

Canonical event chain of one ST message (see DESIGN.md for the full
vocabulary)::

    st:send -> cpu:enqueue -> cpu:dequeue -> cpu:done       (send stage)
    -> st:enqueue -> net:tx                                  (piggyback)
    -> net:rx -> st:rx                                       (network)
    -> cpu:enqueue -> cpu:dequeue -> cpu:done                (recv stage)
    -> st:deliver [-> st:late]

The tracer also keeps a *wire side table* correlating in-flight
``(st_rms_id, seq)`` pairs with trace ids, so the receiving subtransport
layer can rejoin a component's trace without widening the wire format.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ParameterError
from repro.sim.events import EventLoop

__all__ = ["SpanEvent", "Segment", "SpanBreakdown", "SpanTracer", "NullSpanTracer"]


@dataclass(frozen=True)
class SpanEvent:
    """One point on a message's lifecycle."""

    trace_id: int
    time: float
    layer: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{key}={value!r}" for key, value in self.fields.items())
        return (
            f"[{self.time:12.6f}] #{self.trace_id} {self.layer}:{self.event} "
            f"{detail}"
        ).rstrip()


@dataclass(frozen=True)
class Segment:
    """The interval between two consecutive span events."""

    layer: str
    from_event: str
    to_event: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanBreakdown:
    """One trace's events, segmented and aggregated per layer."""

    def __init__(self, trace_id: int, events: List[SpanEvent]) -> None:
        self.trace_id = trace_id
        self.events = sorted(events, key=lambda e: e.time)
        self.segments: List[Segment] = [
            Segment(
                layer=a.layer,
                from_event=f"{a.layer}:{a.event}",
                to_event=f"{b.layer}:{b.event}",
                start=a.time,
                end=b.time,
            )
            for a, b in zip(self.events, self.events[1:])
        ]

    @property
    def total(self) -> float:
        """Wall time from the first to the last event of the trace."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].time - self.events[0].time

    @property
    def delivered(self) -> bool:
        return any(e.event == "deliver" for e in self.events)

    @property
    def dropped(self) -> bool:
        return any(e.event == "drop" for e in self.events)

    @property
    def late(self) -> bool:
        return any(e.event == "late" for e in self.events)

    def by_layer(self) -> Dict[str, float]:
        """Seconds attributed to each layer, summing to :attr:`total`."""
        out: Dict[str, float] = {}
        for segment in self.segments:
            out[segment.layer] = out.get(segment.layer, 0.0) + segment.duration
        return out

    def dominant_layer(self) -> Optional[str]:
        """The layer that consumed the largest share of the delay."""
        by_layer = self.by_layer()
        if not by_layer:
            return None
        return max(by_layer, key=lambda layer: by_layer[layer])

    def __repr__(self) -> str:
        return (
            f"<SpanBreakdown #{self.trace_id} events={len(self.events)} "
            f"total={self.total:.6f}s>"
        )


class SpanTracer:
    """Collects span events per trace id.

    ``keep`` selects the overflow policy once ``max_events`` is reached:
    ``"head"`` drops new events (the default, cheapest), ``"tail"``
    evicts the oldest trace's events ring-buffer style.  Either way
    :attr:`dropped` counts what was lost.
    """

    enabled = True

    def __init__(
        self,
        loop: EventLoop,
        max_events: int = 1_000_000,
        keep: str = "head",
    ) -> None:
        if keep not in ("head", "tail"):
            raise ParameterError(f"keep must be 'head' or 'tail': {keep!r}")
        self._loop = loop
        self._max_events = max_events
        self._keep = keep
        self._ids = itertools.count(1)
        self._events = 0
        self._traces: "Dict[int, List[SpanEvent]]" = {}
        self._order: Deque[int] = deque()  # trace ids, oldest first
        self._wire: Dict[Tuple[int, int], int] = {}
        self.dropped = 0

    # -- trace lifecycle -------------------------------------------------

    def new_trace(self) -> int:
        return next(self._ids)

    def event(self, trace_id: Optional[int], layer: str, event: str, **fields: Any) -> None:
        """Record one lifecycle event; a ``None`` trace id is ignored."""
        if trace_id is None:
            return
        if self._events >= self._max_events:
            if self._keep == "head" or not self._order:
                self.dropped += 1
                return
            oldest = self._order.popleft()
            evicted = self._traces.pop(oldest, [])
            self._events -= len(evicted)
            self.dropped += len(evicted)
        bucket = self._traces.get(trace_id)
        if bucket is None:
            bucket = []
            self._traces[trace_id] = bucket
            self._order.append(trace_id)
        bucket.append(SpanEvent(trace_id, self._loop.now, layer, event, fields))
        self._events += 1

    # -- wire correlation ------------------------------------------------

    def stash(self, key: Tuple[int, int], trace_id: int) -> None:
        """Remember a trace id for an in-flight ``(st_rms_id, seq)``."""
        self._wire[key] = trace_id

    def claim(self, key: Tuple[int, int]) -> Optional[int]:
        """Retrieve (and forget) the trace id of an arriving component."""
        return self._wire.pop(key, None)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._events

    def traces(self) -> Iterable[int]:
        return self._traces.keys()

    def events_for(self, trace_id: int) -> List[SpanEvent]:
        return list(self._traces.get(trace_id, ()))

    def breakdown(self, trace_id: int) -> Optional[SpanBreakdown]:
        events = self._traces.get(trace_id)
        if not events:
            return None
        return SpanBreakdown(trace_id, events)

    def slowest(self, n: int = 10, delivered_only: bool = True) -> List[SpanBreakdown]:
        """The ``n`` traces with the largest end-to-end time, slowest first."""
        breakdowns = (
            SpanBreakdown(trace_id, events)
            for trace_id, events in self._traces.items()
            if events
        )
        if delivered_only:
            breakdowns = (b for b in breakdowns if b.delivered)
        return sorted(breakdowns, key=lambda b: b.total, reverse=True)[:n]

    def clear(self) -> None:
        self._traces.clear()
        self._order.clear()
        self._wire.clear()
        self._events = 0
        self.dropped = 0

    def __repr__(self) -> str:
        return (
            f"<SpanTracer traces={len(self._traces)} events={self._events} "
            f"dropped={self.dropped}>"
        )


class NullSpanTracer:
    """The disabled-path tracer: stateless, records nothing."""

    enabled = False
    dropped = 0

    def new_trace(self) -> None:
        return None

    def event(self, trace_id: Optional[int], layer: str, event: str, **fields: Any) -> None:
        return None

    def stash(self, key: Tuple[int, int], trace_id: int) -> None:
        return None

    def claim(self, key: Tuple[int, int]) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def traces(self) -> Iterable[int]:
        return ()

    def events_for(self, trace_id: int) -> List[SpanEvent]:
        return []

    def breakdown(self, trace_id: int) -> None:
        return None

    def slowest(self, n: int = 10, delivered_only: bool = True) -> List[SpanBreakdown]:
        return []

    def clear(self) -> None:
        return None
