"""Baseline: the "traditional" datagram abstraction (paper section 1).

"In existing distributed systems, the corresponding interface has
typically provided a simple abstraction such as unreliable, insecure
datagrams."  This service runs over the same simulated networks as the
RMS stack, but exposes only fire-and-forget datagrams: no parameters,
no deadlines (every frame carries an infinite transmission deadline, so
deadline-ordered queues degenerate to FIFO for this traffic), no
security, no capacity reservation.

Higher baseline layers (the TCP-like stream and the V-style RPC) build
on this, mirroring how the paper's comparison systems layered their
abstractions.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.message import Label, Message
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.errors import NetworkError
from repro.netsim.network import Network, NetworkRms
from repro.netsim.topology import Host
from repro.sim.context import SimContext

__all__ = ["DatagramService"]

DGRAM_PORT = "dgram"

_DGRAM_HEADER = struct.Struct(">H")  # destination port name length


class DatagramService:
    """Unreliable, insecure datagrams for one host.

    One best-effort network RMS per destination host is created lazily
    and shared by all traffic (standing in for "no per-flow state").
    Datagrams queued while that RMS is being set up are sent when it
    resolves; setup failure drops them, as a real datagram service
    would.
    """

    def __init__(self, context: SimContext, host: Host, network: Network) -> None:
        self.context = context
        self.host = host
        self.network = network
        self._out: Dict[str, NetworkRms] = {}
        self._pending: Dict[str, List[bytes]] = {}
        self._handlers: Dict[str, Callable[[bytes, str], None]] = {}
        self.sent = 0
        self.received = 0
        self.dropped_no_route = 0
        network.listen_incoming(host.name, self._incoming)

    def bind(self, port: str, handler: Callable[[bytes, str], None]) -> None:
        """Receive datagrams addressed to ``port`` as ``handler(payload,
        source_host)``."""
        self._handlers[port] = handler

    def send(self, dst_host: str, port: str, payload: bytes) -> None:
        """Fire-and-forget one datagram."""
        port_bytes = port.encode("utf-8")
        frame = _DGRAM_HEADER.pack(len(port_bytes)) + port_bytes + payload
        rms = self._out.get(dst_host)
        if rms is not None and rms.is_open:
            self._transmit(rms, frame)
            return
        self._pending.setdefault(dst_host, []).append(frame)
        if dst_host not in self._out:
            self._open_path(dst_host)
        elif rms is not None and not rms.is_open:
            # The old path died; rebuild it.
            self._out.pop(dst_host, None)
            self._open_path(dst_host)

    def _max_payload(self) -> int:
        return self.network.properties.mtu - 64

    def _transmit(self, rms: NetworkRms, frame: bytes) -> None:
        if len(frame) > rms.params.max_message_size:
            # Datagram services drop oversized packets silently.
            self.dropped_no_route += 1
            return
        message = Message(
            frame,
            source=Label(self.host.name, DGRAM_PORT),
            target=Label(rms.receiver.host, DGRAM_PORT),
        )
        rms.send(message, deadline=float("inf"))
        self.sent += 1

    def _open_path(self, dst_host: str) -> None:
        params = RmsParams(
            capacity=1024 * 1024,
            max_message_size=self.network.properties.mtu,
            delay_bound=DelayBound.unbounded(),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
            bit_error_rate=1.0,  # accept anything: datagrams promise nothing
        )
        self._out[dst_host] = None  # mark as in progress
        future = self.network.create_rms(
            Label(self.host.name, DGRAM_PORT),
            Label(dst_host, DGRAM_PORT),
            params,
            params,
        )

        def done(result) -> None:
            if result.failed:
                self._out.pop(dst_host, None)
                dropped = self._pending.pop(dst_host, [])
                self.dropped_no_route += len(dropped)
                return
            rms = result.result()
            self._out[dst_host] = rms
            for frame in self._pending.pop(dst_host, []):
                self._transmit(rms, frame)

        future.add_done_callback(done)

    def _incoming(self, rms: NetworkRms) -> None:
        if rms.receiver.host != self.host.name:
            return
        if rms.receiver.port != DGRAM_PORT:
            return
        rms.port.set_handler(lambda message: self._arrived(message))

    def _arrived(self, message: Message) -> None:
        data = message.payload
        if len(data) < _DGRAM_HEADER.size:
            return
        (port_length,) = _DGRAM_HEADER.unpack_from(data, 0)
        offset = _DGRAM_HEADER.size
        if len(data) < offset + port_length:
            return
        port = data[offset : offset + port_length].decode("utf-8", errors="replace")
        payload = data[offset + port_length :]
        self.received += 1
        handler = self._handlers.get(port)
        if handler is not None:
            source = message.source.host if message.source else ""
            handler(payload, source)

    def register_quench_handler(self, callback: Callable[[int], None]) -> None:
        """Receive ICMP-style source quench notifications (section 4.4)."""
        self.network.register_quench_handler(
            self.host.name, lambda frame: callback(frame.rms_id)
        )

    def __repr__(self) -> str:
        return (
            f"<DatagramService host={self.host.name} sent={self.sent} "
            f"received={self.received}>"
        )
