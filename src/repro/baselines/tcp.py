"""Baseline: a TCP-like reliable byte stream over datagrams.

The paper contrasts RMS capacity reservation with TCP's window flow
control plus ICMP source quench: "the flow control of TCP does not
protect gateway buffers; ICMP source quench messages provide an ad hoc
and often ineffective solution to this flow control problem" (section
4.4).  This module implements the comparison system: a sliding-window,
slow-start/AIMD stream whose congestion response to source quench is to
halve its window -- the classic 4.3BSD-era behaviour.

It is message-oriented (fixed segments) rather than byte-oriented; the
congestion and flow-control dynamics, which are what E11 measures, are
unaffected.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.datagram import DatagramService
from repro.errors import TransportError
from repro.sim.context import SimContext
from repro.sim.events import EventHandle
from repro.sim.ports import Port

__all__ = ["TcpConfig", "TcpStats", "TcpLikeConnection"]

_SEG_HEADER = struct.Struct(">BII")  # kind, seq, window/ack
_KIND_DATA = 1
_KIND_ACK = 2

_conn_ids = itertools.count(1)


@dataclass
class TcpConfig:
    """Tunables of the TCP-like baseline."""

    mss: int = 512  # segment payload bytes
    initial_cwnd: int = 1  # segments
    max_window: int = 64  # segments (receiver window)
    retransmit_timeout: float = 0.5
    min_rto: float = 0.2
    slow_start_threshold: int = 32
    #: React to ICMP source quench by halving the congestion window.
    obey_source_quench: bool = True


@dataclass
class TcpStats:
    segments_sent: int = 0
    segments_delivered: int = 0
    bytes_delivered: int = 0
    retransmissions: int = 0
    quenches_received: int = 0
    timeouts: int = 0


class TcpLikeConnection:
    """One simplex reliable stream between two hosts over datagrams.

    Both endpoints live on this object (single-process simulation); the
    sender uses ``send``; the receiver delivers to ``rx_port``.
    """

    def __init__(
        self,
        context: SimContext,
        sender: DatagramService,
        receiver: DatagramService,
        config: Optional[TcpConfig] = None,
    ) -> None:
        self.context = context
        self.config = config or TcpConfig()
        self.sender_dgram = sender
        self.receiver_dgram = receiver
        self.stats = TcpStats()
        self.conn_id = next(_conn_ids)
        self._port_name = f"tcp-{self.conn_id}"
        # Sender state.
        self._send_buffer: Dict[int, bytes] = {}
        self._next_seq = 0
        self._send_base = 0  # oldest unacked
        self._cwnd = float(self.config.initial_cwnd)
        self._ssthresh = self.config.slow_start_threshold
        self._rto = self.config.retransmit_timeout
        self._timer: Optional[EventHandle] = None
        self._duplicate_acks = 0
        self._sent_upto = 0  # next never-sent sequence number
        # Receiver state.
        self.rx_port = Port(context.loop, name=f"tcp{self.conn_id}.rx")
        self._rx_expected = 0
        self._rx_buffer: Dict[int, bytes] = {}
        receiver.bind(self._port_name, self._segment_arrived)
        sender.bind(self._port_name, self._ack_arrived)
        if self.config.obey_source_quench:
            sender.register_quench_handler(self._quench_arrived)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def send(self, payload: bytes) -> None:
        """Queue one segment-sized message for reliable delivery."""
        if len(payload) > self.config.mss:
            raise TransportError(
                f"segment of {len(payload)}B exceeds mss {self.config.mss}B"
            )
        seq = self._next_seq
        self._next_seq += 1
        self._send_buffer[seq] = payload
        self._try_transmit()

    @property
    def window(self) -> int:
        """Usable window in segments: min(congestion, receiver)."""
        return max(1, min(int(self._cwnd), self.config.max_window))

    @property
    def congestion_window(self) -> float:
        return self._cwnd

    def _try_transmit(self) -> None:
        while (
            self._send_base + self.window > self._highest_sent()
            and self._highest_sent() in self._send_buffer
        ):
            seq = self._highest_sent()
            # Advance before transmitting so the retransmit timer sees
            # the segment as outstanding.
            self._sent_upto = seq + 1
            self._transmit(seq)

    def _highest_sent(self) -> int:
        return self._sent_upto

    def _transmit(self, seq: int) -> None:
        payload = self._send_buffer.get(seq)
        if payload is None:
            return
        segment = _SEG_HEADER.pack(_KIND_DATA, seq, 0) + payload
        self.sender_dgram.send(
            self.receiver_dgram.host.name, self._port_name, segment
        )
        self.stats.segments_sent += 1
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None and not self._timer.cancelled:
            return
        if self._send_base >= self._sent_upto:
            return
        self._timer = self.context.loop.call_after(self._rto, self._timeout)

    def _timeout(self) -> None:
        self._timer = None
        if self._send_base >= self._sent_upto:
            return
        # Classic TCP timeout: collapse to slow start.
        self.stats.timeouts += 1
        self._ssthresh = max(2, int(self._cwnd / 2))
        self._cwnd = float(self.config.initial_cwnd)
        self._rto = min(self._rto * 2, 8.0)
        self.stats.retransmissions += 1
        self._transmit(self._send_base)
        self._arm_timer()

    def _ack_arrived(self, payload: bytes, _source: str) -> None:
        if len(payload) < _SEG_HEADER.size:
            return
        kind, ack_seq, _window = _SEG_HEADER.unpack_from(payload, 0)
        if kind != _KIND_ACK:
            return
        if ack_seq <= self._send_base:
            self._duplicate_acks += 1
            if self._duplicate_acks >= 3 and self._send_base in self._send_buffer:
                # Fast retransmit.
                self._duplicate_acks = 0
                self.stats.retransmissions += 1
                self._cwnd = max(1.0, self._cwnd / 2)
                self._transmit(self._send_base)
            return
        self._duplicate_acks = 0
        for seq in range(self._send_base, ack_seq):
            self._send_buffer.pop(seq, None)
        self._send_base = ack_seq
        self._rto = max(self.config.min_rto, self._rto * 0.9)
        if self._cwnd < self._ssthresh:
            self._cwnd += 1.0  # slow start
        else:
            self._cwnd += 1.0 / max(self._cwnd, 1.0)  # congestion avoidance
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._arm_timer()
        self._try_transmit()

    def _quench_arrived(self, _rms_id: int) -> None:
        """ICMP source quench: halve the congestion window (section 4.4)."""
        self.stats.quenches_received += 1
        self._ssthresh = max(2, int(self._cwnd / 2))
        self._cwnd = max(1.0, self._cwnd / 2)

    @property
    def all_acked(self) -> bool:
        return self._send_base == self._next_seq

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _segment_arrived(self, payload: bytes, source: str) -> None:
        if len(payload) < _SEG_HEADER.size:
            return
        kind, seq, _unused = _SEG_HEADER.unpack_from(payload, 0)
        if kind != _KIND_DATA:
            return
        data = payload[_SEG_HEADER.size :]
        if seq >= self._rx_expected and seq not in self._rx_buffer:
            self._rx_buffer[seq] = data
        while self._rx_expected in self._rx_buffer:
            delivered = self._rx_buffer.pop(self._rx_expected)
            self._rx_expected += 1
            self.stats.segments_delivered += 1
            self.stats.bytes_delivered += len(delivered)
            self.rx_port.deliver(delivered)
        ack = _SEG_HEADER.pack(_KIND_ACK, self._rx_expected, 0)
        self.receiver_dgram.send(
            self.sender_dgram.host.name, self._port_name, ack
        )

    def goodput(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.stats.bytes_delivered / elapsed

    def __repr__(self) -> str:
        return (
            f"<TcpLikeConnection #{self.conn_id} cwnd={self._cwnd:.1f} "
            f"base={self._send_base} next={self._next_seq}>"
        )
