"""Comparison baselines: datagrams, TCP-like stream, datagram RPC."""

from repro.baselines.datagram import DatagramService
from repro.baselines.rpc import DatagramRpc, DatagramRpcConfig
from repro.baselines.tcp import TcpConfig, TcpLikeConnection, TcpStats

__all__ = [
    "DatagramRpc",
    "DatagramRpcConfig",
    "DatagramService",
    "TcpConfig",
    "TcpLikeConnection",
    "TcpStats",
]
