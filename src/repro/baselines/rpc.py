"""Baseline: V-kernel-style request/reply over datagrams.

The paper cites the V distributed kernel [5] as the state of the art in
request/reply message passing.  This baseline runs request/reply over
plain datagrams with retransmission and duplicate suppression -- but
without RMS deadlines, so its traffic gets no preferential queueing, and
without the RKOM channel split between low-delay initial messages and
high-delay retransmissions (section 3.3, bench E9).
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.baselines.datagram import DatagramService
from repro.errors import RkomTimeoutError
from repro.sim.context import SimContext
from repro.sim.events import EventHandle
from repro.sim.process import Future

__all__ = ["DatagramRpcConfig", "DatagramRpc"]

_HEADER = struct.Struct(">BQH")  # kind, request id, op length
_KIND_REQUEST = 1
_KIND_REPLY = 2

_request_ids = itertools.count(1)

RPC_PORT = "dgram-rpc"


@dataclass
class DatagramRpcConfig:
    request_timeout: float = 0.25
    max_retransmits: int = 5
    backoff: float = 2.0
    reply_cache_size: int = 256


@dataclass
class _Pending:
    future: Future
    frame: bytes
    peer: str
    timeout: float
    retries: int = 0
    timer: Optional[EventHandle] = None


class DatagramRpc:
    """Request/reply service for one host over datagrams."""

    def __init__(
        self,
        context: SimContext,
        dgram: DatagramService,
        config: Optional[DatagramRpcConfig] = None,
    ) -> None:
        self.context = context
        self.dgram = dgram
        self.config = config or DatagramRpcConfig()
        self.handlers: Dict[str, Callable[[bytes, str], Any]] = {}
        self._pending: Dict[int, _Pending] = {}
        self._served: Dict[Any, Optional[bytes]] = {}
        self.calls = 0
        self.retransmissions = 0
        self.timeouts = 0
        dgram.bind(RPC_PORT, self._arrived)

    def register_handler(self, op: str, handler: Callable[[bytes, str], Any]) -> None:
        self.handlers[op] = handler

    def call(
        self,
        peer_host: str,
        op: str,
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> Future:
        request_id = next(_request_ids)
        op_bytes = op.encode("utf-8")
        frame = (
            _HEADER.pack(_KIND_REQUEST, request_id, len(op_bytes))
            + op_bytes
            + payload
        )
        pending = _Pending(
            future=Future(self.context.loop),
            frame=frame,
            peer=peer_host,
            timeout=timeout or self.config.request_timeout,
        )
        self._pending[request_id] = pending
        self.calls += 1
        self.dgram.send(peer_host, RPC_PORT, frame)
        pending.timer = self.context.loop.call_after(
            pending.timeout, self._timeout, request_id
        )
        return pending.future

    def _timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.retries += 1
        if pending.retries > self.config.max_retransmits:
            self._pending.pop(request_id, None)
            self.timeouts += 1
            pending.future.set_exception(
                RkomTimeoutError(f"no reply from {pending.peer}")
            )
            return
        self.retransmissions += 1
        self.dgram.send(pending.peer, RPC_PORT, pending.frame)
        pending.timeout *= self.config.backoff
        pending.timer = self.context.loop.call_after(
            pending.timeout, self._timeout, request_id
        )

    def _arrived(self, payload: bytes, source: str) -> None:
        if len(payload) < _HEADER.size:
            return
        kind, request_id, op_length = _HEADER.unpack_from(payload, 0)
        body = payload[_HEADER.size :]
        if kind == _KIND_REQUEST:
            self._serve(source, request_id, body, op_length)
        elif kind == _KIND_REPLY:
            pending = self._pending.pop(request_id, None)
            if pending is None:
                return
            if pending.timer is not None:
                pending.timer.cancel()
            pending.future.set_result(body)

    def _serve(self, source: str, request_id: int, body: bytes, op_length: int) -> None:
        key = (source, request_id)
        if key in self._served:
            cached = self._served[key]
            if cached is not None:
                self._send_reply(source, request_id, cached)
            return
        op = body[:op_length].decode("utf-8", errors="replace")
        payload = body[op_length:]
        handler = self.handlers.get(op)
        if handler is None:
            self._served[key] = b""
            self._send_reply(source, request_id, b"")
            return
        self._served[key] = None
        if len(self._served) > self.config.reply_cache_size:
            self._served.pop(next(iter(self._served)))
        result = handler(payload, source)
        if isinstance(result, Future):
            result.add_done_callback(
                lambda f: self._finish(source, request_id, f)
            )
        else:
            self._served[key] = bytes(result)
            self._send_reply(source, request_id, bytes(result))

    def _finish(self, source: str, request_id: int, future: Future) -> None:
        reply = b"" if future.failed else bytes(future.result())
        self._served[(source, request_id)] = reply
        self._send_reply(source, request_id, reply)

    def _send_reply(self, peer: str, request_id: int, reply: bytes) -> None:
        frame = _HEADER.pack(_KIND_REPLY, request_id, 0) + reply
        self.dgram.send(peer, RPC_PORT, frame)
