"""RMS parameters (paper sections 2.1-2.3).

A Real-Time Message Stream carries three Boolean reliability/security
parameters, capacity and maximum-message-size limits, a linear delay
bound ``A + B * size`` of one of three types, and an average bit error
rate.  This module defines those parameter objects, their validation
rules, and the compatibility relation of section 2.4.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ParameterError

__all__ = [
    "DelayBoundType",
    "DelayBound",
    "StatisticalSpec",
    "RmsParams",
    "RmsRequest",
    "is_compatible",
    "UNBOUNDED_DELAY",
]

#: Sentinel for "no meaningful delay bound" (used by best-effort RMSs
#: whose deadlines only order queues, never reject traffic).
UNBOUNDED_DELAY = math.inf


class DelayBoundType(enum.IntEnum):
    """Delay-bound types of section 2.3, ordered by strength.

    A provider type *satisfies* a requested type when it is at least as
    strong: deterministic satisfies statistical and best-effort requests,
    and so on down.
    """

    BEST_EFFORT = 0
    STATISTICAL = 1
    DETERMINISTIC = 2

    def satisfies(self, requested: "DelayBoundType") -> bool:
        return self >= requested


@dataclass(frozen=True)
class DelayBound:
    """An upper bound on message delay: ``A + B * (message size)``.

    ``a`` is in seconds; ``b`` in seconds per byte.  The bound covers the
    elapsed real time between the start of the send operation and the
    moment of delivery (section 2.2), including queueing, transmission,
    and processing at whichever RMS level the stream lives (section 3.4).
    """

    a: float
    b: float = 0.0

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ParameterError(f"delay bound terms must be >= 0: {self}")

    def bound_for(self, size: int) -> float:
        """The delay bound for a message of ``size`` bytes."""
        if size < 0:
            raise ParameterError(f"message size must be >= 0, got {size}")
        return self.a + self.b * size

    def no_greater_than(self, other: "DelayBound") -> bool:
        """True when this bound is at least as tight as ``other``.

        Element-wise comparison: a tighter bound has smaller ``a`` and
        smaller ``b``, hence bounds every message size at least as well.
        An unbounded ``other`` accepts anything (its per-byte term is
        irrelevant when the fixed term is already infinite).
        """
        if other.is_unbounded:
            return True
        return self.a <= other.a and self.b <= other.b

    def plus(self, other: "DelayBound") -> "DelayBound":
        """Compose bounds of two pipeline stages (section 4.1)."""
        return DelayBound(self.a + other.a, self.b + other.b)

    def minus(self, other: "DelayBound") -> "DelayBound":
        """The slack left after reserving ``other`` for a later stage."""
        a = self.a - other.a
        b = self.b - other.b
        if a < 0 or b < 0:
            raise ParameterError(f"cannot subtract {other} from {self}")
        return DelayBound(a, b)

    @classmethod
    def unbounded(cls) -> "DelayBound":
        return cls(UNBOUNDED_DELAY, 0.0)

    @property
    def is_unbounded(self) -> bool:
        return math.isinf(self.a)

    def __str__(self) -> str:
        if self.is_unbounded:
            return "unbounded"
        return f"{self.a * 1e3:.3f}ms + {self.b * 1e6:.3f}us/B"


@dataclass(frozen=True)
class StatisticalSpec:
    """Workload description and guarantee for statistical delay bounds.

    ``average_load`` and ``burstiness`` are supplied by the client
    (section 2.2); ``delay_probability`` is the provider's guarantee that
    any message meets the delay bound.
    """

    average_load: float  # bytes per second offered by the client
    burstiness: float = 1.0  # peak-to-average ratio, >= 1
    delay_probability: float = 0.99  # provider guarantee, in (0, 1]

    def __post_init__(self) -> None:
        if self.average_load < 0:
            raise ParameterError(f"average load must be >= 0: {self.average_load}")
        if self.burstiness < 1.0:
            raise ParameterError(f"burstiness must be >= 1: {self.burstiness}")
        if not 0.0 < self.delay_probability <= 1.0:
            raise ParameterError(
                f"delay probability must be in (0, 1]: {self.delay_probability}"
            )

    @property
    def peak_load(self) -> float:
        """Worst-case short-term offered load in bytes per second."""
        return self.average_load * self.burstiness

    def no_greater_than(self, other: "StatisticalSpec") -> bool:
        """True when this spec demands no more than ``other``.

        A spec demands more when it offers more load or asks for a higher
        delay probability.
        """
        return (
            self.average_load <= other.average_load
            and self.burstiness <= other.burstiness
            and self.delay_probability >= other.delay_probability
        )


@dataclass(frozen=True)
class RmsParams:
    """The full parameter set of one RMS (sections 2.1-2.3).

    Invariant from section 2.2: the maximum message size cannot be
    greater than the RMS capacity.
    """

    # -- reliability and security (2.1) ---------------------------------
    reliability: bool = False
    authentication: bool = False
    privacy: bool = False
    # -- performance (2.2) ----------------------------------------------
    capacity: int = 65536  # bytes outstanding within the RMS
    max_message_size: int = 1500  # bytes, enforced by the sender
    delay_bound: DelayBound = field(default_factory=DelayBound.unbounded)
    delay_bound_type: DelayBoundType = DelayBoundType.BEST_EFFORT
    statistical: Optional[StatisticalSpec] = None
    bit_error_rate: float = 0.0  # average, guaranteed by the provider

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ParameterError(f"capacity must be > 0: {self.capacity}")
        if self.max_message_size <= 0:
            raise ParameterError(
                f"max message size must be > 0: {self.max_message_size}"
            )
        if self.max_message_size > self.capacity:
            raise ParameterError(
                f"max message size {self.max_message_size} exceeds capacity "
                f"{self.capacity} (section 2.2)"
            )
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ParameterError(
                f"bit error rate must be in [0, 1]: {self.bit_error_rate}"
            )
        if (
            self.delay_bound_type == DelayBoundType.STATISTICAL
            and self.statistical is None
        ):
            raise ParameterError(
                "statistical delay bound requires a StatisticalSpec (2.3)"
            )
        if (
            self.delay_bound_type == DelayBoundType.DETERMINISTIC
            and self.delay_bound.is_unbounded
        ):
            raise ParameterError("deterministic RMS needs a finite delay bound")

    # -- derived quantities ----------------------------------------------

    def implied_bandwidth(self) -> float:
        """Guaranteed bandwidth implied by the other parameters (2.2).

        With maximum message size ``M``, worst-case delay ``D`` for a
        size-``M`` message, and capacity ``C``, a client may send a
        size-``M`` message every ``D * M / C`` seconds without violating
        the capacity rule, for about ``C / D`` bytes per second.
        """
        if self.delay_bound.is_unbounded:
            return 0.0
        worst_delay = self.delay_bound.bound_for(self.max_message_size)
        if worst_delay <= 0:
            return math.inf
        return self.capacity / worst_delay

    def message_period(self) -> float:
        """Minimum spacing of maximum-size sends under the capacity rule."""
        if self.delay_bound.is_unbounded:
            return math.inf
        worst_delay = self.delay_bound.bound_for(self.max_message_size)
        return worst_delay * self.max_message_size / self.capacity

    # -- convenience constructors (section 2.5 examples) -----------------

    @classmethod
    def for_request_reply(cls, delay: float = 0.05, capacity: int = 65536) -> "RmsParams":
        """Low delay bound, possibly large capacity (2.5)."""
        return cls(
            reliability=False,
            capacity=capacity,
            max_message_size=min(8192, capacity),
            delay_bound=DelayBound(delay, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    @classmethod
    def for_bulk_data(cls, capacity: int = 262144) -> "RmsParams":
        """High capacity, high delay (2.5)."""
        return cls(
            capacity=capacity,
            max_message_size=min(8192, capacity),
            delay_bound=DelayBound(1.0, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    @classmethod
    def for_voice(
        cls,
        delay: float = 0.08,
        capacity: int = 16384,
        delay_probability: float = 0.98,
        average_load: float = 8000.0,
    ) -> "RmsParams":
        """High capacity, low delay, statistical bound; loss-tolerant (2.5)."""
        return cls(
            capacity=capacity,
            max_message_size=min(1024, capacity),
            delay_bound=DelayBound(delay, 1e-6),
            delay_bound_type=DelayBoundType.STATISTICAL,
            statistical=StatisticalSpec(
                average_load=average_load,
                burstiness=2.0,
                delay_probability=delay_probability,
            ),
            bit_error_rate=1e-5,
        )

    @classmethod
    def for_flow_control_acks(cls, delay: float = 0.02) -> "RmsParams":
        """Low delay, low capacity (2.5)."""
        return cls(
            capacity=1024,
            max_message_size=128,
            delay_bound=DelayBound(delay, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    @classmethod
    def for_reliability_acks(cls) -> "RmsParams":
        """Low capacity, high delay (2.5)."""
        return cls(
            capacity=1024,
            max_message_size=128,
            delay_bound=DelayBound(1.0, 1e-6),
            delay_bound_type=DelayBoundType.BEST_EFFORT,
        )

    def with_(self, **changes) -> "RmsParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def is_compatible(actual: RmsParams, requested: RmsParams) -> bool:
    """The compatibility relation of section 2.4.

    ``actual`` is compatible with ``requested`` when

    1. the actual reliability and security properties include those
       requested;
    2. the actual capacity and maximum message size are no less than
       requested; and
    3. the actual delay bound and error rate parameters are no greater
       than requested (including delay-bound type strength and, for
       statistical bounds, the statistical spec).
    """
    # (1) reliability and security inclusion.
    if requested.reliability and not actual.reliability:
        return False
    if requested.authentication and not actual.authentication:
        return False
    if requested.privacy and not actual.privacy:
        return False
    # (2) capacity and maximum message size.
    if actual.capacity < requested.capacity:
        return False
    if actual.max_message_size < requested.max_message_size:
        return False
    # (3) delay bound, type strength, statistical spec, error rate.
    if not actual.delay_bound.no_greater_than(requested.delay_bound):
        return False
    if not actual.delay_bound_type.satisfies(requested.delay_bound_type):
        return False
    if actual.bit_error_rate > requested.bit_error_rate:
        return False
    if requested.statistical is not None:
        if (
            actual.delay_bound_type == DelayBoundType.STATISTICAL
            and actual.statistical is not None
        ):
            if actual.statistical.delay_probability < requested.statistical.delay_probability:
                return False
            if actual.statistical.average_load < requested.statistical.average_load:
                return False
        # A deterministic actual bound satisfies any statistical request.
    return True


@dataclass(frozen=True)
class RmsRequest:
    """What a client asks for: a desired and an acceptable parameter set.

    Section 2.4: establishment succeeds with any actual parameter set
    compatible with ``acceptable``; the provider aims for ``desired``.
    ``acceptable=None`` means the desired set is also the floor (no
    degradation allowed).  This is the one request shape every creation
    entry point takes; the resilience layer weakens ``desired`` toward
    the floor when re-establishing on constrained networks.
    """

    desired: RmsParams = field(default_factory=RmsParams)
    acceptable: Optional[RmsParams] = None

    @property
    def floor(self) -> RmsParams:
        """The weakest parameter set the client will accept."""
        return self.acceptable if self.acceptable is not None else self.desired

    @classmethod
    def of(
        cls,
        desired: Optional[RmsParams] = None,
        acceptable: Optional[RmsParams] = None,
        request: Optional["RmsRequest"] = None,
    ) -> "RmsRequest":
        """Normalize the two ways callers spell a request.

        Either pass a ready-made ``request`` or the legacy
        ``desired``/``acceptable`` pair -- never both.
        """
        if request is not None:
            if desired is not None or acceptable is not None:
                raise ParameterError(
                    "pass either request= or desired=/acceptable=, not both"
                )
            return request
        return cls(desired=desired or RmsParams(), acceptable=acceptable)
