"""Messages: untyped byte arrays with optional source/target labels.

Section 2 of the paper: "Messages are untyped byte arrays.  They may in
addition have source and target labels identifying the sender and
receiver."  This module also defines the label type used for addressing
throughout the stack (the paper omits addressing details; we use a flat
``host:port`` namespace).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import ParameterError

__all__ = ["Label", "Message", "fast_message"]

_message_ids = itertools.count(1)


@dataclass(frozen=True, order=True)
class Label:
    """A flat address: a host name plus a port name within the host."""

    host: str
    port: str = "default"

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class Message:
    """One RMS message.

    ``payload`` is the untyped byte array.  ``source`` and ``target`` are
    the optional labels of section 2.  ``headers`` carries protocol
    metadata added by layers (sequence numbers, fragment offsets, MACs);
    header bytes are accounted by ``wire_size`` so overhead experiments
    are honest.  ``send_time`` and ``deliver_time`` are stamped by the
    providers to support delay measurement; ``deadline`` is the
    transmission deadline used for queue ordering (section 4.3.1).
    ``trace_id`` ties the message to its observability span (assigned on
    first send when observability is enabled); like the timestamps it is
    measurement metadata, not accounted wire bytes.
    """

    payload: Union[bytes, memoryview]
    source: Optional[Label] = None
    target: Optional[Label] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    send_time: Optional[float] = None
    deliver_time: Optional[float] = None
    deadline: Optional[float] = None
    trace_id: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        payload = self.payload
        if type(payload) is bytes:
            return
        if isinstance(payload, memoryview):
            # Zero-copy fast path: the view is adopted as-is.  Ownership
            # rule (DESIGN.md "Performance"): the sender must not mutate
            # the underlying buffer until the message is delivered; the
            # stack materializes to bytes at the client-delivery
            # boundary and wherever a security transform runs.
            return
        if isinstance(payload, bytearray):
            # Mutable buffers are snapshotted so callers may reuse them.
            self.payload = bytes(payload)
            return
        raise ParameterError(
            f"message payload must be bytes, got {type(payload).__name__}"
        )

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    #: Accounted bytes per header entry; a crude but consistent model of
    #: header overhead so piggybacking/multiplexing gains are measurable.
    HEADER_FIELD_BYTES = 4

    @property
    def header_size(self) -> int:
        """Accounted header bytes: labels plus per-field overhead."""
        size = self.HEADER_FIELD_BYTES * len(self.headers)
        if self.source is not None:
            size += 8
        if self.target is not None:
            size += 8
        return size

    @property
    def wire_size(self) -> int:
        """Total accounted bytes on the wire."""
        return self.size + self.header_size

    def copy(self) -> "Message":
        """An independent copy with a fresh message id."""
        return Message(
            payload=self.payload,
            source=self.source,
            target=self.target,
            headers=dict(self.headers),
            send_time=self.send_time,
            deliver_time=self.deliver_time,
            deadline=self.deadline,
            trace_id=self.trace_id,
        )

    @property
    def delay(self) -> Optional[float]:
        """Measured delay if both timestamps are present."""
        if self.send_time is None or self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:
        src = str(self.source) if self.source else "-"
        dst = str(self.target) if self.target else "-"
        return (
            f"<Message #{self.message_id} {src}->{dst} {self.size}B "
            f"hdr={sorted(self.headers)}>"
        )


def fast_message(
    payload: Union[bytes, memoryview],
    source: Optional[Label],
    target: Optional[Label],
    send_time: Optional[float] = None,
    trace_id: Optional[int] = None,
) -> Message:
    """A :class:`Message` built without the dataclass ``__init__``.

    For hot paths that construct two messages per delivered client
    message.  The caller guarantees ``payload`` is ``bytes`` or an
    adopted ``memoryview`` (the ``__post_init__`` validation would be a
    no-op), so the result is indistinguishable from ``Message(...)``.
    """
    message = Message.__new__(Message)
    message.payload = payload
    message.source = source
    message.target = target
    message.headers = {}
    message.send_time = send_time
    message.deliver_time = None
    message.deadline = None
    message.trace_id = trace_id
    message.message_id = next(_message_ids)
    return message
