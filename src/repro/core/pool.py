"""Object pools for hot-path allocation elision.

The simulator's steady-state send path creates one frame per network
message; with observability off, those objects carry no externally
retained state, so they can be recycled instead of churned through the
allocator.  Pools here are deliberately dumb: a bounded free list with
no locking (the simulator is single-threaded) and no automatic reset --
the acquiring site owns re-initialization, the releasing site owns
clearing references so pooled objects never pin payloads.

Pooling is *conservative by construction*: failing to release an object
merely falls back to garbage collection, so any code path unsure about
outstanding references (drops, sniffers, observability consumers) simply
skips the release.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["ObjectPool"]


class ObjectPool:
    """A bounded LIFO free list."""

    __slots__ = ("_free", "_cap")

    def __init__(self, cap: int = 256) -> None:
        self._free: List[Any] = []
        self._cap = cap

    def acquire(self) -> Any:
        """Pop a recycled object, or ``None`` if the pool is empty."""
        free = self._free
        return free.pop() if free else None

    def release(self, obj: Any) -> bool:
        """Return an object to the pool; ``False`` if the pool is full."""
        free = self._free
        if len(free) < self._cap:
            free.append(obj)
            return True
        return False

    def __len__(self) -> int:
        return len(self._free)
