"""The RMS abstraction itself (paper section 2).

An RMS is a simplex channel with three basic properties:

1. message boundaries are preserved;
2. messages are delivered in sequence;
3. clients are notified of an RMS failure,

plus the parameter set of :mod:`repro.core.params`.  :class:`Rms` is the
base class every provider (network layer, subtransport layer, transport
protocols) subclasses; it implements sending rules, delivery stamping,
failure notification, and the bookkeeping the experiments measure.

Capacity enforcement is deliberately *not* done here: section 4.4 makes
it a client responsibility ("The RMS provider is not responsible for
detecting potential capacity violations and blocking the sender").  The
base class only *counts* violations so experiments can show what happens
when clients misbehave (bench E14).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.message import Label, Message
from repro.core.params import RmsParams
from repro.errors import MessageTooLargeError, RmsFailedError
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port

__all__ = ["RmsLevel", "RmsState", "RmsStats", "Rms", "RmsProvider"]

_rms_ids = itertools.count(1)


class RmsLevel(enum.IntEnum):
    """The RMS levels of Figure 3, bottom to top."""

    NETWORK = 0
    SUBTRANSPORT = 1
    SUBUSER = 2
    USER = 3

    @property
    def layer(self) -> str:
        """Short layer label used by observability spans and metrics."""
        return ("net", "st", "subuser", "user")[int(self)]


class RmsState(enum.Enum):
    OPEN = "open"
    FAILED = "failed"
    DELETED = "deleted"


@dataclass
class RmsStats:
    """Counters kept by every RMS for tests and benchmarks."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0  # lost, corrupted-and-discarded, or overrun
    messages_late: int = 0  # delivered after their delay bound
    bytes_sent: int = 0
    bytes_delivered: int = 0
    capacity_violations: int = 0
    delays: List[float] = field(default_factory=list)

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    @property
    def loss_rate(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.messages_dropped / self.messages_sent


class Rms:
    """Base Real-Time Message Stream.

    Providers subclass and implement :meth:`_transmit`; they call
    :meth:`_deliver` when a message reaches the receiver, and
    :meth:`_drop` when one is lost.  Clients call :meth:`send`.
    """

    level: RmsLevel = RmsLevel.NETWORK

    def __init__(
        self,
        context: SimContext,
        params: RmsParams,
        sender: Label,
        receiver: Label,
        name: Optional[str] = None,
        receiver_port: Optional[Port] = None,
    ) -> None:
        self.context = context
        self.params = params
        self.sender = sender
        self.receiver = receiver
        self.rms_id = next(_rms_ids)
        self.name = name or f"rms{self.rms_id}"
        self.state = RmsState.OPEN
        self.stats = RmsStats()
        if receiver_port is not None:
            self.port = receiver_port
        else:
            self.port = Port(context.loop, name=f"{self.name}.rx")
        #: Fired with (rms, reason) on failure -- basic property 3.
        self.on_failure: Signal = Signal(context.loop)
        self.outstanding_bytes = 0
        self._last_delivered_id = 0
        #: Providers set this to route deliveries through
        #: :meth:`deliver_fast` (same bookkeeping, gated tracing).
        self.fast_path = False
        #: Per-size lateness thresholds memoized by :meth:`deliver_fast`.
        self._late_threshold: Dict[int, float] = {}
        self.created_at = context.now
        self.closed_at: Optional[float] = None
        self.layer = self.level.layer
        obs = context.obs
        if obs.enabled:
            # RmsStats stays the compatible per-stream facade; the
            # registry holds the same counters as labeled families so
            # they aggregate across streams and export uniformly.
            labels = dict(layer=self.layer, rms=self.name)
            metrics = obs.metrics
            self._m_sent = metrics.counter("rms_messages_sent", **labels)
            self._m_delivered = metrics.counter("rms_messages_delivered", **labels)
            self._m_dropped = metrics.counter("rms_messages_dropped", **labels)
            self._m_late = metrics.counter("rms_messages_late", **labels)
            self._m_bytes_sent = metrics.counter("rms_bytes_sent", **labels)
            self._m_bytes_delivered = metrics.counter(
                "rms_bytes_delivered", **labels
            )
            self._m_violations = metrics.counter(
                "rms_capacity_violations", **labels
            )
            self._m_delay = metrics.histogram("rms_delay_seconds", **labels)

    # -- client side ------------------------------------------------------

    def send(
        self,
        payload: Union[bytes, Message],
        deadline: Optional[float] = None,
    ) -> Message:
        """Send one message on the stream.

        ``payload`` may be raw bytes (a message is built with this RMS's
        labels) or a prepared :class:`Message`.  ``deadline`` is the
        transmission deadline used by deadline-ordered queues
        (section 4.3.1); when omitted, providers derive one from the
        RMS delay bound.
        """
        if self.state is RmsState.FAILED:
            raise RmsFailedError(f"{self.name} has failed")
        if self.state is RmsState.DELETED:
            raise RmsFailedError(f"{self.name} has been deleted")
        if isinstance(payload, Message):
            message = payload
        else:
            message = Message(payload, source=self.sender, target=self.receiver)
        if message.size > self.params.max_message_size:
            raise MessageTooLargeError(
                f"{self.name}: message of {message.size}B exceeds maximum "
                f"message size {self.params.max_message_size}B"
            )
        message.send_time = self.context.now
        if deadline is not None:
            message.deadline = deadline
        elif not self.params.delay_bound.is_unbounded:
            message.deadline = self.context.now + self.params.delay_bound.bound_for(
                message.size
            )
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.size
        self.outstanding_bytes += message.size
        violated = self.outstanding_bytes > self.params.capacity
        if violated:
            # Client capacity violation: guarantees are void (section 4.4)
            # but the provider does not block -- it only counts.
            self.stats.capacity_violations += 1
        self.context.tracer.record(
            "rms", "send", rms=self.name, id=message.message_id, size=message.size
        )
        obs = self.context.obs
        if obs.enabled:
            if message.trace_id is None:
                message.trace_id = obs.spans.new_trace()
            self._m_sent.inc()
            self._m_bytes_sent.inc(message.size)
            if violated:
                self._m_violations.inc()
            obs.spans.event(
                message.trace_id, self.layer, "send",
                rms=self.name, size=message.size,
            )
        self._transmit(message)
        return message

    def send_fast(self, message: Message, size: int, deadline: float) -> None:
        """Hot-path send: a prepared message, precomputed size and deadline.

        Behaviour-identical to :meth:`send` (same stats, same stamps,
        same transmit) minus the per-call re-derivation; anything
        unusual -- closed stream, oversized message -- falls back to the
        full path so every error and edge case stays in one place.
        """
        if self.state is not RmsState.OPEN or size > self.params.max_message_size:
            self.send(message, deadline)
            return
        message.send_time = self.context.now
        message.deadline = deadline
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        self.outstanding_bytes += size
        violated = self.outstanding_bytes > self.params.capacity
        if violated:
            stats.capacity_violations += 1
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.record(
                "rms", "send", rms=self.name, id=message.message_id, size=size
            )
        obs = self.context.obs
        if obs.enabled:
            if message.trace_id is None:
                message.trace_id = obs.spans.new_trace()
            self._m_sent.inc()
            self._m_bytes_sent.inc(size)
            if violated:
                self._m_violations.inc()
            obs.spans.event(
                message.trace_id, self.layer, "send",
                rms=self.name, size=size,
            )
        self._transmit(message)

    # -- provider side ----------------------------------------------------

    def _transmit(self, message: Message) -> None:
        """Carry ``message`` toward the receiver.  Subclasses implement."""
        raise NotImplementedError

    def _deliver(self, message: Message) -> None:
        """Deliver ``message`` at the receiver (enqueue on the port)."""
        if self.state is not RmsState.OPEN:
            return
        message.deliver_time = self.context.now
        self.outstanding_bytes = max(0, self.outstanding_bytes - message.size)
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += message.size
        delay = message.delay
        late = False
        if delay is not None:
            self.stats.delays.append(delay)
            if not self.params.delay_bound.is_unbounded:
                if delay > self.params.delay_bound.bound_for(message.size) + 1e-12:
                    self.stats.messages_late += 1
                    late = True
        obs = self.context.obs
        if obs.enabled:
            self._m_delivered.inc()
            self._m_bytes_delivered.inc(message.size)
            if delay is not None:
                self._m_delay.observe(delay)
            obs.spans.event(
                message.trace_id, self.layer, "deliver",
                rms=self.name, delay=delay,
            )
            if late:
                self._m_late.inc()
                obs.spans.event(
                    message.trace_id, self.layer, "late", rms=self.name
                )
        if message.message_id < self._last_delivered_id:
            # In-sequence delivery is a basic property; a violation is a
            # provider bug, surfaced loudly in tests via the trace.
            self.context.tracer.record(
                "rms", "out_of_order", rms=self.name, id=message.message_id
            )
        self._last_delivered_id = max(self._last_delivered_id, message.message_id)
        self.context.tracer.record(
            "rms", "deliver", rms=self.name, id=message.message_id, delay=delay
        )
        self.port.deliver(message)

    def deliver_fast(self, message: Message, size: int) -> None:
        """Hot-path delivery: same bookkeeping as :meth:`_deliver` with
        the tracer gated on whether it is actually collecting."""
        if self.state is not RmsState.OPEN:
            return
        context = self.context
        now = context.loop._now
        send_time = message.send_time
        message.deliver_time = now
        outstanding = self.outstanding_bytes - size
        self.outstanding_bytes = outstanding if outstanding > 0 else 0
        stats = self.stats
        stats.messages_delivered += 1
        stats.bytes_delivered += size
        late = False
        if send_time is None:
            delay = None
        else:
            delay = now - send_time
            stats.delays.append(delay)
            # Per-size lateness threshold, memoized from the same
            # ``bound_for`` the legacy path calls (bit-identical floats;
            # ``inf`` marks an unbounded stream).
            threshold = self._late_threshold.get(size)
            if threshold is None:
                bound = self.params.delay_bound
                if bound.is_unbounded:
                    threshold = float("inf")
                else:
                    threshold = bound.bound_for(size) + 1e-12
                self._late_threshold[size] = threshold
            if delay > threshold:
                stats.messages_late += 1
                late = True
        obs = context.obs
        if obs.enabled:
            self._m_delivered.inc()
            self._m_bytes_delivered.inc(size)
            if delay is not None:
                self._m_delay.observe(delay)
            obs.spans.event(
                message.trace_id, self.layer, "deliver",
                rms=self.name, delay=delay,
            )
            if late:
                self._m_late.inc()
                obs.spans.event(
                    message.trace_id, self.layer, "late", rms=self.name
                )
        message_id = message.message_id
        tracer = context.tracer
        if message_id < self._last_delivered_id:
            tracer.record(
                "rms", "out_of_order", rms=self.name, id=message_id
            )
        else:
            self._last_delivered_id = message_id
        if tracer.enabled:
            tracer.record(
                "rms", "deliver", rms=self.name, id=message_id, delay=delay
            )
        self.port.deliver(message)

    def _drop(self, message: Message, reason: str) -> None:
        """Record the loss of ``message`` (never delivered)."""
        self.outstanding_bytes = max(0, self.outstanding_bytes - message.size)
        self.stats.messages_dropped += 1
        self.context.tracer.record(
            "rms", "drop", rms=self.name, id=message.message_id, reason=reason
        )
        obs = self.context.obs
        if obs.enabled:
            self._m_dropped.inc()
            obs.spans.event(
                message.trace_id, self.layer, "drop",
                rms=self.name, reason=reason,
            )

    def fail(self, reason: str = "provider failure") -> None:
        """Fail the stream and notify clients (basic property 3)."""
        if self.state is not RmsState.OPEN:
            return
        self.state = RmsState.FAILED
        self.closed_at = self.context.now
        self.context.tracer.record("rms", "fail", rms=self.name, reason=reason)
        self.on_failure.fire(self, reason)

    def delete(self) -> None:
        """Tear the stream down cleanly (no failure notification)."""
        if self.state is RmsState.OPEN:
            self.state = RmsState.DELETED
            self.closed_at = self.context.now
            self.context.tracer.record("rms", "delete", rms=self.name)

    def close(self) -> None:
        """Idempotent teardown; already-failed or -deleted streams are a no-op.

        Subclasses that need provider-side cleanup override this (and
        keep it idempotent) so ``with``-blocks and the session layer can
        always call it without tracking state themselves.
        """
        self.delete()

    def __enter__(self) -> "Rms":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def is_open(self) -> bool:
        return self.state is RmsState.OPEN

    @property
    def connect_time(self) -> float:
        """Seconds the stream has been (or was) open, for accounting."""
        end = self.closed_at if self.closed_at is not None else self.context.now
        return end - self.created_at

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} {self.sender}->{self.receiver} "
            f"{self.state.value}>"
        )


class RmsProvider:
    """Interface of an RMS provider (network module, ST, ...).

    A client at one level may be a provider at a higher level
    (section 2); concrete providers implement :meth:`create_rms` with
    whatever negotiation and admission control their level requires.
    """

    def create_rms(
        self,
        sender: Label,
        receiver: Label,
        desired: RmsParams,
        acceptable: RmsParams,
    ) -> Rms:
        raise NotImplementedError

    def delete_rms(self, rms: Rms) -> None:
        rms.delete()
