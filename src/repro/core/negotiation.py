"""Parameter negotiation (paper section 2.4).

An RMS creation request carries *desired* and *acceptable* parameter
sets.  The actual parameters of the resulting RMS must be compatible
with the acceptable set; the provider matches the desired set as closely
as possible.  Providers describe what they can do with a
:class:`PerformanceLimits` per security/reliability combination
(section 3.1: "For each combination of security and reliability
parameters, the limits of the network's performance parameters for that
combination").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    StatisticalSpec,
    is_compatible,
)
from repro.errors import NegotiationError, ParameterError

__all__ = ["PerformanceLimits", "CapabilityTable", "negotiate", "combo_key"]


@dataclass(frozen=True)
class PerformanceLimits:
    """The best a provider can do for one parameter combination.

    ``best_delay`` is the tightest delay bound achievable; ``max_capacity``
    and ``max_message_size`` the largest supported values;
    ``floor_bit_error_rate`` the lowest error rate deliverable; and
    ``strongest_type`` the strongest delay-bound type offered.
    """

    best_delay: DelayBound
    max_capacity: int
    max_message_size: int
    floor_bit_error_rate: float = 0.0
    strongest_type: DelayBoundType = DelayBoundType.BEST_EFFORT
    max_delay_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.max_capacity <= 0 or self.max_message_size <= 0:
            raise ParameterError("performance limits must be positive")


def combo_key(params: RmsParams) -> Tuple[bool, bool, bool]:
    """The (reliability, authentication, privacy) combination key."""
    return (params.reliability, params.authentication, params.privacy)


class CapabilityTable:
    """Per-combination performance limits of a provider (section 3.1).

    A missing combination means the provider cannot directly support it
    (the paper allows a limit of "zero" for unsupported combinations).
    """

    def __init__(self) -> None:
        self._limits: Dict[Tuple[bool, bool, bool], PerformanceLimits] = {}

    def set_limits(
        self,
        reliability: bool,
        authentication: bool,
        privacy: bool,
        limits: PerformanceLimits,
    ) -> None:
        self._limits[(reliability, authentication, privacy)] = limits

    def set_uniform(self, limits: PerformanceLimits) -> None:
        """Offer the same limits for every combination."""
        for reliability in (False, True):
            for authentication in (False, True):
                for privacy in (False, True):
                    self._limits[(reliability, authentication, privacy)] = limits

    def limits_for(self, params: RmsParams) -> Optional[PerformanceLimits]:
        """Limits covering ``params``'s combination, if supported.

        A combination offering *more* security/reliability than requested
        also covers the request; the closest (fewest extra properties)
        supported combination wins.
        """
        want = combo_key(params)
        best: Optional[PerformanceLimits] = None
        best_extra = 4
        for key, limits in self._limits.items():
            if all(k or not w for w, k in zip(want, key)):
                extra = sum(1 for w, k in zip(want, key) if k and not w)
                if extra < best_extra:
                    best, best_extra = limits, extra
        return best

    def __len__(self) -> int:
        return len(self._limits)


def negotiate(
    desired: RmsParams,
    acceptable: RmsParams,
    capabilities: CapabilityTable,
) -> RmsParams:
    """Compute actual parameters per section 2.4.

    The result is element-wise between the desired and acceptable sets,
    compatible with the acceptable set, and as close to the desired set
    as the provider's limits allow.  Raises :class:`NegotiationError`
    when no compatible parameter set exists.
    """
    if not is_compatible(desired, acceptable):
        # The desired set must itself satisfy the client's own minimum,
        # otherwise the request is self-contradictory.
        raise NegotiationError(
            "desired parameter set is not compatible with the acceptable set"
        )
    limits = capabilities.limits_for(acceptable)
    if limits is None:
        raise NegotiationError(
            f"provider does not support combination {combo_key(acceptable)}"
        )

    # Delay bound: as tight as desired, never tighter than the provider's
    # best; reject if looser than acceptable.  For best-effort requests
    # the bound is not a guarantee -- it only orders queues (section
    # 2.3) -- so it is taken as offered and never grounds a rejection.
    if acceptable.delay_bound_type == DelayBoundType.BEST_EFFORT:
        delay_bound = desired.delay_bound
    elif desired.delay_bound.is_unbounded:
        # Best-effort request: no bound is promised at all.
        delay_bound = DelayBound.unbounded()
    else:
        actual_a = max(desired.delay_bound.a, limits.best_delay.a)
        actual_b = max(desired.delay_bound.b, limits.best_delay.b)
        delay_bound = DelayBound(actual_a, actual_b)
        if not delay_bound.no_greater_than(acceptable.delay_bound):
            raise NegotiationError(
                f"cannot meet delay bound {acceptable.delay_bound}; best is "
                f"{limits.best_delay}"
            )

    # Delay bound type: the strongest type the provider offers, capped at
    # the desired type, but at least the acceptable type.
    actual_type = DelayBoundType(min(desired.delay_bound_type, limits.strongest_type))
    if not actual_type.satisfies(acceptable.delay_bound_type):
        raise NegotiationError(
            f"provider offers at most {limits.strongest_type.name}, client "
            f"requires {acceptable.delay_bound_type.name}"
        )

    # Capacity and max message size: as large as desired up to the limit,
    # no less than acceptable.  Best-effort requests are never *rejected*
    # on capacity grounds (section 2.3), but the granted capacity is
    # still clamped to what the path's buffers can actually hold --
    # handing back an unachievable number would defeat the parameter's
    # purpose of protecting group-(2) buffers (section 4.4).
    capacity = min(desired.capacity, limits.max_capacity)
    if (
        capacity < acceptable.capacity
        and acceptable.delay_bound_type != DelayBoundType.BEST_EFFORT
    ):
        raise NegotiationError(
            f"capacity limit {limits.max_capacity} below acceptable "
            f"{acceptable.capacity}"
        )
    max_message_size = min(desired.max_message_size, limits.max_message_size)
    if max_message_size < acceptable.max_message_size:
        raise NegotiationError(
            f"max message size limit {limits.max_message_size} below acceptable "
            f"{acceptable.max_message_size}"
        )
    max_message_size = min(max_message_size, capacity)

    # Bit error rate: the provider's floor, if the client can accept it.
    bit_error_rate = max(desired.bit_error_rate, limits.floor_bit_error_rate)
    if (
        bit_error_rate > acceptable.bit_error_rate
        and acceptable.delay_bound_type != DelayBoundType.BEST_EFFORT
    ):
        raise NegotiationError(
            f"error-rate floor {limits.floor_bit_error_rate} above acceptable "
            f"{acceptable.bit_error_rate}"
        )
    bit_error_rate = min(bit_error_rate, 1.0)

    statistical: Optional[StatisticalSpec] = None
    if actual_type == DelayBoundType.STATISTICAL:
        spec = desired.statistical or acceptable.statistical
        if spec is None:
            raise NegotiationError("statistical RMS requires a StatisticalSpec")
        statistical = StatisticalSpec(
            average_load=spec.average_load,
            burstiness=spec.burstiness,
            delay_probability=min(spec.delay_probability, limits.max_delay_probability),
        )
        if (
            acceptable.statistical is not None
            and statistical.delay_probability
            < acceptable.statistical.delay_probability
        ):
            raise NegotiationError(
                "provider cannot guarantee the acceptable delay probability"
            )
    if actual_type == DelayBoundType.DETERMINISTIC and math.isinf(delay_bound.a):
        actual_type = DelayBoundType.BEST_EFFORT

    actual = RmsParams(
        reliability=desired.reliability,
        authentication=desired.authentication,
        privacy=desired.privacy,
        capacity=capacity,
        max_message_size=max_message_size,
        delay_bound=delay_bound,
        delay_bound_type=actual_type,
        statistical=statistical,
        bit_error_rate=bit_error_rate,
    )
    if acceptable.delay_bound_type == DelayBoundType.BEST_EFFORT:
        # Only the hard clauses bind for best-effort: security inclusion
        # and the physical maximum message size.
        if actual.max_message_size < acceptable.max_message_size:
            raise NegotiationError(
                "maximum message size below the acceptable minimum"
            )
    elif not is_compatible(actual, acceptable):
        raise NegotiationError(
            f"negotiated parameters {actual} are not compatible with the "
            f"acceptable set"
        )
    return actual
