"""The paper's primary contribution: Real-Time Message Streams."""

from repro.core.accounting import AccountingLedger, LedgerEntry, Tariff
from repro.core.message import Label, Message
from repro.core.negotiation import (
    CapabilityTable,
    PerformanceLimits,
    combo_key,
    negotiate,
)
from repro.core.params import (
    UNBOUNDED_DELAY,
    DelayBound,
    DelayBoundType,
    RmsParams,
    RmsRequest,
    StatisticalSpec,
    is_compatible,
)
from repro.core.rms import Rms, RmsLevel, RmsProvider, RmsState, RmsStats

__all__ = [
    "AccountingLedger",
    "CapabilityTable",
    "DelayBound",
    "DelayBoundType",
    "Label",
    "LedgerEntry",
    "Message",
    "PerformanceLimits",
    "Rms",
    "RmsLevel",
    "RmsParams",
    "RmsRequest",
    "RmsProvider",
    "RmsState",
    "RmsStats",
    "StatisticalSpec",
    "Tariff",
    "UNBOUNDED_DELAY",
    "combo_key",
    "is_compatible",
    "negotiate",
]
