"""RMS ownership and accounting (paper sections 2.4 and 5).

"If there is accounting, the creator owns the RMS in the sense of being
responsible for paying for its use" (2.4).  Section 5 sketches the
charging model: "a fixed RMS setup cost, plus a charge determined by the
RMS parameters, the number of bytes sent, and the RMS connect time."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.params import DelayBoundType, RmsParams
from repro.core.rms import Rms

__all__ = ["Tariff", "LedgerEntry", "AccountingLedger"]


@dataclass(frozen=True)
class Tariff:
    """Prices for the section-5 charging model (arbitrary currency units)."""

    setup_cost: float = 1.0
    per_byte: float = 1e-6
    per_second_connect: float = 0.01
    #: Per-second premium for reserved capacity, scaled by capacity bytes.
    per_capacity_byte_second: float = 1e-7
    #: Multipliers reflecting that stronger guarantees reserve more.
    type_multiplier: Dict[DelayBoundType, float] = field(
        default_factory=lambda: {
            DelayBoundType.BEST_EFFORT: 1.0,
            DelayBoundType.STATISTICAL: 2.0,
            DelayBoundType.DETERMINISTIC: 4.0,
        }
    )

    def parameter_rate(self, params: RmsParams) -> float:
        """Per-second charge implied by the RMS parameters."""
        multiplier = self.type_multiplier.get(params.delay_bound_type, 1.0)
        return (
            self.per_second_connect
            + self.per_capacity_byte_second * params.capacity
        ) * multiplier


@dataclass
class LedgerEntry:
    """The accumulated charge for one RMS, owned by its creator."""

    owner: str
    rms_name: str
    setup_cost: float
    bytes_charge: float = 0.0
    time_charge: float = 0.0

    @property
    def total(self) -> float:
        return self.setup_cost + self.bytes_charge + self.time_charge


class AccountingLedger:
    """Tracks per-owner charges for a set of RMSs."""

    def __init__(self, tariff: Tariff = Tariff()) -> None:
        self.tariff = tariff
        self.entries: List[LedgerEntry] = []
        self._open: Dict[int, LedgerEntry] = {}

    def open_rms(self, owner: str, rms: Rms) -> LedgerEntry:
        """Record creation: the creator owns and pays (section 2.4)."""
        entry = LedgerEntry(
            owner=owner, rms_name=rms.name, setup_cost=self.tariff.setup_cost
        )
        self.entries.append(entry)
        self._open[rms.rms_id] = entry
        return entry

    def close_rms(self, rms: Rms) -> LedgerEntry:
        """Finalize charges from the stream's counters and connect time."""
        entry = self._open.pop(rms.rms_id, None)
        if entry is None:
            raise KeyError(f"{rms.name} was never opened in this ledger")
        entry.bytes_charge = rms.stats.bytes_sent * self.tariff.per_byte
        entry.time_charge = rms.connect_time * self.tariff.parameter_rate(rms.params)
        return entry

    def owner_total(self, owner: str) -> float:
        return sum(entry.total for entry in self.entries if entry.owner == owner)

    @property
    def grand_total(self) -> float:
        return sum(entry.total for entry in self.entries)
