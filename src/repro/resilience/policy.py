"""Recovery policy: backoff schedule and the parameter degradation ladder.

Degradation follows section 2.4: any actual parameter set compatible
with the acceptable set satisfies the request, so a supervisor may
re-request with a weakened *desired* set -- stepping the delay-bound
type down (deterministic -> statistical -> best-effort), loosening the
delay bound, and shrinking capacity -- as long as every rung stays at or
above the acceptable floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.params import DelayBound, DelayBoundType, RmsParams, RmsRequest
from repro.errors import ParameterError

__all__ = ["ResiliencePolicy", "degradation_ladder"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard a supervised session fights to stay up."""

    #: Consecutive failed establishment attempts before giving up.
    max_attempts: int = 8
    #: Jittered exponential backoff between attempts.
    backoff_initial: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    #: Fractional jitter: each delay is scaled by ``1 + U(-j, +j)``.
    jitter: float = 0.5
    #: Prefer an alternate attached network after a failure.
    failover: bool = True
    #: Walk the degradation ladder when admission rejects a rung.
    degrade: bool = True
    #: Number of weakened rungs below the desired set.
    max_rungs: int = 4
    #: Queue sends while re-establishing (bounded by the request floor's
    #: capacity, or ``max_requeue_bytes`` when given).
    requeue: bool = True
    max_requeue_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be >= 1")
        if self.backoff_initial <= 0 or self.backoff_factor < 1:
            raise ParameterError("backoff schedule must grow from > 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError("jitter must be in [0, 1)")

    def backoff_delay(self, failures: int, rng) -> float:
        """Delay before attempt ``failures + 1`` (jitter from ``rng``)."""
        delay = min(
            self.backoff_cap,
            self.backoff_initial * self.backoff_factor ** failures,
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 1e-3)


def _weaken(current: RmsParams, floor: RmsParams) -> RmsParams:
    """One rung down from ``current``, never below ``floor``."""
    changes = {}
    # Delay-bound type: step down one level, but not below the floor's
    # type.  Deterministic only steps to statistical when a statistical
    # spec exists to reuse (a supervisor cannot invent a workload
    # description); otherwise it drops straight to best-effort.
    if current.delay_bound_type > floor.delay_bound_type:
        if (
            current.delay_bound_type is DelayBoundType.DETERMINISTIC
            and current.statistical is not None
            and floor.delay_bound_type <= DelayBoundType.STATISTICAL
        ):
            changes["delay_bound_type"] = DelayBoundType.STATISTICAL
        else:
            changes["delay_bound_type"] = DelayBoundType.BEST_EFFORT
    # Delay bound: double toward the floor's bound.
    if not current.delay_bound.is_unbounded:
        limit = floor.delay_bound
        a = current.delay_bound.a * 2
        b = current.delay_bound.b * 2
        if not limit.is_unbounded:
            a = min(a, limit.a) if limit.a > current.delay_bound.a else current.delay_bound.a
            b = min(b, limit.b) if limit.b > current.delay_bound.b else current.delay_bound.b
        else:
            target_type = changes.get("delay_bound_type", current.delay_bound_type)
            if target_type is DelayBoundType.BEST_EFFORT:
                changes["delay_bound"] = DelayBound.unbounded()
        if "delay_bound" not in changes and (a, b) != (
            current.delay_bound.a,
            current.delay_bound.b,
        ):
            changes["delay_bound"] = DelayBound(a, b)
    # Capacity: halve toward the floor (message size stays sendable).
    next_capacity = max(
        floor.capacity, current.capacity // 2, current.max_message_size
    )
    if next_capacity < current.capacity:
        changes["capacity"] = next_capacity
    if not changes:
        return current
    return current.with_(**changes)


def degradation_ladder(request: RmsRequest, max_rungs: int = 4) -> List[RmsRequest]:
    """The renegotiation ladder for a request, strongest first.

    Rung 0 is the original desired set; each later rung weakens the
    desired set one step toward the acceptable floor (which every rung
    keeps as its own floor, so any rung's establishment still satisfies
    the client's stated minimum).  The ladder stops when weakening
    converges or ``max_rungs`` is reached.
    """
    rungs = [RmsRequest(desired=request.desired, acceptable=request.floor)]
    current = request.desired
    floor = request.floor
    for _ in range(max_rungs):
        weakened = _weaken(current, floor)
        if weakened == current:
            break
        rungs.append(RmsRequest(desired=weakened, acceptable=floor))
        current = weakened
    return rungs
