"""Resilience: supervised RMS establishment, failover, and degradation.

The paper's basic RMS property 3 only promises that "clients are
notified of an RMS failure" (section 2.1).  This subsystem turns that
notification into recovery: a supervised session retries establishment
with jittered exponential backoff, fails over to an alternate attached
network when the node is multi-homed, and gracefully degrades the
requested parameter set from desired toward acceptable (the section 2.4
compatibility rules) when the surviving network cannot carry the
original request.  Transitions surface through ``Session.on_state_change``,
``obs`` span events on the ``resilience`` layer, and the
``rms_failovers_total`` metric family.
"""

from repro.resilience.policy import ResiliencePolicy, degradation_ladder
from repro.resilience.session import (
    RkomSession,
    Session,
    SessionState,
    StSession,
    TransportSession,
)
from repro.resilience.supervisor import RmsSupervisor

__all__ = [
    "ResiliencePolicy",
    "RkomSession",
    "RmsSupervisor",
    "Session",
    "SessionState",
    "StSession",
    "TransportSession",
    "degradation_ladder",
]
