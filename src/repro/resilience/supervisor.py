"""The RMS supervisor: establishment attempts under a resilience policy.

One supervisor drives one supervised ST RMS.  Its reaction to a failed
attempt depends on why it failed:

* ``AdmissionError`` -- the network refused the reservation; a leaner
  rung of the degradation ladder might fit, so degrade and retry now.
* ``NegotiationError`` -- the provider cannot meet even the acceptable
  floor; no rung will help *on this network*, so back off and let the
  next attempt prefer an alternate network.
* anything else (setup timeout, control-channel failure, ...) -- back
  off with jitter and retry, avoiding the network that just failed.

Every transition is counted in the ``rms_failovers_total`` metric family
and recorded as a span event on the ``resilience`` layer.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.params import RmsRequest, is_compatible
from repro.errors import AdmissionError, NegotiationError
from repro.resilience.policy import ResiliencePolicy, degradation_ladder
from repro.sim.context import SimContext
from repro.sim.events import TimerGroup
from repro.sim.process import Future
from repro.subtransport.st import SubtransportLayer

__all__ = ["RmsSupervisor", "record_transition"]


def record_transition(
    context: SimContext,
    trace: Optional[int],
    session: str,
    host: str,
    kind: str,
    detail: str = "",
) -> None:
    """Count and span-log one resilience transition.

    ``kind`` is one of retry / failover / degrade / reestablishing /
    recovered / gave_up -- together they form the ``rms_failovers_total``
    metric family.
    """
    context.tracer.record(
        "resilience", kind, session=session, detail=detail
    )
    obs = context.obs
    if obs.enabled:
        obs.metrics.counter(
            "rms_failovers_total", host=host, kind=kind, session=session
        ).inc()
        obs.spans.event(
            trace, "resilience", kind, session=session, detail=detail
        )


class RmsSupervisor:
    """Keeps one ST RMS established on behalf of a session."""

    def __init__(
        self,
        context: SimContext,
        st: SubtransportLayer,
        peer_host: str,
        port: str,
        request: RmsRequest,
        policy: ResiliencePolicy,
        fast_ack: bool = False,
        name: str = "supervised",
        on_established: Optional[Callable] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
        on_gave_up: Optional[Callable[[Exception], None]] = None,
        trace: Optional[int] = None,
    ) -> None:
        self.context = context
        self.st = st
        self.peer_host = peer_host
        self.port = port
        self.request = request
        self.policy = policy
        self.fast_ack = fast_ack
        self.name = name
        self.on_established = on_established or (lambda rms, degraded: None)
        self.on_transition = on_transition
        self.on_gave_up = on_gave_up or (lambda error: None)
        self.trace = trace
        self.rms = None
        if policy.degrade:
            self._rungs = degradation_ladder(request, policy.max_rungs)
        else:
            self._rungs = [RmsRequest(request.desired, request.floor)]
        self._rung = 0
        self._consecutive = 0
        self._closed = False
        self._current_network: Optional[str] = None
        self._avoid_network: Optional[str] = None
        self._rng = context.rng.stream(f"resilience:{name}")
        #: Backoff retries share one coalesced loop timer; ``stop``
        #: cancels any in-flight retry outright via ``cancel_all``.
        self._timers = TimerGroup(context.loop)

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._attempt()

    def stop(self) -> None:
        """Detach; a live RMS is left to the owning session to close."""
        self._closed = True
        self._timers.cancel_all()
        self.st.set_network_preference(self.peer_host, None)

    # ------------------------------------------------------------------

    def _note(self, kind: str, detail: str = "") -> None:
        record_transition(
            self.context, self.trace, self.name, self.st.host.name, kind, detail
        )
        if self.on_transition is not None:
            self.on_transition(kind, detail)

    def _attempt(self) -> None:
        if self._closed:
            return
        self._pick_network()
        rung = self._rungs[min(self._rung, len(self._rungs) - 1)]
        future = self.st.create_st_rms(
            self.peer_host, port=self.port, request=rung, fast_ack=self.fast_ack
        )
        future.add_done_callback(self._attempt_done)

    def _pick_network(self) -> None:
        """Steer the ST toward a usable network, avoiding the last bad one."""
        if not self.policy.failover:
            return
        usable = [
            network
            for network in self.st.networks
            if self.st.host.name in network.hosts
            and self.peer_host in network.hosts
            and network.can_reach(self.st.host.name, self.peer_host)
        ]
        if not usable:
            return
        pick = usable[0]
        for network in usable:
            if network.name != self._avoid_network:
                pick = network
                break
        if self._current_network is not None and pick.name != self._current_network:
            self._note("failover", f"{self._current_network}->{pick.name}")
        self.st.set_network_preference(self.peer_host, pick.name)
        self._current_network = pick.name

    def _attempt_done(self, future: Future) -> None:
        if self._closed:
            if not future.failed:
                self.st.close_st_rms(future.result())
            return
        try:
            rms = future.result()
        except AdmissionError as error:
            if self.policy.degrade and self._rung < len(self._rungs) - 1:
                # A leaner reservation may be admitted: degrade and
                # retry immediately on the same network.
                self._rung += 1
                self._note("degrade", str(error))
                self._attempt()
                return
            self._failure(error)
            return
        except NegotiationError as error:
            # Even the floor is beyond this provider; degradation
            # cannot help here.  Back off and try elsewhere.
            self._failure(error)
            return
        except Exception as error:  # setup timeout, control failure, ...
            self._failure(error)
            return
        self._established(rms)

    def _failure(self, error: Exception) -> None:
        self._consecutive += 1
        self._avoid_network = self._current_network
        if self._consecutive >= self.policy.max_attempts:
            self._note("gave_up", str(error))
            self.on_gave_up(error)
            return
        delay = self.policy.backoff_delay(self._consecutive - 1, self._rng)
        self._note(
            "retry", f"attempt {self._consecutive + 1} in {delay:.3f}s ({error})"
        )
        self._timers.call_after(delay, self._attempt)

    def _established(self, rms) -> None:
        self._consecutive = 0
        self._avoid_network = None
        self.rms = rms
        if rms.binding is not None:
            self._current_network = rms.binding.network_rms.network.name
        degraded = not is_compatible(rms.params, self.request.desired)
        rms.on_failure.listen(self._rms_failed)
        self._note("recovered", f"network={self._current_network}")
        self.on_established(rms, degraded)

    def _rms_failed(self, rms, reason: str) -> None:
        if self._closed or rms is not self.rms:
            return
        self.rms = None
        self._avoid_network = self._current_network
        # Aim for full quality again: a different network (or a healed
        # one) may satisfy the original desired set.
        self._rung = 0
        self._note("reestablishing", reason)
        self._attempt()
