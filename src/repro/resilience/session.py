"""Session handles: the one client-facing shape for supervised channels.

``DashSystem.connect`` returns one of these regardless of the kind of
channel underneath (raw ST RMS, reliable stream, RKOM request/reply).
A session exposes ``send``/``close``, context-manager support, an
``established`` future resolving on first establishment, and an
``on_state_change`` signal walking the state machine::

    ESTABLISHING -> UP <-> DEGRADED
         |          \\        /
         v           RE-ESTABLISHING -> FAILED
       FAILED                 (any state) -> CLOSED

With a :class:`ResiliencePolicy`, failures move the session to
RE-ESTABLISHING while the supervisor retries / fails over / degrades;
without one, the first failure is terminal (FAILED), matching the
paper's bare notify-on-failure semantics.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.core.message import Message
from repro.core.params import (
    DelayBound,
    DelayBoundType,
    RmsParams,
    RmsRequest,
    is_compatible,
)
from repro.errors import (
    CapacityError,
    RmsFailedError,
    TransportError,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.supervisor import RmsSupervisor, record_transition
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port
from repro.sim.process import Future
from repro.transport.stream import StreamConfig, open_stream

__all__ = [
    "RkomSession",
    "Session",
    "SessionState",
    "SessionStats",
    "StSession",
    "TransportSession",
]

_session_ids = itertools.count(1)


class SessionState(enum.Enum):
    ESTABLISHING = "establishing"
    UP = "up"
    DEGRADED = "degraded"
    RE_ESTABLISHING = "re-establishing"
    FAILED = "failed"
    CLOSED = "closed"


@dataclass
class SessionStats:
    messages_sent: int = 0
    messages_queued: int = 0
    queue_drops: int = 0
    recoveries: int = 0
    degradations: int = 0
    failovers: int = 0


def _payload_size(payload) -> int:
    if isinstance(payload, Message):
        return payload.size
    return len(payload)


class Session:
    """Base class of all session handles."""

    kind = "session"

    def __init__(
        self,
        context: SimContext,
        name: Optional[str] = None,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.context = context
        self.session_id = next(_session_ids)
        self.name = name or f"session{self.session_id}"
        self.policy = policy
        self._request: Optional[RmsRequest] = None
        self.state = SessionState.ESTABLISHING
        #: Fired with (session, old_state, new_state, reason).
        self.on_state_change: Signal = Signal(context.loop)
        #: Resolves to the underlying channel on first establishment
        #: (or fails when establishment gives up).
        self.established: Future = Future(context.loop)
        self.stats = SessionStats()
        obs = context.obs
        self._trace = obs.spans.new_trace() if obs.enabled else None
        if obs.enabled:
            obs.spans.event(
                self._trace, "resilience", "session_open",
                session=self.name, kind=self.kind,
            )

    # -- state machine -----------------------------------------------------

    def _set_state(self, new_state: SessionState, reason: str = "") -> None:
        if self.state is new_state or self.state is SessionState.CLOSED:
            return
        old, self.state = self.state, new_state
        self.context.tracer.record(
            "resilience", "session_state", session=self.name,
            frm=old.value, to=new_state.value, reason=reason,
        )
        obs = self.context.obs
        if obs.enabled:
            obs.spans.event(
                self._trace, "resilience", "session_state",
                session=self.name, frm=old.value, to=new_state.value,
                reason=reason,
            )
        self.on_state_change.fire(self, old, new_state, reason)

    @property
    def is_up(self) -> bool:
        return self.state in (SessionState.UP, SessionState.DEGRADED)

    @property
    def request(self) -> Optional[RmsRequest]:
        """The normalized :class:`RmsRequest` behind this session.

        ST sessions carry the request they were opened with; stream
        sessions derive one from their :class:`StreamConfig` data path;
        RKOM sessions take their parameters from ``RkomConfig`` and
        expose ``None``.
        """
        return self._request

    @request.setter
    def request(self, value: Optional[RmsRequest]) -> None:
        self._request = value

    # -- lifetime ----------------------------------------------------------

    def close(self) -> None:
        """Idempotent teardown of the underlying channel."""
        if self.state is SessionState.CLOSED:
            return
        self._teardown()
        if not self.established.done:
            self.established.set_exception(
                RmsFailedError(f"session {self.name} closed")
            )
        self._set_state(SessionState.CLOSED, "closed by client")

    def _teardown(self) -> None:
        raise NotImplementedError

    def send(self, payload):
        raise NotImplementedError

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state.value}>"


class _QueueMixin:
    """Bounded re-queueing of sends while the channel is down (§4.4:

    overflow is the client's problem -- we drop and count rather than
    grow without bound)."""

    def _init_queue(self, limit: int) -> None:
        self._queue: List = []
        self._queued_bytes = 0
        self._queue_limit = limit

    def _enqueue(self, payload) -> None:
        size = _payload_size(payload)
        allowed = (
            self.policy is not None
            and self.policy.requeue
            and self._queued_bytes + size <= self._queue_limit
        )
        if not allowed:
            self.stats.queue_drops += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter(
                    "session_requeue_drops", session=self.name
                ).inc()
            return
        self._queue.append(payload)
        self._queued_bytes += size
        self.stats.messages_queued += 1

    def _drop_queue(self) -> None:
        self.stats.queue_drops += len(self._queue)
        self._queue = []
        self._queued_bytes = 0


class StSession(Session, _QueueMixin):
    """A supervised (or bare) subtransport RMS."""

    kind = "st"

    def __init__(
        self,
        context: SimContext,
        st,
        peer_host: str,
        port: str,
        request: RmsRequest,
        policy: Optional[ResiliencePolicy] = None,
        fast_ack: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(context, name=name, policy=policy)
        self.st = st
        self.peer_host = peer_host
        self.port_name = port
        self.request = request
        self.fast_ack = fast_ack
        self.rms = None
        self._supervisor: Optional[RmsSupervisor] = None
        limit = request.floor.capacity
        if policy is not None and policy.max_requeue_bytes is not None:
            limit = policy.max_requeue_bytes
        self._init_queue(limit)
        if policy is None:
            future = st.create_st_rms(
                peer_host, port=port, request=request, fast_ack=fast_ack
            )
            future.add_done_callback(self._single_shot_done)
        else:
            self._supervisor = RmsSupervisor(
                context,
                st,
                peer_host,
                port,
                request,
                policy,
                fast_ack=fast_ack,
                name=self.name,
                on_established=self._established,
                on_transition=self._transition,
                on_gave_up=self._gave_up,
                trace=self._trace,
            )
            self._supervisor.start()

    # -- unsupervised path -------------------------------------------------

    def _single_shot_done(self, future: Future) -> None:
        if self.state is SessionState.CLOSED:
            if not future.failed:
                self.st.close_st_rms(future.result())
            return
        if future.failed:
            try:
                future.result()
            except Exception as error:
                self._set_state(SessionState.FAILED, str(error))
                self.established.set_exception(error)
            return
        rms = future.result()
        rms.on_failure.listen(self._unsupervised_failed)
        self._established(rms, not is_compatible(rms.params, self.request.desired))

    def _unsupervised_failed(self, rms, reason: str) -> None:
        if rms is self.rms and self._supervisor is None:
            self.rms = None
            self._drop_queue()
            self._set_state(SessionState.FAILED, reason)

    # -- supervisor callbacks ----------------------------------------------

    def _established(self, rms, degraded: bool) -> None:
        self.rms = rms
        if self.established.done:
            self.stats.recoveries += 1
        if degraded:
            self.stats.degradations += 1
            self._set_state(SessionState.DEGRADED, "parameters below desired")
        else:
            self._set_state(SessionState.UP, "established")
        if not self.established.done:
            self.established.set_result(rms)
        self._flush_queue()

    def _transition(self, kind: str, detail: str) -> None:
        if kind == "failover":
            self.stats.failovers += 1
        elif kind == "reestablishing":
            self._set_state(SessionState.RE_ESTABLISHING, detail)

    def _gave_up(self, error: Exception) -> None:
        self._drop_queue()
        self._set_state(SessionState.FAILED, str(error))
        if not self.established.done:
            self.established.set_exception(error)

    # -- client API --------------------------------------------------------

    def send(self, payload, deadline: Optional[float] = None):
        if self.state in (SessionState.FAILED, SessionState.CLOSED):
            raise RmsFailedError(f"session {self.name} is {self.state.value}")
        if self.rms is not None and self.rms.is_open:
            self.stats.messages_sent += 1
            return self.rms.send(payload, deadline=deadline)
        self._enqueue(payload)
        return None

    def _flush_queue(self) -> None:
        while self._queue and self.rms is not None and self.rms.is_open:
            payload = self._queue.pop(0)
            self._queued_bytes -= _payload_size(payload)
            try:
                self.rms.send(payload)
            except (CapacityError, RmsFailedError):
                # A degraded rung may carry less; the overflow is
                # dropped and counted, not silently retried forever.
                self.stats.queue_drops += 1
            else:
                self.stats.messages_sent += 1

    @property
    def port(self) -> Port:
        """The receiver-side port; stable across re-establishments."""
        for network in self.st.networks:
            if self.peer_host in network.hosts:
                return network.hosts[self.peer_host].bind_port(self.port_name)
        raise TransportError(
            f"no common network between {self.st.host.name} and {self.peer_host}"
        )

    def _teardown(self) -> None:
        if self._supervisor is not None:
            self._supervisor.stop()
        if self.rms is not None and self.rms.is_open:
            self.st.close_st_rms(self.rms)
        self._drop_queue()


def _stream_data_request(config: StreamConfig) -> RmsRequest:
    """The request the stream's data RMS will be opened with.

    Mirrors the derivation in :func:`repro.transport.stream.open_stream`
    so ``session.request`` reports the same desired/acceptable pair the
    establishment path actually negotiates.
    """
    if config.data_delay_bound is not None:
        bound = DelayBound(config.data_delay_bound, 2e-6)
        bound_loose = DelayBound(config.data_delay_bound * 2, 1e-5)
    else:
        bound = DelayBound.unbounded()
        bound_loose = DelayBound.unbounded()
    desired = RmsParams(
        capacity=config.data_capacity,
        max_message_size=config.data_max_message,
        delay_bound=bound,
        delay_bound_type=DelayBoundType.BEST_EFFORT,
    )
    return RmsRequest(desired=desired, acceptable=desired.with_(delay_bound=bound_loose))


class TransportSession(Session, _QueueMixin):
    """A supervised (or bare) reliable byte stream.

    Re-establishment salvages messages the failed incarnation had not
    seen acknowledged and resends them first -- delivery across a
    failure is therefore at-least-once (an ack lost in the failure
    window shows up as a duplicate at the receiver).  Receiving goes
    through the session's own stable port, so the application does not
    notice incarnations changing underneath.
    """

    kind = "stream"

    def __init__(
        self,
        context: SimContext,
        sender_st,
        receiver_st,
        config: Optional[StreamConfig] = None,
        policy: Optional[ResiliencePolicy] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(context, name=name, policy=policy)
        self.sender_st = sender_st
        self.receiver_st = receiver_st
        self.config = config or StreamConfig()
        self.request = _stream_data_request(self.config)
        self.stream = None
        self._consecutive = 0
        self._rng = context.rng.stream(f"resilience:{self.name}")
        limit = self.config.data_capacity
        if policy is not None and policy.max_requeue_bytes is not None:
            limit = policy.max_requeue_bytes
        self._init_queue(limit)
        self.rx_port = Port(context.loop, name=f"{self.name}.rx")
        #: The receive relay only engages when the session's own
        #: receive() is used; legacy callers holding the raw stream keep
        #: consuming from it directly.
        self._relay_active = False
        self._open_attempt()

    def _open_attempt(self) -> None:
        future = open_stream(
            self.context, self.sender_st, self.receiver_st, self.config
        )
        future.add_done_callback(self._open_done)

    def _open_done(self, future: Future) -> None:
        if self.state is SessionState.CLOSED:
            if not future.failed:
                future.result().close()
            return
        if future.failed:
            try:
                future.result()
            except Exception as error:
                self._open_failed(error)
            return
        stream = future.result()
        self._consecutive = 0
        self.stream = stream
        stream.on_failed.listen(self._stream_failed)
        if self._relay_active:
            stream.drain_to(self.rx_port.deliver)
        if self.established.done:
            self.stats.recoveries += 1
            self._note("recovered", "stream re-established")
        self._set_state(SessionState.UP, "established")
        if not self.established.done:
            self.established.set_result(stream)
        self._flush_queue()

    def _open_failed(self, error: Exception) -> None:
        self._consecutive += 1
        if self.policy is None or self._consecutive >= self.policy.max_attempts:
            if self.policy is not None:
                self._note("gave_up", str(error))
            self._drop_queue()
            self._set_state(SessionState.FAILED, str(error))
            if not self.established.done:
                self.established.set_exception(error)
            return
        delay = self.policy.backoff_delay(self._consecutive - 1, self._rng)
        self._note("retry", f"attempt {self._consecutive + 1} in {delay:.3f}s")
        self.context.loop.call_after(delay, self._open_attempt)

    def _stream_failed(self, stream, reason: str) -> None:
        if stream is not self.stream or self.state is SessionState.CLOSED:
            return
        salvaged = stream.salvage_unsent()
        self.stream = None
        if self.policy is None:
            self._drop_queue()
            self._set_state(SessionState.FAILED, reason)
            return
        # Salvage precedes anything queued later: earlier sends first.
        for payload in reversed(salvaged):
            self._queue.insert(0, payload)
            self._queued_bytes += _payload_size(payload)
        while self._queued_bytes > self._queue_limit and self._queue:
            dropped = self._queue.pop()
            self._queued_bytes -= _payload_size(dropped)
            self.stats.queue_drops += 1
        self._set_state(SessionState.RE_ESTABLISHING, reason)
        self._note("reestablishing", reason)
        self._open_attempt()

    def _note(self, kind: str, detail: str) -> None:
        record_transition(
            self.context, self._trace, self.name,
            self.sender_st.host.name, kind, detail,
        )

    # -- client API --------------------------------------------------------

    def send(self, payload: bytes) -> Future:
        if self.state in (SessionState.FAILED, SessionState.CLOSED):
            raise TransportError(f"session {self.name} is {self.state.value}")
        if self.stream is not None and not self.stream.failed:
            self.stats.messages_sent += 1
            return self.stream.send(payload)
        self._enqueue(payload)
        accepted = Future(self.context.loop)
        accepted.set_result(None)
        return accepted

    def _flush_queue(self) -> None:
        while self._queue and self.stream is not None and not self.stream.failed:
            payload = self._queue.pop(0)
            self._queued_bytes -= _payload_size(payload)
            self.stats.messages_sent += 1
            self.stream.send(payload)

    def receive(self) -> Future:
        """The next delivered message, across incarnations."""
        if not self._relay_active:
            self._relay_active = True
            if self.stream is not None:
                self.stream.drain_to(self.rx_port.deliver)
        return self.rx_port.get()

    def _teardown(self) -> None:
        if self.stream is not None:
            self.stream.close()
            self.stream = None
        self._drop_queue()


class RkomSession(Session):
    """Request/reply calls to one peer through the shared RKOM service.

    The service already retransmits with backoff and re-establishes its
    channel after failures; the session adds the uniform handle, state
    reporting, and transition metrics on top.
    """

    kind = "rkom"

    def __init__(
        self,
        context: SimContext,
        rkom,
        peer_host: str,
        policy: Optional[ResiliencePolicy] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(context, name=name, policy=policy)
        self.rkom = rkom
        self.peer_host = peer_host
        self._unsubscribe = rkom.on_channel_event.listen(self._channel_event)
        # Channels are created lazily by the first call; the session is
        # usable immediately.
        self.established.set_result(self)

    def _channel_event(self, peer_host: str, what: str) -> None:
        if peer_host != self.peer_host or self.state is SessionState.CLOSED:
            return
        if what == "ready":
            if self.state is not SessionState.ESTABLISHING:
                self.stats.recoveries += 1
            self._set_state(SessionState.UP, "channel ready")
        else:
            record_transition(
                self.context, self._trace, self.name,
                self.rkom.st.host.name, "reestablishing", "channel failed",
            )
            self._set_state(
                SessionState.RE_ESTABLISHING,
                "channel failed; next call re-establishes",
            )

    def call(
        self, op: str, payload: bytes = b"", timeout: Optional[float] = None
    ) -> Future:
        if self.state is SessionState.CLOSED:
            raise TransportError(f"session {self.name} is closed")
        self.stats.messages_sent += 1
        return self.rkom.call(self.peer_host, op, payload, timeout=timeout)

    def send(self, payload: bytes) -> Future:
        """Fire a call to the conventional ``send`` operation."""
        return self.call("send", payload)

    def _teardown(self) -> None:
        self._unsubscribe()
