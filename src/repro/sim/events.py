"""Discrete-event simulation core.

The DASH system of the paper ran on real machines; this reproduction runs
on a deterministic discrete-event simulator.  :class:`EventLoop` keeps a
timer queue of timestamped callbacks.  All timing-sensitive behaviour in
the library (delay bounds, deadlines, retransmission timers, CPU
scheduling) is expressed through this single clock, which makes every
experiment reproducible bit-for-bit from its random seed.

Times are floats in *seconds* of simulated time.

Implementation: a hybrid calendar-wheel / heap timer queue.  Events due
*now* (``call_soon`` and ``call_at(now)``) go to a plain FIFO deque --
the dominant case on the protocol fast path, serviced without any heap
comparison.  Future events within the wheel horizon are hashed by
timestamp into one of ``_WHEEL_SLOTS`` per-slot heaps of
``(time, seq, handle)`` tuples, so ordering comparisons happen on
C-level tuples rather than via ``EventHandle.__lt__``.  Events beyond
the horizon wait in a single overflow heap and migrate into the wheel as
the clock advances.  The dispatch order is the exact total order of the
original single-heap implementation -- ``(time, seq)`` with FIFO at
equal timestamps -- so seeded runs reproduce bit-identically.

Cancelled events are removed lazily; when more than a quarter of the
queued entries are dead the queue compacts in place.  Executed handles
are recycled through a free pool when the caller kept no reference
(checked via ``sys.getrefcount``), so steady-state scheduling allocates
nothing.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from bisect import bisect_right
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SchedulingError

__all__ = [
    "DEFAULT_IDLE_MAX_EVENTS",
    "EventHandle",
    "EventLoop",
    "GroupTimer",
    "Signal",
    "TimerGroup",
]

#: Runaway guard shared by every drain-until-idle entry point
#: (``EventLoop.run_while_pending``/``run_until_idle``, ``SimContext``,
#: ``DashSystem``) so the layers cannot drift apart.
DEFAULT_IDLE_MAX_EVENTS = 10_000_000

# Wheel geometry: 512 slots of 1 ms cover a 512 ms horizon, comfortably
# wider than any single timer used by the protocol stack (propagation
# delays, retransmission timers, delay bounds are all well under that).
_WHEEL_SLOTS = 512
_WHEEL_GRANULARITY = 0.001

# Compaction threshold: rebuild the queue when at least _COMPACT_MIN
# cancelled entries make up over a quarter of everything queued.
_COMPACT_MIN = 64

# Handle free-pool bound; beyond this, executed handles are simply
# dropped for the garbage collector.
_POOL_CAP = 4096

_getrefcount = getattr(sys, "getrefcount", None)


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled",
                 "_queued", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._queued = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _noop
        self._args = ()
        if self._queued and self._loop is not None:
            self._loop._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        self._callback(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


def _no_refcount(_obj: Any) -> int:
    """Stand-in when ``sys.getrefcount`` is unavailable (non-CPython):
    reports an impossible count so handles are never recycled."""
    return 0


class EventLoop:
    """A deterministic discrete-event scheduler.

    Events scheduled for the same instant run in scheduling order (FIFO),
    which keeps protocol traces deterministic.
    """

    def __init__(self, start_time: float = 0.0, batch_dispatch: bool = True) -> None:
        self._now = float(start_time)
        self._seq = itertools.count()
        self._running = False
        self._events_run = 0
        #: Batch dispatch drains the now-bucket and each due wheel slot as
        #: one block (bulk accounting, no per-entry heappop).  The flag
        #: exists for the E20 ablation and for the trace-equivalence
        #: tests; both modes execute the identical (time, seq) order.
        self._batch_dispatch = batch_dispatch
        #: True when the previous run() stopped because the next live
        #: event lay beyond the idle grace, rather than on an exhausted
        #: event budget (run_while_pending distinguishes the two).
        self._stopped_on_grace = False
        # Timer queue state -- see the module docstring.
        self._bucket: Deque[EventHandle] = deque()
        self._slots: List[List[Tuple[float, int, EventHandle]]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        self._far: List[Tuple[float, int, EventHandle]] = []
        self._gran = _WHEEL_GRANULARITY
        self._inv_gran = 1.0 / _WHEEL_GRANULARITY
        self._base = int(self._now * self._inv_gran)
        # Occupancy hint: no occupied wheel slot has an absolute index in
        # [_base, _scan_slot), so the next-event scan may start there
        # instead of walking every empty slot from the origin each
        # iteration.  Maintained by insertions (which may lower it) and
        # by the scan itself (which raises it past empty slots).
        self._scan_slot = self._base
        #: Absolute slot number whose list is known fully sorted (the
        #: remainder of a batch cut stays sorted), or -1.  Lets repeated
        #: batch drains of one dense slot skip the re-sort; every push
        #: into the slot and every structural rebuild invalidates it.
        self._sorted_slot = -1
        #: True while a dispatch batch is mid-execution: its entries are
        #: outside every container, so compaction (which rebuilds the
        #: counters from the containers) must wait for the batch to end.
        self._in_batch = False
        self._wheel_count = 0
        self._queued_count = 0
        self._cancelled_in_queue = 0
        self._pool: List[EventHandle] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for tests and tracing)."""
        return self._events_run

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._queued_count - self._cancelled_in_queue

    @property
    def queue_depth(self) -> int:
        """Total queued entries, including cancelled ones awaiting
        compaction (introspection for tests and telemetry)."""
        return self._queued_count

    # -- scheduling ----------------------------------------------------

    def _acquire(
        self, when: float, callback: Callable[..., None], args: Tuple[Any, ...]
    ) -> EventHandle:
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = when
            handle._seq = next(self._seq)
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            handle = EventHandle(when, next(self._seq), callback, args)
            handle._loop = self
        handle._queued = True
        self._queued_count += 1
        return handle

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        now = self._now
        if when < now:
            raise SchedulingError(
                f"cannot schedule event at {when:.6f}, now is {now:.6f}"
            )
        handle = self._acquire(when, callback, args)
        if when == now:
            self._bucket.append(handle)
        else:
            slot_no = int(when * self._inv_gran)
            if slot_no - self._base < _WHEEL_SLOTS:
                if self._batch_dispatch:
                    # Batched slots are plain dirty lists: O(1) appends
                    # here, one lazy sort when the dispatch scan reaches
                    # the slot -- half the ordering work of push+drain
                    # heap discipline, and cheaper scheduling on the
                    # message path.
                    self._slots[slot_no % _WHEEL_SLOTS].append(
                        (when, handle._seq, handle)
                    )
                else:
                    heapq.heappush(
                        self._slots[slot_no % _WHEEL_SLOTS],
                        (when, handle._seq, handle),
                    )
                self._wheel_count += 1
                if slot_no < self._scan_slot:
                    self._scan_slot = slot_no
                if slot_no == self._sorted_slot:
                    self._sorted_slot = -1
            else:
                heapq.heappush(self._far, (when, handle._seq, handle))
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time, after pending
        same-time events."""
        handle = self._acquire(self._now, callback, args)
        self._bucket.append(handle)
        return handle

    # -- queue maintenance ---------------------------------------------

    def _rebase(self) -> None:
        """Advance the wheel origin to the current time and migrate
        overflow events that fell inside the horizon."""
        slot_no = int(self._now * self._inv_gran)
        if slot_no > self._base:
            self._base = slot_no
        far = self._far
        if far:
            horizon = self._base + _WHEEL_SLOTS
            inv_gran = self._inv_gran
            slots = self._slots
            batched = self._batch_dispatch
            while far and int(far[0][0] * inv_gran) < horizon:
                entry = heapq.heappop(far)
                slot_no = int(entry[0] * inv_gran)
                if batched:
                    slots[slot_no % _WHEEL_SLOTS].append(entry)
                else:
                    heapq.heappush(slots[slot_no % _WHEEL_SLOTS], entry)
                self._wheel_count += 1
                if slot_no < self._scan_slot:
                    self._scan_slot = slot_no
                if slot_no == self._sorted_slot:
                    self._sorted_slot = -1

    def _note_cancel(self) -> None:
        self._cancelled_in_queue += 1
        if self._in_batch:
            return  # compaction resumes at the next cancel after the batch
        count = self._cancelled_in_queue
        if count >= _COMPACT_MIN and count * 4 >= self._queued_count:
            self._compact()

    def _release(self, dropped: List[EventHandle]) -> None:
        """Recycle handles nobody else references.  Mutates structures in
        place only -- safe mid-``run``."""
        pool = self._pool
        getref = _getrefcount
        while dropped:
            handle = dropped.pop()
            if (
                getref is not None
                and len(pool) < _POOL_CAP
                and getref(handle) == 2
            ):
                pool.append(handle)

    def _compact(self) -> None:
        """Physically remove cancelled entries.  All containers are
        filtered in place so references hoisted by a running ``run()``
        stay valid."""
        dropped: List[EventHandle] = []
        bucket = self._bucket
        if bucket:
            kept = []
            for handle in bucket:
                if handle._cancelled:
                    handle._queued = False
                    dropped.append(handle)
                else:
                    kept.append(handle)
            bucket.clear()
            bucket.extend(kept)
        wheel_count = 0
        for slot in self._slots:
            if not slot:
                continue
            live = [entry for entry in slot if not entry[2]._cancelled]
            if len(live) != len(slot):
                for entry in slot:
                    if entry[2]._cancelled:
                        entry[2]._queued = False
                        dropped.append(entry[2])
                slot[:] = live
                if not self._batch_dispatch:
                    heapq.heapify(slot)
            wheel_count += len(live)
        far = self._far
        if far:
            live = [entry for entry in far if not entry[2]._cancelled]
            if len(live) != len(far):
                for entry in far:
                    if entry[2]._cancelled:
                        entry[2]._queued = False
                        dropped.append(entry[2])
                far[:] = live
                heapq.heapify(far)
        self._wheel_count = wheel_count
        self._queued_count = len(bucket) + wheel_count + len(far)
        self._cancelled_in_queue = 0
        self._sorted_slot = -1
        self._release(dropped)

    # -- dispatch ------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        idle_grace: Optional[float] = None,
    ) -> float:
        """Run events in time order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock then advances exactly to ``until``), when the
        next live event is more than ``idle_grace`` seconds past the
        current clock (the clock stays at the last executed event), or
        after ``max_events`` callbacks.  Returns the simulated time at
        which the run stopped.  ``until`` and ``idle_grace`` are mutually
        exclusive.
        """
        if self._running:
            raise SchedulingError("event loop is already running (reentrant run())")
        if idle_grace is not None:
            if until is not None:
                raise SchedulingError(
                    "run() takes either until or idle_grace, not both"
                )
            if idle_grace < 0:
                raise SchedulingError(f"negative idle_grace {idle_grace!r}")
        self._running = True
        self._stopped_on_grace = False
        executed = 0
        ran = 0
        budget = -1 if max_events is None else max_events
        batched = self._batch_dispatch
        # Hoisted locals: every container is mutated strictly in place
        # (including by _compact), so these bindings stay valid across
        # arbitrary callback re-entry into the scheduler.
        bucket = self._bucket
        bucket_popleft = bucket.popleft
        slots = self._slots
        far = self._far
        pool = self._pool
        getref = _getrefcount or _no_refcount
        heappop = heapq.heappop
        inf = float("inf")
        self._rebase()
        try:
            while True:
                now = self._now
                # Next wheel/overflow event, if any.  The slot hash is
                # monotone in time, so the first occupied slot from the
                # wheel origin holds the wheel minimum.
                nxt_slot = None
                nxt_time = 0.0
                if self._wheel_count:
                    base = self._base
                    start = self._scan_slot
                    if start < base:
                        start = base
                    for slot_no in range(start, base + _WHEEL_SLOTS):
                        slot = slots[slot_no % _WHEEL_SLOTS]
                        if slot:
                            if batched and slot_no != self._sorted_slot:
                                # Batched slots are append-only dirty
                                # lists; the scan is the single point
                                # that orders them (a sorted list is a
                                # valid min-view, and the memo makes
                                # repeat visits free).
                                slot.sort()
                                self._sorted_slot = slot_no
                            nxt_slot = slot
                            nxt_time = slot[0][0]
                            self._scan_slot = slot_no
                            break
                if far and (nxt_slot is None or far[0][0] < nxt_time):
                    nxt_slot = far
                    nxt_time = far[0][0]
                    in_far = True
                else:
                    in_far = False
                if nxt_slot is not None and nxt_time <= now:
                    # Timer events that became due: they predate (in seq
                    # order) anything in the now-bucket, so drain them
                    # first.
                    if batched and not in_far:
                        # Batch dispatch: the scan already sorted this
                        # slot, so the due prefix splits off in one
                        # bisect + slice (the (now, inf) boundary never
                        # compares handles), the whole block is accounted
                        # at once, then executed.  Execution order is the
                        # exact heappop order of the per-entry path.
                        hi = bisect_right(nxt_slot, (now, inf))
                        batch = nxt_slot[:hi]
                        del nxt_slot[:hi]
                        self._queued_count -= hi
                        self._wheel_count -= hi
                        if budget < 0 or budget - ran >= hi:
                            # The whole block fits in the budget: one
                            # pass, no per-event budget checks or
                            # counter updates.  Flags clear as entries
                            # are consumed; a mid-batch cancel() of a
                            # later entry still counts into the gauge
                            # (its flag is still set) and is reconciled
                            # via `skipped` below -- _note_cancel defers
                            # compaction while _in_batch, since these
                            # entries are outside every container it
                            # would rebuild from.  Recycling compares
                            # against 3 because the batch entry tuple
                            # still holds one reference.
                            self._in_batch = True
                            skipped = 0
                            for entry in batch:
                                handle = entry[2]
                                handle._queued = False
                                if handle._cancelled:
                                    skipped += 1
                                    continue
                                args = handle._args
                                if args:
                                    handle._callback(*args)
                                else:
                                    handle._callback()
                                if len(pool) < _POOL_CAP and getref(handle) == 3:
                                    # _acquire overwrites the fields; no
                                    # need to clear them first.  Handles
                                    # not recycled die with the batch
                                    # list, so eager field clearing is
                                    # skipped here too -- a handle the
                                    # caller retained releases its
                                    # closure at the next GC instead.
                                    pool.append(handle)
                            self._in_batch = False
                            if skipped:
                                self._cancelled_in_queue -= skipped
                            live = hi - skipped
                            executed += live
                            ran += live
                        else:
                            # Budget may lapse mid-batch: two passes, so
                            # every flag is already clear when a requeue
                            # restores the unexecuted tail, with a
                            # per-event budget check.
                            if self._cancelled_in_queue:
                                dead = 0
                                for entry in batch:
                                    handle = entry[2]
                                    handle._queued = False
                                    if handle._cancelled:
                                        dead += 1
                                if dead:
                                    self._cancelled_in_queue -= dead
                            else:
                                for entry in batch:
                                    entry[2]._queued = False
                            for idx, entry in enumerate(batch):
                                handle = entry[2]
                                if not handle._cancelled:
                                    if ran == budget:
                                        self._requeue_slot(
                                            nxt_slot, batch, idx, entry
                                        )
                                        raise _Stop
                                    handle._callback(*handle._args)
                                    executed += 1
                                    ran += 1
                                    handle._callback = _noop
                                    handle._args = ()
                                if len(pool) < _POOL_CAP and getref(handle) == 3:
                                    pool.append(handle)
                        continue
                    while nxt_slot and nxt_slot[0][0] <= now:
                        if ran == budget:
                            raise _Stop
                        handle = heappop(nxt_slot)[2]
                        self._queued_count -= 1
                        if not in_far:
                            self._wheel_count -= 1
                        handle._queued = False
                        if handle._cancelled:
                            self._cancelled_in_queue -= 1
                        else:
                            handle._callback(*handle._args)
                            executed += 1
                            ran += 1
                            handle._callback = _noop
                            handle._args = ()
                        if (
                            getref is not None
                            and len(pool) < _POOL_CAP
                            and getref(handle) == 2
                        ):
                            pool.append(handle)
                    continue
                if bucket:
                    # The fast path: call_soon events at the current
                    # instant, FIFO, no heap involved.
                    if batched:
                        # Batch dispatch: snapshot the whole bucket in one
                        # C-level copy and account for it as a block.
                        # Events appended by the callbacks land in the
                        # emptied deque and drain on the next round --
                        # the same FIFO order the per-entry path yields.
                        while bucket:
                            batch = list(bucket)
                            bucket.clear()
                            n = len(batch)
                            self._queued_count -= n
                            if budget < 0 or budget - ran >= n:
                                # Single pass; same reconciliation as
                                # the slot batch above.
                                self._in_batch = True
                                skipped = 0
                                for handle in batch:
                                    handle._queued = False
                                    if handle._cancelled:
                                        skipped += 1
                                        continue
                                    args = handle._args
                                    if args:
                                        handle._callback(*args)
                                    else:
                                        handle._callback()
                                    if len(pool) < _POOL_CAP and getref(handle) == 3:
                                        pool.append(handle)
                                self._in_batch = False
                                if skipped:
                                    self._cancelled_in_queue -= skipped
                                live = n - skipped
                                executed += live
                                ran += live
                            else:
                                # Two passes (see the slot batch above).
                                if self._cancelled_in_queue:
                                    dead = 0
                                    for handle in batch:
                                        handle._queued = False
                                        if handle._cancelled:
                                            dead += 1
                                    if dead:
                                        self._cancelled_in_queue -= dead
                                else:
                                    for handle in batch:
                                        handle._queued = False
                                for idx, handle in enumerate(batch):
                                    if not handle._cancelled:
                                        if ran == budget:
                                            self._requeue_bucket(batch, idx, handle)
                                            raise _Stop
                                        handle._callback(*handle._args)
                                        executed += 1
                                        ran += 1
                                        handle._callback = _noop
                                        handle._args = ()
                                    if len(pool) < _POOL_CAP and getref(handle) == 3:
                                        pool.append(handle)
                        continue
                    while bucket:
                        if ran == budget:
                            raise _Stop
                        handle = bucket_popleft()
                        self._queued_count -= 1
                        handle._queued = False
                        if handle._cancelled:
                            self._cancelled_in_queue -= 1
                        else:
                            handle._callback(*handle._args)
                            executed += 1
                            ran += 1
                            handle._callback = _noop
                            handle._args = ()
                        if (
                            getref is not None
                            and len(pool) < _POOL_CAP
                            and getref(handle) == 2
                        ):
                            pool.append(handle)
                    continue
                if nxt_slot is None:
                    break
                if nxt_slot[0][2]._cancelled:
                    # Discard dead queue heads without advancing the
                    # clock -- matches the original lazy-cancel heap,
                    # where skipped events never moved `now`.  Batch
                    # dispatch amortizes consecutive dead heads into one
                    # pass.
                    if batched and not in_far:
                        # Scan-sorted slot: strip the dead prefix with
                        # one slice (keeps sortedness, so the memo
                        # stays valid).  Recycling compares against 3
                        # while the entry tuple still holds its
                        # reference.
                        k = 0
                        ln = len(nxt_slot)
                        while k < ln:
                            handle = nxt_slot[k][2]
                            if not handle._cancelled:
                                break
                            handle._queued = False
                            if len(pool) < _POOL_CAP and getref(handle) == 3:
                                pool.append(handle)
                            k += 1
                        del nxt_slot[:k]
                        self._queued_count -= k
                        self._wheel_count -= k
                        self._cancelled_in_queue -= k
                        continue
                    while nxt_slot and nxt_slot[0][2]._cancelled:
                        handle = heappop(nxt_slot)[2]
                        self._queued_count -= 1
                        if not in_far:
                            self._wheel_count -= 1
                        self._cancelled_in_queue -= 1
                        handle._queued = False
                        if (
                            getref is not None
                            and len(pool) < _POOL_CAP
                            and getref(handle) == 2
                        ):
                            pool.append(handle)
                        if not batched:
                            break
                    continue
                if until is not None and nxt_time > until:
                    break
                if idle_grace is not None and nxt_time - now > idle_grace:
                    self._stopped_on_grace = True
                    break
                if ran == budget:
                    break
                self._now = nxt_time
                self._rebase()
        except _Stop:
            pass
        finally:
            self._running = False
            self._in_batch = False
            self._events_run += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _requeue_slot(
        self,
        slot: List[Tuple[float, int, EventHandle]],
        batch: List[Optional[Tuple[float, int, EventHandle]]],
        idx: int,
        entry: Tuple[float, int, EventHandle],
    ) -> None:
        """Return the unexecuted tail of a slot batch to its slot when the
        event budget runs out mid-batch (cold path)."""
        rest = [entry]
        for j in range(idx + 1, len(batch)):
            rest.append(batch[j])
        restored_dead = 0
        for item in rest:
            handle = item[2]
            handle._queued = True
            if handle._cancelled:
                restored_dead += 1
        self._queued_count += len(rest)
        self._wheel_count += len(rest)
        self._cancelled_in_queue += restored_dead
        # Only the batched drain calls this.  `rest` is sorted and every
        # entry is due, so prepending preserves slot order; appends made
        # by the already-run callbacks invalidated the memo themselves.
        slot[:0] = rest

    def _requeue_bucket(
        self,
        batch: List[Optional[EventHandle]],
        idx: int,
        handle: EventHandle,
    ) -> None:
        """Return the unexecuted tail of a bucket batch to the front of
        the now-bucket when the event budget runs out mid-batch."""
        rest = [handle]
        for j in range(idx + 1, len(batch)):
            rest.append(batch[j])
        restored_dead = 0
        for item in rest:
            item._queued = True
            if item._cancelled:
                restored_dead += 1
        self._queued_count += len(rest)
        self._cancelled_in_queue += restored_dead
        self._bucket.extendleft(reversed(rest))

    def run_until(
        self, until: float, max_events: Optional[int] = None
    ) -> float:
        """Batch-run every event with ``time <= until`` and leave the
        clock exactly at ``until``.  Equivalent to ``run(until=until)``;
        the explicit name documents the batching entry point used by the
        benches."""
        return self.run(until=until, max_events=max_events)

    def run_while_pending(
        self,
        idle_grace: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drive the loop in one call while work remains pending.

        With ``idle_grace=None`` this drains the queue completely (the
        old ``run_until_idle`` contract).  With a grace, the run stops as
        soon as the next live event lies more than ``idle_grace`` seconds
        past the clock -- "the simulation went quiet" -- leaving far-out
        events (chaos schedules, stale coalesced timers) unexecuted.
        Raises :class:`SchedulingError` when the ``max_events`` budget
        (default :data:`DEFAULT_IDLE_MAX_EVENTS`) runs out with live
        events still due, which distinguishes a runaway schedule from a
        clean drain.
        """
        budget = DEFAULT_IDLE_MAX_EVENTS if max_events is None else max_events
        end = self.run(max_events=budget, idle_grace=idle_grace)
        if self.pending_events and not self._stopped_on_grace:
            raise SchedulingError(
                f"event loop did not go idle within {budget} events"
            )
        return end

    def run_until_idle(self, max_events: int = DEFAULT_IDLE_MAX_EVENTS) -> float:
        """Run until no events remain.  ``max_events`` guards runaway loops."""
        return self.run_while_pending(max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"<EventLoop now={self._now:.6f} pending={self.pending_events} "
            f"run={self._events_run}>"
        )


class _Stop(Exception):
    """Internal: unwind the dispatch loop when max_events is reached."""


class GroupTimer:
    """One logical deadline inside a :class:`TimerGroup`.

    Mirrors the :class:`EventHandle` surface the protocol layers use
    (``time``, ``cancel()``, ``cancelled``) so call sites can hold either
    interchangeably.
    """

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled", "_group")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        group: "TimerGroup",
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._group = group

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _noop
        self._args = ()
        group = self._group
        if group is not None:
            self._group = None
            group._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<GroupTimer t={self.time:.6f} {state}>"


class TimerGroup:
    """Many logical deadlines coalesced onto one rearming loop timer.

    Protocol layers that keep one deadline per pending message
    (piggyback flushes, control-request retransmissions, RKOM call
    timeouts, supervisor retries) would otherwise schedule and cancel a
    loop timer per message.  A group keeps those deadlines in its own
    ``(time, seq)`` heap and arms a *single* loop timer at the earliest
    live deadline, rearming only when the front changes -- so loop-timer
    churn is O(groups), not O(messages), while every callback still runs
    at exactly its scheduled simulated time, FIFO at equal times.

    Unlike the loop's lazy-cancel queue, cancelled entries are dropped
    eagerly: dead heads are popped on cancellation and the whole heap is
    compacted as soon as dead entries outnumber live ones.  When the
    last live deadline is cancelled the loop timer is left armed and
    simply no-ops (rearming at whatever is live by then), so pure
    schedule/cancel churn never touches the loop; ``cancel_all`` -- the
    teardown path -- disarms it for real, leaving zero live timers.
    """

    __slots__ = ("_loop", "_heap", "_seq", "_timer", "_live", "_dead",
                 "fires")

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._heap: List[Tuple[float, int, GroupTimer]] = []
        self._seq = itertools.count()
        self._timer: Optional[EventHandle] = None
        self._live = 0
        self._dead = 0
        #: Loop-timer firings so far (telemetry: timer events per message).
        self.fires = 0

    @property
    def live(self) -> int:
        """Live (not-yet-fired, not-cancelled) deadlines in the group."""
        return self._live

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        # Without this, __len__ would make an *empty* group falsy --
        # and ``group or loop`` fallbacks would silently skip it.
        return True

    @property
    def armed(self) -> bool:
        """Whether the group currently holds a loop timer."""
        return self._timer is not None and not self._timer.cancelled

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> GroupTimer:
        """Run ``callback(*args)`` at simulated time ``when`` (clamped to
        now)."""
        now = self._loop._now
        if when < now:
            when = now
        entry = GroupTimer(when, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, (when, entry._seq, entry))
        self._live += 1
        # Keep the loop timer armed at the heap front (the new entry is
        # not necessarily the front when scheduling re-enters mid-fire).
        front = self._heap[0][0]
        timer = self._timer
        if timer is None or timer.cancelled:
            self._timer = self._loop.call_at(front, self._fire)
        elif front < timer.time:
            timer.cancel()
            self._timer = self._loop.call_at(front, self._fire)
        return entry

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> GroupTimer:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.call_at(self._loop._now + delay, callback, *args)

    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not self._live:
            # Lazily disarmed: the loop timer stays armed and fires as a
            # no-op (or rearms at whatever is live by then).  Schedule/
            # cancel churn -- the dominant pattern for retransmit and
            # flush deadlines -- then never touches the loop at all.
            self._dead = 0
            del heap[:]
            return
        if self._dead > self._live:
            live_entries = [e for e in heap if not e[2]._cancelled]
            heap[:] = live_entries
            heapq.heapify(heap)
            self._dead = 0

    def _fire(self) -> None:
        self._timer = None
        self.fires += 1
        heap = self._heap
        now = self._loop._now
        while heap and heap[0][0] <= now:
            entry = heapq.heappop(heap)[2]
            if entry._cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            entry._group = None
            callback, args = entry._callback, entry._args
            entry._callback = _noop
            entry._args = ()
            callback(*args)
        if heap and (self._timer is None or self._timer.cancelled):
            self._timer = self._loop.call_at(heap[0][0], self._fire)

    def cancel_all(self) -> None:
        """Cancel every pending deadline and disarm the loop timer."""
        for _, _, entry in self._heap:
            if not entry._cancelled:
                entry._cancelled = True
                entry._callback = _noop
                entry._args = ()
                entry._group = None
        del self._heap[:]
        self._live = 0
        self._dead = 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __repr__(self) -> str:
        return f"<TimerGroup live={self._live} armed={self.armed}>"


class Signal:
    """A broadcast event: listeners subscribe, ``fire`` notifies them all.

    Used for RMS failure notification (basic property 3 of section 2) and
    for decoupled delivery hooks.  Listeners added during a ``fire`` are
    not invoked until the next ``fire``.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._listeners: List[Callable[..., None]] = []
        self.fire_count = 0

    def listen(self, callback: Callable[..., None]) -> Callable[[], None]:
        """Subscribe; returns an unsubscribe function."""
        self._listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, *args: Any) -> None:
        """Invoke every current listener synchronously with ``args``."""
        self.fire_count += 1
        for callback in list(self._listeners):
            callback(*args)

    def fire_soon(self, *args: Any) -> None:
        """Invoke listeners via the event loop (next same-time slot)."""
        self._loop.call_soon(self.fire, *args)

    def __len__(self) -> int:
        return len(self._listeners)
