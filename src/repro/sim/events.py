"""Discrete-event simulation core.

The DASH system of the paper ran on real machines; this reproduction runs
on a deterministic discrete-event simulator.  :class:`EventLoop` keeps a
priority queue of timestamped callbacks.  All timing-sensitive behaviour
in the library (delay bounds, deadlines, retransmission timers, CPU
scheduling) is expressed through this single clock, which makes every
experiment reproducible bit-for-bit from its random seed.

Times are floats in *seconds* of simulated time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError

__all__ = ["EventHandle", "EventLoop", "Signal"]


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self._cancelled = True
        self._callback = _noop
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        self._callback(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


class EventLoop:
    """A deterministic discrete-event scheduler.

    Events scheduled for the same instant run in scheduling order (FIFO),
    which keeps protocol traces deterministic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for tests and tracing)."""
        return self._events_run

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule event at {when:.6f}, now is {self._now:.6f}"
            )
        handle = EventHandle(when, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time, after pending
        same-time events."""
        return self.call_at(self._now, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in time order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock then advances exactly to ``until``), or after
        ``max_events`` callbacks.  Returns the simulated time at which the
        run stopped.
        """
        if self._running:
            raise SchedulingError("event loop is already running (reentrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                handle = self._queue[0]
                if handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and handle.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = handle.time
                handle._run()
                self._events_run += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.  ``max_events`` guards runaway loops."""
        end = self.run(max_events=max_events)
        if self.pending_events:
            raise SchedulingError(
                f"event loop did not go idle within {max_events} events"
            )
        return end

    def __repr__(self) -> str:
        return (
            f"<EventLoop now={self._now:.6f} pending={self.pending_events} "
            f"run={self._events_run}>"
        )


class Signal:
    """A broadcast event: listeners subscribe, ``fire`` notifies them all.

    Used for RMS failure notification (basic property 3 of section 2) and
    for decoupled delivery hooks.  Listeners added during a ``fire`` are
    not invoked until the next ``fire``.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._listeners: List[Callable[..., None]] = []
        self.fire_count = 0

    def listen(self, callback: Callable[..., None]) -> Callable[[], None]:
        """Subscribe; returns an unsubscribe function."""
        self._listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, *args: Any) -> None:
        """Invoke every current listener synchronously with ``args``."""
        self.fire_count += 1
        for callback in list(self._listeners):
            callback(*args)

    def fire_soon(self, *args: Any) -> None:
        """Invoke listeners via the event loop (next same-time slot)."""
        self._loop.call_soon(self.fire, *args)

    def __len__(self) -> int:
        return len(self._listeners)
